"""Cross-iteration Hamerly bounds: pruning the per-iteration re-assignment.

Lloyd-style algorithms pay the full assignment price every iteration for
every point, yet after the first few iterations the vast majority of points
provably cannot change label.  The classic cure [Hamerly, 2010] maintains,
per point ``i`` with current label ``a_i``:

* an **upper bound** ``u_i ≥ d(x_i, c_{a_i})`` on the distance to the
  assigned centroid, and
* a **lower bound** ``l_i ≤ min_{j ≠ a_i} d(x_i, c_j)`` on the distance to
  the second-nearest centroid.

When centroid ``j`` moves by ``δ_j``, the triangle inequality keeps both
bounds valid after ``u_i += δ_{a_i}`` and ``l_i -= max_j δ_j``.  Whenever
``u_i < l_i`` (strictly — ties must fall through to an exact re-assignment
so tie-breaking matches the unpruned argmin bit for bit), the assigned
centroid is still strictly nearest and the point is skipped.  Survivors are
first *tightened* (``u_i`` recomputed exactly against the assigned centroid
only, ``O(m)``) and only the points that still overlap are re-scored against
all ``k`` centroids.

The Khatri-Rao structure makes the drift side unusually cheap: for the sum
aggregator a centroid's movement decomposes as
``‖Δc(j_1..j_p)‖ ≤ Σ_q ‖Δθ_q[j_q]‖``, so valid per-centroid drift bounds
for all ``k = ∏ h_q`` centroids come from ``p`` per-set norm tables of total
size ``Σ h_q`` — no grid materialization (the ``factored_drift`` aggregator
hook, see :mod:`repro.linalg.aggregators`).  Non-decomposable aggregators
fall back to a dense ``(k,)`` drift vector computed from the materialized
centroid diff.

Floating-point safety
---------------------
The assignment kernels compute squared distances in expansion form
(``‖x‖² − 2 x·c + ‖c‖²``), whose cancellation error is proportional to the
*magnitudes* of the terms, not to the distance: on un-centered data (a
coordinate offset of ``1e7`` say) the computed distance can be off by far
more than the gap between near-tied centroids, which would let a "strict"
bound comparison prune a point the unpruned argmin re-labels.  Bounds are
therefore seeded with a certified margin — the upper bound inflated and the
lower bound deflated by ``O(eps·(m+8)·(‖x‖² + d))``, a bound on the
worst-case cancellation error — so they hold for the *computed* distances,
not just the real-arithmetic ones.  On well-conditioned data the margin is
~1e-13 relative and costs nothing; on badly-conditioned data it gracefully
degrades pruning toward full re-scores instead of corrupting results.

Dtype-aware margins (proof sketch)
----------------------------------
With the estimators' ``dtype="float32"`` knob the distance kernels round at
``eps32 ≈ 1.19e-7`` instead of ``eps64 ≈ 2.22e-16``, so the certified
margin widens by the same machine-epsilon factor: ``_fp_margin_factor``
takes the *seed dtype* (the dtype of the squared distances and ``‖x‖²``
fed into the bounds) and evaluates ``8·(m + 8)·eps(dtype)``.  The claim
that pruning stays label-identical to the unpruned run *at the same dtype*
follows from three invariants:

1. **Seeds.**  A squared distance computed by the expansion-form kernels in
   dtype ``t`` differs from its real value by at most
   ``γ·(‖x‖² + d̂)`` with ``γ = c·(m + 2)·eps(t)`` for a small constant
   ``c``: the ``m``-term dot products each carry ``O(m·eps(t))`` relative
   roundoff scaled by term magnitudes, the three-term combination adds two
   more rounds, and blocked BLAS accumulation orders only shrink the
   constant.  The margin ``8·(m + 8)·eps(t)·(‖x‖² + d̂) ≥ γ·(‖x‖² + d̂)``
   therefore brackets the computed value between the certified upper and
   lower bounds, with the slack factor (≥ 4×) absorbing the square-root
   rounding of the bound itself.
2. **Maintenance.**  Everything the bounds do *after* seeding runs in
   float64 regardless of the working dtype: ``upper``/``lower`` are float64
   arrays, ``margin_base`` is float64 (``eps(t) · float64(‖x‖²)``), and the
   drift tables that inflate them are computed in float64 by
   ``factored_drift`` / :func:`dense_drift` from the (dtype-rounded, hence
   exactly representable) protocentroids.  Maintenance therefore
   contributes only ``O(eps64)`` drift per iteration — covered many times
   over by the ≥ 4× seed slack, since margins are ``Ω(eps(t))``.
3. **Decisions.**  Pruning compares a certified upper bound against a
   certified lower bound *strictly*, so a skip certifies
   ``computed_d(x, c_a) < computed_d(x, c_j)`` for every ``j ≠ a`` — the
   exact inequality the same-dtype unpruned argmin evaluates; ties and
   uncertain cases fall through to the argmin itself.  Hence labels,
   inertia and iteration counts are bit-identical per dtype (certified on
   the ``tests/test_dtype.py`` grid, including un-centered float32 data).

Late iterations therefore drop from ``O(n·k·p)`` (factored) or ``O(n·k·m)``
(materialized) to ``O(|active|·…) + O(n)`` bound maintenance.  Pruned and
unpruned paths produce identical labels, inertia and iteration counts; the
bounds only ever *license skipping* work whose outcome is already certain.

Two state objects live here:

* :class:`HamerlyBounds` — dense per-iteration bounds for batch Lloyd loops
  (:class:`~repro.core.kmeans.KMeans`,
  :class:`~repro.core.kr_kmeans.KhatriRaoKMeans`);
* :class:`StreamingBounds` — snapshot-based bounds for mini-batch training,
  where each step touches only a sample of the points: drift is accumulated
  into cumulative per-protocentroid tables and every point anchors the
  cumulative totals at its last exact assignment, so the inflation owed by a
  point is reconstructed lazily when it is next sampled.

:class:`StreamingBounds` additionally supports a *dynamic* mode
(:meth:`StreamingBounds.for_stream`) for online ``partial_fit`` streams,
where the point universe is not known up front: the caller identifies each
batch row by a stable integer index (the point-identity protocol), the
per-point state grows amortized-doubling as new indices appear, and the
certified margins are seeded per point from the batch's ``‖x‖²`` at
:meth:`StreamingBounds.observe` time.  A known index re-presented with a
different squared norm is treated as a *new* point (its cached bounds are
invalidated), so an identity-contract violation degrades to a full
re-score instead of a wrong label.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError
from ._distances import paired_squared_distances

__all__ = [
    "PRUNING_MODES",
    "HamerlyBounds",
    "StreamingBounds",
    "check_pruning",
    "drift_inflation_from_tables",
    "dense_drift",
    "hamerly_step",
]

#: valid values of the estimators' ``pruning`` knob
PRUNING_MODES = ("auto", "bounds", "none")

#: when the post-tighten active set exceeds this fraction of the points, a
#: pruned iteration re-scores *everything* through the (BLAS-friendlier)
#: full kernel and re-seeds the bounds, instead of gathering a nearly-full
#: subset — same labels, less overhead on crowded-centroid workloads
FULL_RESCORE_FRACTION = 0.8

#: when the *candidate* set (before tightening) already exceeds this
#: fraction, the iteration is in the churn regime — some centroid moved far
#: enough that the global max-drift deflation invalidated essentially every
#: lower bound — and the tightening pass cannot pay for itself: skip it and
#: full-rescore immediately.  This caps the bounds overhead on
#: never-converging workloads at the cost of one top-2 partition per
#: iteration, while pruning still engages as soon as drift decays.
HOPELESS_FRACTION = 0.95


def check_pruning(pruning: str) -> str:
    """Validate the ``pruning`` knob (estimators apply their own auto rules)."""
    if pruning not in PRUNING_MODES:
        raise ValidationError(
            f"pruning must be one of {PRUNING_MODES}, got {pruning!r}"
        )
    return pruning


def drift_inflation_from_tables(
    drift_tables: Sequence[np.ndarray], set_labels: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Per-point assigned-centroid drift and the global max drift, factored.

    ``drift_tables[q][j] = ‖Δθ_q[j]‖`` bounds centroid movement as
    ``δ(j_1..j_p) ≤ Σ_q drift_tables[q][j_q]``; the maximum over the whole
    grid is reached at the per-set maxima.
    """
    assigned = drift_tables[0][set_labels[:, 0]].copy()
    for q in range(1, len(drift_tables)):
        assigned += drift_tables[q][set_labels[:, q]]
    max_drift = float(sum(table.max() for table in drift_tables))
    return assigned, max_drift


def dense_drift(old_centroids: np.ndarray, new_centroids: np.ndarray) -> np.ndarray:
    """Exact per-centroid movement ``δ_j = ‖c_j^new − c_j^old‖``, shape (k,).

    Computed in float64 for any input dtype: drift feeds the certified
    bound maintenance, which is float64 by contract (module docstring) so
    the margins only have to cover the dtype-rounded distance seeds.
    """
    return np.sqrt(paired_squared_distances(
        np.asarray(new_centroids, dtype=np.float64),
        np.asarray(old_centroids, dtype=np.float64),
    ))


def _fp_margin_factor(n_features: int, dtype=np.float64) -> float:
    """Worst-case relative cancellation error of an expansion-form distance.

    ``‖x‖² − 2 x·c + ‖c‖²`` accumulates roundoff proportional to the term
    magnitudes over an ``m``-term dot product; ``8·(m + 8)·eps(dtype)``
    bounds it with generous slack (BLAS accumulation orders are blocked,
    not naive).  ``dtype`` is the *seed* dtype — the precision the distance
    kernels computed in (the estimators' working dtype) — so float32 runs
    get margins widened by ``eps32/eps64 ≈ 5.4e8``; the ≥ 4× slack also
    absorbs the float64 bound-maintenance roundoff (see the module
    docstring's proof sketch).
    """
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        dtype = np.dtype(np.float64)
    return 8.0 * (n_features + 8) * float(np.finfo(dtype).eps)


def _certified_upper_bound(d_squared, margin_base, eps_factor):
    """``sqrt`` of a squared distance inflated past its worst-case fp error."""
    return np.sqrt(d_squared + (margin_base + eps_factor * d_squared))


def _certified_lower_bound(d_squared, margin_base, eps_factor):
    """``sqrt`` of a squared distance deflated past its worst-case fp error.

    ``inf`` inputs (single-centroid problems have no second-nearest) stay
    ``inf`` — deflating them naively would produce ``inf − inf = NaN``.
    """
    d_squared = np.asarray(d_squared, dtype=float)
    finite = np.isfinite(d_squared)
    if finite.all():
        deflated = d_squared - (margin_base + eps_factor * d_squared)
        return np.sqrt(np.maximum(deflated, 0.0))
    out = np.full(d_squared.shape, np.inf)
    base = margin_base[finite] if np.ndim(margin_base) else margin_base
    deflated = d_squared[finite] - (base + eps_factor * d_squared[finite])
    out[finite] = np.sqrt(np.maximum(deflated, 0.0))
    return out


class HamerlyBounds:
    """Dense per-point Hamerly bounds for a batch Lloyd loop.

    Lifecycle per run: :meth:`initialize` from the first full top-2
    assignment, then each iteration :meth:`candidates` → :meth:`tighten` →
    :meth:`refresh` (for the re-scored active set) → :meth:`inflate` (after
    the centroid update).  All comparisons are strict so exact distance ties
    are never pruned, and every seeded bound carries the floating-point
    margin (see module docstring) so cancellation noise in the expansion-
    form kernels can never flip a pruning decision — overlapping points
    fall through to the same argmin the unpruned path runs.
    """

    __slots__ = ("upper", "lower", "initialized", "_margin_base", "_eps_factor")

    def __init__(self, x_squared_norms: np.ndarray, n_features: int) -> None:
        n = x_squared_norms.shape[0]
        # Margins scale with the machine epsilon of the dtype the distance
        # seeds are computed in (the estimators' working dtype, inferred
        # from the hoisted ‖x‖² vector); all bound state itself is float64
        # — see the module docstring's proof sketch.
        self._eps_factor = _fp_margin_factor(n_features, x_squared_norms.dtype)
        self._margin_base = self._eps_factor * np.asarray(
            x_squared_norms, dtype=np.float64
        )
        self.upper = np.zeros(n)
        self.lower = np.zeros(n)
        self.initialized = False

    def _certified_upper(self, d_squared, idx=None) -> np.ndarray:
        base = self._margin_base if idx is None else self._margin_base[idx]
        return _certified_upper_bound(d_squared, base, self._eps_factor)

    def _certified_lower(self, d_squared, idx=None) -> np.ndarray:
        base = self._margin_base if idx is None else self._margin_base[idx]
        return _certified_lower_bound(d_squared, base, self._eps_factor)

    def initialize(self, d1_squared: np.ndarray, d2_squared: np.ndarray) -> None:
        """Seed bounds from the top-2 squared distances (margin applied)."""
        self.upper = self._certified_upper(d1_squared)
        self.lower = self._certified_lower(d2_squared)
        self.initialized = True

    def inflate(self, assigned_drift: np.ndarray, max_drift: float) -> None:
        """Account for centroid movement (triangle inequality)."""
        self.upper += assigned_drift
        self.lower -= max_drift

    def candidates(self) -> np.ndarray:
        """Indices whose bounds overlap and need at least a tightening pass."""
        return np.flatnonzero(self.upper >= self.lower)

    def tighten(self, idx: np.ndarray, exact_squared: np.ndarray) -> np.ndarray:
        """Replace ``upper[idx]`` with exact distances; return the survivors
        (still-overlapping indices) that need a full re-assignment."""
        tightened = self._certified_upper(exact_squared, idx)
        self.upper[idx] = tightened
        return idx[tightened >= self.lower[idx]]

    def refresh(self, idx: np.ndarray, d1_squared: np.ndarray,
                d2_squared: np.ndarray) -> None:
        """Reset bounds of re-scored points from their fresh top-2 distances."""
        self.upper[idx] = self._certified_upper(d1_squared, idx)
        self.lower[idx] = self._certified_lower(d2_squared, idx)


def hamerly_step(bounds, labels, exact_squared_fn, rescore_fn):
    """One bounds-pruned assignment pass shared by the batch Lloyd loops.

    Parameters
    ----------
    bounds : HamerlyBounds
    labels : int array of shape (n,)
        Current labels; mutated in place for partially re-scored passes.
    exact_squared_fn : callable(idx) -> (len(idx),) array
        Exact squared distance of each point in ``idx`` to its *assigned*
        centroid (the tightening kernel).
    rescore_fn : callable(idx_or_None) -> (labels, d1, d2)
        Full top-2 argmin over all centroids for the given subset
        (``None`` = every point).

    Returns
    -------
    (labels, fraction, full_d1)
        ``fraction`` is the share of points fully re-scored; ``full_d1``
        carries the exact min squared distances whenever the pass re-scored
        everything (callers use it for the empty-cluster reseed), else
        ``None``.
    """
    n = labels.shape[0]
    if not bounds.initialized:
        labels, d1, d2 = rescore_fn(None)
        bounds.initialize(d1, d2)
        return labels, 1.0, d1
    candidates = bounds.candidates()
    if candidates.size == 0:
        return labels, 0.0, None
    if candidates.size <= HOPELESS_FRACTION * n:
        active = bounds.tighten(candidates, exact_squared_fn(candidates))
    else:
        # Churn regime: the global max-drift deflation invalidated
        # essentially every lower bound, so tightening cannot pay for
        # itself — go straight to the full re-score below.
        active = candidates
    if active.size == 0:
        return labels, 0.0, None
    if active.size > FULL_RESCORE_FRACTION * n:
        # Nearly everything moved: the contiguous full kernel beats a
        # gathered almost-full subset, and the bounds re-seed for free.
        labels, d1, d2 = rescore_fn(None)
        bounds.initialize(d1, d2)
        return labels, 1.0, d1
    new_labels, d1, d2 = rescore_fn(active)
    labels[active] = new_labels
    bounds.refresh(active, d1, d2)
    return labels, active.size / n, None


class StreamingBounds:
    """Lazy Hamerly bounds for mini-batch training over a fixed dataset.

    Mini-batch steps touch only a sample of points while *every* step moves
    protocentroids, so dense inflation would cost ``O(n)`` per step for
    points that are never looked at.  Instead, drift is accumulated into
    cumulative per-set tables ``cum_q[j] = Σ_steps ‖Δθ_q[j]‖`` plus a running
    total ``cum_max = Σ_steps Σ_q max_j ‖Δθ_q[j]‖``, and each point stores
    the totals observed at its last exact assignment.  When the point is next
    sampled, the inflation it owes is reconstructed in O(p):

    ``u_i + (Σ_q cum_q[a_iq] − u_anchor_i)  <  l_i − (cum_max − m_anchor_i)``

    keeps the cached label (triangle inequality telescoped over the skipped
    steps); anything else — including never-seen points — is re-scored
    exactly.  Only decomposable (sum) aggregators support this, since the
    per-set drift tables are what make the telescoping cheap.  Recorded
    bounds carry the same floating-point margin as :class:`HamerlyBounds`.
    """

    __slots__ = (
        "cardinalities", "known", "labels", "upper", "lower",
        "u_anchor", "m_anchor", "cum", "cum_max",
        "_margin_base", "_eps_factor", "dynamic", "size", "norms",
    )

    def __init__(
        self,
        x_squared_norms: np.ndarray,
        n_features: int,
        cardinalities: Sequence[int],
    ) -> None:
        n = x_squared_norms.shape[0]
        self.cardinalities = tuple(cardinalities)
        # Same dtype-aware margin policy as HamerlyBounds: eps factor from
        # the seed dtype, all bound state and maintenance in float64.
        self._eps_factor = _fp_margin_factor(n_features, x_squared_norms.dtype)
        self._margin_base = self._eps_factor * np.asarray(
            x_squared_norms, dtype=np.float64
        )
        self.known = np.zeros(n, dtype=bool)
        self.labels = np.zeros(n, dtype=np.int64)
        self.upper = np.zeros(n)
        self.lower = np.zeros(n)
        self.u_anchor = np.zeros(n)
        self.m_anchor = np.zeros(n)
        self.cum = [np.zeros(h) for h in self.cardinalities]
        self.cum_max = 0.0
        self.dynamic = False
        self.size = n
        self.norms = None

    @classmethod
    def for_stream(
        cls,
        n_features: int,
        cardinalities: Sequence[int],
        seed_dtype=np.float64,
    ) -> "StreamingBounds":
        """Bounds over an *open* point universe (online ``partial_fit``).

        The caller addresses points by stable non-negative integer indices;
        per-point state grows on demand (:meth:`observe`) and the certified
        margin of each point is seeded from its ``‖x‖²`` the first time the
        point is presented.  ``seed_dtype`` is the working dtype the
        distance kernels score in, exactly as the static constructor infers
        it from the hoisted norms vector.
        """
        state = cls(
            np.zeros(0, dtype=np.dtype(seed_dtype)), n_features, cardinalities
        )
        state.dynamic = True
        state.norms = np.zeros(0)
        return state

    def _grow_to(self, capacity: int) -> None:
        """Amortized-doubling growth of every per-point array."""
        current = self.known.shape[0]
        if capacity <= current:
            return
        capacity = max(capacity, 2 * current)
        grown = capacity - current
        self.known = np.concatenate([self.known, np.zeros(grown, dtype=bool)])
        self.labels = np.concatenate(
            [self.labels, np.zeros(grown, dtype=np.int64)]
        )
        for name in ("upper", "lower", "u_anchor", "m_anchor",
                     "_margin_base", "norms"):
            setattr(self, name, np.concatenate(
                [getattr(self, name), np.zeros(grown)]
            ))

    def observe(self, idx: np.ndarray, x_squared_norms: np.ndarray) -> None:
        """Present a batch of stable indices with their squared norms.

        Dynamic mode only.  Grows capacity past ``max(idx)``, seeds the
        per-point certified margin from ``‖x‖²`` (float64, so re-presenting
        the same row reproduces the same margin bit for bit), and
        invalidates any cached bounds whose stored norm contradicts the
        presented one — the caller broke the "one index, one immutable
        point" contract for that index, so it is re-scored exactly instead
        of trusting stale bounds.
        """
        if not self.dynamic:
            raise ValidationError(
                "observe() requires dynamic StreamingBounds (for_stream)"
            )
        self._grow_to(int(idx.max()) + 1 if idx.size else 0)
        self.size = max(self.size, int(idx.max()) + 1 if idx.size else 0)
        norms64 = np.asarray(x_squared_norms, dtype=np.float64)
        changed = self.known[idx] & (self.norms[idx] != norms64)
        if changed.any():
            self.known[idx[changed]] = False
        self.norms[idx] = norms64
        self._margin_base[idx] = self._eps_factor * norms64

    def state_arrays(self) -> dict:
        """Per-point state trimmed to the indices actually seen.

        The trim makes serialized state independent of the amortized
        growth pattern: a stream checkpointed and resumed mid-sequence
        carries exactly the same arrays as the uninterrupted stream.
        """
        n = self.size
        out = {
            "known": self.known[:n].copy(),
            "labels": self.labels[:n].copy(),
            "upper": self.upper[:n].copy(),
            "lower": self.lower[:n].copy(),
            "u_anchor": self.u_anchor[:n].copy(),
            "m_anchor": self.m_anchor[:n].copy(),
        }
        if self.dynamic:
            out["norms"] = self.norms[:n].copy()
            out["margin_base"] = self._margin_base[:n].copy()
        return out

    def _assigned_cum(self, labels: np.ndarray) -> np.ndarray:
        """Σ_q cum_q[j_q] for the given flat labels."""
        set_indices = np.unravel_index(labels, self.cardinalities)
        total = self.cum[0][set_indices[0]].copy()
        for q in range(1, len(self.cum)):
            total += self.cum[q][set_indices[q]]
        return total

    def settled(self, idx: np.ndarray) -> np.ndarray:
        """Boolean mask over ``idx``: True where the cached label is provably
        still the strict nearest centroid (no re-assignment needed)."""
        keep = self.known[idx].copy()
        sub = idx[keep]
        if sub.size:
            inflated = self.upper[sub] + (
                self._assigned_cum(self.labels[sub]) - self.u_anchor[sub]
            )
            deflated = self.lower[sub] - (self.cum_max - self.m_anchor[sub])
            keep[keep] = inflated < deflated
        return keep

    def record(self, idx: np.ndarray, labels: np.ndarray,
               d1_squared: np.ndarray, d2_squared: np.ndarray) -> None:
        """Store an exact top-2 assignment and anchor the drift totals."""
        margin = self._margin_base[idx]
        self.known[idx] = True
        self.labels[idx] = labels
        self.upper[idx] = _certified_upper_bound(
            d1_squared, margin, self._eps_factor
        )
        self.lower[idx] = _certified_lower_bound(
            d2_squared, margin, self._eps_factor
        )
        self.u_anchor[idx] = self._assigned_cum(labels)
        self.m_anchor[idx] = self.cum_max

    def advance(self, drift_tables: Optional[List[np.ndarray]]) -> None:
        """Fold one step's per-set drift tables into the cumulative totals."""
        if drift_tables is None:
            return
        for cum, table in zip(self.cum, drift_tables):
            cum += table
        self.cum_max += float(sum(table.max() for table in drift_tables))
