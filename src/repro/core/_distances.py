"""Vectorized squared-Euclidean distance kernels shared by the estimators.

The assignment step is the computational bottleneck of both k-Means and
Khatri-Rao k-Means (paper Section 6, "Complexity"), so the kernels here are
written to avoid Python-level loops and to support a chunked mode that keeps
peak memory bounded for the memory-efficient KR implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["squared_distances", "assign_to_nearest"]


def squared_distances(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``X`` and ``C``.

    Uses the expansion ``||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2`` and clips
    tiny negative values produced by floating-point cancellation.
    """
    x_sq = np.einsum("ij,ij->i", X, X)[:, None]
    c_sq = np.einsum("ij,ij->i", C, C)[None, :]
    distances = x_sq - 2.0 * (X @ C.T) + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def assign_to_nearest(
    X: np.ndarray, C: np.ndarray, *, chunk_size: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each row of ``X`` to its nearest row of ``C``.

    Parameters
    ----------
    X : array of shape (n, m)
    C : array of shape (k, m)
    chunk_size : int
        If positive, process centroids in chunks of this many rows so that at
        most ``n * chunk_size`` distances are materialized at a time.  This is
        the memory-efficient mode used when ``k`` is large.

    Returns
    -------
    labels : int array of shape (n,)
    min_distances : float array of shape (n,)
        Squared distance of each point to its assigned centroid.
    """
    n = X.shape[0]
    k = C.shape[0]
    if chunk_size <= 0 or chunk_size >= k:
        distances = squared_distances(X, C)
        labels = np.argmin(distances, axis=1)
        return labels, distances[np.arange(n), labels]

    labels = np.zeros(n, dtype=np.int64)
    best = np.full(n, np.inf)
    for start in range(0, k, chunk_size):
        stop = min(start + chunk_size, k)
        distances = squared_distances(X, C[start:stop])
        chunk_labels = np.argmin(distances, axis=1)
        chunk_best = distances[np.arange(n), chunk_labels]
        improved = chunk_best < best
        labels[improved] = chunk_labels[improved] + start
        best[improved] = chunk_best[improved]
    return labels, best
