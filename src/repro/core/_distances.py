"""Vectorized squared-Euclidean distance kernels shared by the estimators.

The assignment step is the computational bottleneck of both k-Means and
Khatri-Rao k-Means (paper Section 6, "Complexity"), so the kernels here are
written to avoid Python-level loops and to support a chunked mode that keeps
peak memory bounded for the memory-efficient KR implementation.

Two assignment strategies share this module's chunked-argmin machinery:

* **Materialized** (:func:`assign_to_nearest`): distances against an explicit
  ``(k, m)`` centroid matrix via the expansion
  ``‖x − c‖² = ‖x‖² − 2 x·c + ‖c‖²`` — ``O(n·k·m)`` per call.
* **Factored** (:func:`repro.core.assign_factored`): for aggregators whose
  centroids decompose over protocentroid sets (the sum aggregator), the cross
  term becomes ``x·c = Σ_q x·θ_q[j_q]`` and ``‖c‖²`` is data-free, so
  assignment costs ``O(n·m·Σh_q + n·k·p)`` and never materializes centroids.

Complexity of one assignment over ``n`` points, ``m`` features and
``k = ∏ h_q`` centroids from ``p`` sets:

==============  ==========================  ==========================
strategy        time                        extra memory
==============  ==========================  ==========================
materialized    ``O(n·k·m)``                ``O(k·m + n·c)`` (chunk c)
factored        ``O(n·m·Σh_q + n·k·p)``     ``O(n·Σh_q + n·c)``
==============  ==========================  ==========================

Callers that assign repeatedly against the same data (Lloyd iterations) can
hoist ``‖x‖²`` out of the loop by passing ``x_squared_norms`` (sklearn-style).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["squared_distances", "assign_to_nearest", "row_norms_squared"]


def row_norms_squared(X: np.ndarray) -> np.ndarray:
    """Squared Euclidean norm of every row of ``X`` (shape ``(n,)``)."""
    return np.einsum("ij,ij->i", X, X)


def squared_distances(
    X: np.ndarray, C: np.ndarray, *, x_squared_norms: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``X`` and ``C``.

    Uses the expansion ``||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2`` and clips
    tiny negative values produced by floating-point cancellation.
    ``x_squared_norms`` optionally supplies precomputed ``||x||^2`` so hot
    loops pay for it once per dataset instead of once per call.
    """
    if x_squared_norms is None:
        x_squared_norms = row_norms_squared(X)
    c_sq = row_norms_squared(C)[None, :]
    distances = x_squared_norms[:, None] - 2.0 * (X @ C.T) + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def _chunked_argmin(
    n: int,
    k: int,
    chunk_size: int,
    block_fn: Callable[[int, int], np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Running argmin over column blocks of an implicit ``(n, k)`` matrix.

    ``block_fn(start, stop)`` must return the ``(n, stop - start)`` block of
    scores for columns ``[start, stop)``.  Shared by every chunked assignment
    path (materialized centroids, on-the-fly KR chunks, factored distances)
    so the bookkeeping — running best, fancy-index row selector, offset
    labels — lives in exactly one place.
    """
    labels = np.zeros(n, dtype=np.int64)
    best = np.full(n, np.inf)
    rows = np.arange(n)
    for start in range(0, k, chunk_size):
        stop = min(start + chunk_size, k)
        block = block_fn(start, stop)
        block_labels = np.argmin(block, axis=1)
        block_best = block[rows, block_labels]
        improved = block_best < best
        labels[improved] = block_labels[improved] + start
        best[improved] = block_best[improved]
    return labels, best


def assign_to_nearest(
    X: np.ndarray,
    C: np.ndarray,
    *,
    chunk_size: int = 0,
    x_squared_norms: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each row of ``X`` to its nearest row of ``C``.

    Parameters
    ----------
    X : array of shape (n, m)
    C : array of shape (k, m)
    chunk_size : int
        If positive, process centroids in chunks of this many rows so that at
        most ``n * chunk_size`` distances are materialized at a time.  This is
        the memory-efficient mode used when ``k`` is large.
    x_squared_norms : array of shape (n,), optional
        Precomputed ``||x||^2`` per row; pass it when assigning repeatedly
        against the same data to hoist the norm computation out of the loop.

    Returns
    -------
    labels : int array of shape (n,)
    min_distances : float array of shape (n,)
        Squared distance of each point to its assigned centroid.
    """
    n = X.shape[0]
    k = C.shape[0]
    if x_squared_norms is None:
        x_squared_norms = row_norms_squared(X)
    if chunk_size <= 0 or chunk_size >= k:
        distances = squared_distances(X, C, x_squared_norms=x_squared_norms)
        labels = np.argmin(distances, axis=1)
        return labels, distances[np.arange(n), labels]

    return _chunked_argmin(
        n,
        k,
        chunk_size,
        lambda start, stop: squared_distances(
            X, C[start:stop], x_squared_norms=x_squared_norms
        ),
    )
