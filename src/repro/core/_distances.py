"""Vectorized squared-Euclidean distance kernels shared by the estimators.

The assignment step is the computational bottleneck of both k-Means and
Khatri-Rao k-Means (paper Section 6, "Complexity"), so the kernels here are
written to avoid Python-level loops and to support a chunked mode that keeps
peak memory bounded for the memory-efficient KR implementation.

Two assignment strategies share this module's chunked-argmin machinery:

* **Materialized** (:func:`assign_to_nearest`): distances against an explicit
  ``(k, m)`` centroid matrix via the expansion
  ``‖x − c‖² = ‖x‖² − 2 x·c + ‖c‖²`` — ``O(n·k·m)`` per call.
* **Factored** (:func:`repro.core.assign_factored`): for aggregators whose
  centroids decompose over protocentroid sets (the sum aggregator), the cross
  term becomes ``x·c = Σ_q x·θ_q[j_q]`` and ``‖c‖²`` is data-free, so
  assignment costs ``O(n·m·Σh_q + n·k·p)`` and never materializes centroids.

Complexity of one assignment over ``n`` points, ``m`` features and
``k = ∏ h_q`` centroids from ``p`` sets.  The *pruned iteration* column is
the cost once cross-iteration Hamerly bounds (:mod:`repro.core._bounds`)
restrict the scan to the ``a ≤ n`` active points whose bounds overlap —
late Lloyd iterations typically have ``a ≪ n``:

==============  ==========================  =========================  ==========================
strategy        time (full)                 time (pruned iteration)    extra memory
==============  ==========================  =========================  ==========================
materialized    ``O(n·k·m)``                ``O(a·k·m + n)``           ``O(k·m + n·c)`` (chunk c)
factored        ``O(n·m·Σh_q + n·k·p)``     ``O(a·m·Σh_q + a·k·p + n)``  ``O(n·Σh_q + n·c)``
==============  ==========================  =========================  ==========================

Both strategies can return the *top-2* distances per point
(``return_second=True``) at no extra asymptotic cost — the argmin entries
of each scored block are masked in place and a row minimum re-taken, so
block score matrices are treated as scratch on that path — which is what
seeds the Hamerly bounds.

Callers that assign repeatedly against the same data (Lloyd iterations) can
hoist ``‖x‖²`` out of the loop by passing ``x_squared_norms`` (sklearn-style).

All kernels are **dtype-preserving**: float32 inputs are scored in float32
end-to-end (the estimators' ``dtype`` knob casts once at ``fit`` entry), so
the BLAS matmuls run sgemm and the score blocks take half the bandwidth.
Scratch state (running best/second vectors) follows the block dtype; any
non-float32/float64 input falls back to float64, the historical behavior.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "squared_distances",
    "assign_to_nearest",
    "merge_row_block_assignments",
    "paired_squared_distances",
    "row_norms_squared",
]


def _working_dtype(X: np.ndarray) -> np.dtype:
    """Scratch dtype for scoring ``X``: float32 stays float32, else float64."""
    return X.dtype if X.dtype == np.dtype(np.float32) else np.dtype(np.float64)


def row_norms_squared(X: np.ndarray, *, parallel=None) -> np.ndarray:
    """Squared Euclidean norm of every row of ``X`` (shape ``(n,)``).

    ``parallel`` optionally supplies a
    :class:`~repro.runtime.parallel.RowBlockPool`; the per-row reduction
    is independent across rows, so the blocked result is bit-identical
    to the single sweep *and* streams a memory-mapped ``X`` one block at
    a time.
    """
    if parallel is None or X.shape[0] == 0:
        return np.einsum("ij,ij->i", X, X)
    parts = parallel.map(
        lambda start, stop: np.einsum(
            "ij,ij->i", X[start:stop], X[start:stop]
        ),
        X.shape[0],
    )
    return np.concatenate(parts)


def paired_squared_distances(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """``‖X[i] − C[i]‖²`` row by row (shape ``(n,)``).

    The tightening step of Hamerly pruning needs each point's exact distance
    to *its own* assigned centroid only — ``O(n·m)``, no ``(n, k)`` matrix.
    """
    delta = X - C
    return np.einsum("ij,ij->i", delta, delta)


def squared_distances(
    X: np.ndarray, C: np.ndarray, *, x_squared_norms: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``X`` and ``C``.

    Uses the expansion ``||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2`` and clips
    tiny negative values produced by floating-point cancellation.
    ``x_squared_norms`` optionally supplies precomputed ``||x||^2`` so hot
    loops pay for it once per dataset instead of once per call.
    """
    if x_squared_norms is None:
        x_squared_norms = row_norms_squared(X)
    c_sq = row_norms_squared(C)[None, :]
    distances = x_squared_norms[:, None] - 2.0 * (X @ C.T) + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def _row_min(block: np.ndarray, block_labels: np.ndarray) -> np.ndarray:
    """Per-row minimum of ``block`` given its argmin columns.

    ``np.take_along_axis`` gathers without the ``(n,)`` arange index vector
    the fancy-index form ``block[rows, block_labels]`` would reallocate on
    every call.
    """
    return np.take_along_axis(block, block_labels[:, None], axis=1)[:, 0]


def _row_second_min(block: np.ndarray, block_labels: np.ndarray) -> np.ndarray:
    """Per-row second-smallest value of ``block`` (``inf`` for single-column
    blocks), given the per-row argmin columns.

    DESTRUCTIVE: overwrites the argmin entries of ``block`` with ``+inf``
    and takes a row minimum — ~5× faster than ``np.partition`` and safe
    because every caller hands in a scratch score matrix it owns.  Exact
    ties are preserved: only the argmin *position* is masked, so a tied
    second copy of the minimum still reports the tied value.
    """
    if block.shape[1] < 2:
        return np.full(block.shape[0], np.inf, dtype=block.dtype)
    np.put_along_axis(block, block_labels[:, None], np.inf, axis=1)
    return block.min(axis=1)


def _chunked_argmin(
    n: int,
    k: int,
    chunk_size: int,
    block_fn: Callable[[int, int], np.ndarray],
    *,
    return_second: bool = False,
    dtype=np.float64,
) -> Tuple[np.ndarray, ...]:
    """Running argmin over column blocks of an implicit ``(n, k)`` matrix.

    ``block_fn(start, stop)`` must return the ``(n, stop - start)`` block of
    scores for columns ``[start, stop)``.  Shared by every chunked assignment
    path (materialized centroids, on-the-fly KR chunks, factored distances)
    so the bookkeeping — running best, row gather, offset labels — lives in
    exactly one place.

    With ``return_second=True`` a third array carries the running
    second-smallest score per row (the seed of the Hamerly lower bound),
    merged across blocks as the second order statistic of
    ``{best, second, block_best, block_second}``; ``block_fn`` outputs are
    treated as scratch and clobbered by the second-min extraction.
    """
    labels = np.zeros(n, dtype=np.int64)
    best = np.full(n, np.inf, dtype=dtype)
    second = np.full(n, np.inf, dtype=dtype) if return_second else None
    for start in range(0, k, chunk_size):
        stop = min(start + chunk_size, k)
        block = block_fn(start, stop)
        block_labels = np.argmin(block, axis=1)
        block_best = _row_min(block, block_labels)
        if return_second:
            # Second-smallest of the union {best, second, b1, b2} with
            # best ≤ second and b1 ≤ b2: min(second, b2, max(best, b1)).
            # Must merge against the *old* best, before it is updated.
            np.minimum(second, _row_second_min(block, block_labels), out=second)
            np.minimum(second, np.maximum(best, block_best), out=second)
        improved = block_best < best
        labels[improved] = block_labels[improved] + start
        best[improved] = block_best[improved]
    if return_second:
        return labels, best, second
    return labels, best


def merge_row_block_assignments(parts, return_second: bool) -> Tuple[np.ndarray, ...]:
    """Concatenate per-row-block assignment tuples in block order.

    Each row lives in exactly one block, so concatenation is the whole
    merge — no fold order to worry about.  Shared by every row-blocked
    assignment path (materialized and factored).
    """
    labels = np.concatenate([p[0] for p in parts])
    best = np.concatenate([p[1] for p in parts])
    if return_second:
        return labels, best, np.concatenate([p[2] for p in parts])
    return labels, best


def assign_to_nearest(
    X: np.ndarray,
    C: np.ndarray,
    *,
    chunk_size: int = 0,
    x_squared_norms: Optional[np.ndarray] = None,
    return_second: bool = False,
    parallel=None,
) -> Tuple[np.ndarray, ...]:
    """Assign each row of ``X`` to its nearest row of ``C``.

    Parameters
    ----------
    X : array of shape (n, m)
    C : array of shape (k, m)
    chunk_size : int
        If positive, process centroids in chunks of this many rows so that at
        most ``n * chunk_size`` distances are materialized at a time.  This is
        the memory-efficient mode used when ``k`` is large.
    x_squared_norms : array of shape (n,), optional
        Precomputed ``||x||^2`` per row; pass it when assigning repeatedly
        against the same data to hoist the norm computation out of the loop.
    return_second : bool
        Also return the squared distance to the *second*-nearest centroid
        (``inf`` when ``k == 1``) — the seed of Hamerly-style pruning bounds.
    parallel : RowBlockPool, optional
        Row-parallel execution: each fixed row block is assigned by a pool
        worker via this same function and the per-row outputs concatenated
        in block order.  Rows are scored independently, so the result is
        bit-identical at every pool width; a memory-mapped ``X`` is only
        ever touched one block at a time.

    Returns
    -------
    labels : int array of shape (n,)
    min_distances : float array of shape (n,)
        Squared distance of each point to its assigned centroid.
    second_distances : float array of shape (n,), only if ``return_second``
    """
    n = X.shape[0]
    k = C.shape[0]
    if parallel is not None and n > 0:
        if x_squared_norms is None:
            x_squared_norms = row_norms_squared(X, parallel=parallel)

        def _block(start, stop):
            return assign_to_nearest(
                X[start:stop], C, chunk_size=chunk_size,
                x_squared_norms=x_squared_norms[start:stop],
                return_second=return_second,
            )

        return merge_row_block_assignments(
            parallel.map(_block, n), return_second
        )
    if x_squared_norms is None:
        x_squared_norms = row_norms_squared(X)
    if chunk_size <= 0 or chunk_size >= k:
        distances = squared_distances(X, C, x_squared_norms=x_squared_norms)
        labels = np.argmin(distances, axis=1)
        best = _row_min(distances, labels)
        if return_second:
            return labels, best, _row_second_min(distances, labels)
        return labels, best

    return _chunked_argmin(
        n,
        k,
        chunk_size,
        lambda start, stop: squared_distances(
            X, C[start:stop], x_squared_norms=x_squared_norms
        ),
        return_second=return_second,
        dtype=np.promote_types(_working_dtype(X), _working_dtype(C)),
    )
