"""Factored assignment kernel exploiting Khatri-Rao structure (Section 6).

The paper identifies the assignment step as the bottleneck of Khatri-Rao
k-Means, yet a direct implementation pays the full k-Means price: it
materializes all ``k = ∏ h_q`` centroids and computes an ``O(n·k·m)``
distance matrix, discarding the very structure that makes the model compact.

For the **sum** aggregator the squared distance decomposes.  With centroid
``c = Σ_q θ_q[j_q]``:

.. math::

    ‖x − c‖² = ‖x‖² − 2 Σ_q x·θ_q[j_q] + S[j_1..j_p]

where ``S[j_1..j_p] = ‖Σ_q θ_q[j_q]‖²`` depends only on the protocentroids.
The per-point work therefore needs just ``p`` Gram matrices
``G_q = X @ θ_qᵀ`` of shape ``(n, h_q)`` plus the data-free vector ``S``,
turning the dominant cost into ``O(n·m·Σh_q + n·k·p)`` and removing centroid
materialization from the hot loop entirely.  Since ``‖x‖²`` is constant per
row it does not affect the argmin, so the kernel minimizes the *partial*
score ``S − 2 Σ_q G_q`` and adds ``‖x‖²`` back only for the returned
distances.

Which aggregators decompose this way is an aggregator capability
(``supports_factored_assignment`` — see :mod:`repro.linalg.aggregators`);
the product aggregator does not, and estimators fall back to the
materialized path for it.

The module also hosts :func:`grouped_row_sum`, the fused-bincount scatter
reduction used by the closed-form protocentroid updates
(:mod:`repro.core._update`); ``np.add.at`` is an order of magnitude slower
for this access pattern.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .._validation import as_float_array, int_prod
from ..exceptions import ValidationError
from ..linalg import get_aggregator
from ._distances import (
    _chunked_argmin,
    _row_min,
    _row_second_min,
    _working_dtype,
    merge_row_block_assignments,
    row_norms_squared,
)

__all__ = ["assign_factored", "grouped_row_sum", "resolve_assignment"]

#: valid values of the estimators' ``assignment`` knob
ASSIGNMENT_MODES = ("auto", "factored", "materialized")


def resolve_assignment(assignment: str, aggregator) -> bool:
    """Return True when the factored kernel should handle assignment.

    ``"auto"`` and ``"factored"`` both resolve to the factored kernel only
    when the aggregator advertises ``supports_factored_assignment``; other
    aggregators transparently fall back to the materialized path.
    """
    if assignment not in ASSIGNMENT_MODES:
        raise ValidationError(
            f"assignment must be one of {ASSIGNMENT_MODES}, got {assignment!r}"
        )
    if assignment == "materialized":
        return False
    return bool(get_aggregator(aggregator).supports_factored_assignment)


def assign_factored(
    X: np.ndarray,
    thetas: Sequence[np.ndarray],
    aggregator="sum",
    *,
    chunk_size: int = 0,
    x_squared_norms: Optional[np.ndarray] = None,
    return_second: bool = False,
    parallel=None,
) -> Tuple[np.ndarray, ...]:
    """Assign rows of ``X`` to their nearest Khatri-Rao centroid, factored.

    Produces exactly the labels and squared distances of materializing all
    ``∏ h_q`` centroids and calling
    :func:`repro.core._distances.assign_to_nearest`, but in
    ``O(n·m·Σh_q + n·k·p)`` time and without the ``(k, m)`` centroid matrix.

    Parameters
    ----------
    X : array of shape (n, m)
    thetas : sequence of arrays, set ``q`` of shape ``(h_q, m)``
        The protocentroid sets; centroid ``(j_1, ..., j_p)`` is their
        aggregation, flat-ordered C-style (last set fastest).
    aggregator : str or Aggregator
        Must advertise ``supports_factored_assignment`` (the sum aggregator).
    chunk_size : int
        If positive, sweep the flat tuple grid in chunks of this many
        centroids so at most ``n * chunk_size`` partial scores exist at a
        time — the memory-efficient mode gets the factored speedup too.
    x_squared_norms : array of shape (n,), optional
        Precomputed ``‖x‖²`` per row (hoisted out of Lloyd iterations).
    return_second : bool
        Also return the squared distance to the second-nearest centroid
        (``inf`` when ``∏ h_q == 1``), seeding Hamerly pruning bounds at no
        extra asymptotic cost.
    parallel : RowBlockPool, optional
        Row-parallel execution: each fixed row block computes its own
        Grams and partial scores on a pool worker (this same function on
        the slice), and the per-row outputs are concatenated in block
        order.  Rows are scored independently, so the result is
        bit-identical at every pool width, and a memory-mapped ``X`` is
        only touched one block at a time.

    Returns
    -------
    labels : int array of shape (n,)
    min_distances : float array of shape (n,)
    second_distances : float array of shape (n,), only if ``return_second``
    """
    agg = get_aggregator(aggregator)
    if not agg.supports_factored_assignment:
        raise ValidationError(
            f"aggregator {agg.name!r} does not support factored assignment; "
            "use the materialized path instead"
        )
    # Dtype-preserving: float32 data scores in float32 (sgemm Grams, half-
    # bandwidth partial-score blocks); anything else widens to float64.
    X = as_float_array(X)
    n = X.shape[0]
    cardinalities = tuple(theta.shape[0] for theta in thetas)
    # int_prod, not np.prod: the implicit grid size overflows int64 for
    # large configurations (e.g. eight sets of 256) and np.prod wraps.
    k = int_prod(cardinalities)
    if parallel is not None and n > 0:
        if x_squared_norms is None:
            x_squared_norms = row_norms_squared(X, parallel=parallel)

        def _block(start, stop):
            return assign_factored(
                X[start:stop], thetas, agg, chunk_size=chunk_size,
                x_squared_norms=x_squared_norms[start:stop],
                return_second=return_second,
            )

        return merge_row_block_assignments(
            parallel.map(_block, n), return_second
        )
    if x_squared_norms is None:
        x_squared_norms = row_norms_squared(X)

    grams = agg.cross_gram(X, thetas)  # p matrices of shape (n, h_q)

    second = None
    if chunk_size <= 0 or chunk_size >= k:
        self_terms = agg.self_interaction(thetas)  # flat (k,)
        partial = _full_partial_scores(grams, self_terms, cardinalities)
        labels = np.argmin(partial, axis=1)
        best = _row_min(partial, labels)
        if return_second:
            second = _row_second_min(partial, labels)
    else:
        # The chunked sweep evaluates self-interactions per block from small
        # per-set tables, so nothing of size k is ever allocated and the
        # memory mode's bounded-peak guarantee carries over.
        self_term_block = agg.self_interaction_blocks(thetas)
        result = _chunked_argmin(
            n,
            k,
            chunk_size,
            lambda start, stop: _partial_score_block(
                grams, self_term_block, cardinalities, start, stop
            ),
            return_second=return_second,
            dtype=_working_dtype(grams[0]),
        )
        if return_second:
            labels, best, second = result
        else:
            labels, best = result
    min_distances = x_squared_norms + best
    np.maximum(min_distances, 0.0, out=min_distances)
    if return_second:
        second_distances = x_squared_norms + second
        np.maximum(second_distances, 0.0, out=second_distances)
        return labels, min_distances, second_distances
    return labels, min_distances


def _full_partial_scores(
    grams: Sequence[np.ndarray],
    self_terms: np.ndarray,
    cardinalities: Tuple[int, ...],
) -> np.ndarray:
    """``S − 2 Σ_q G_q`` broadcast over the whole ``(n, h_1, ..., h_p)`` grid."""
    n = grams[0].shape[0]
    p = len(cardinalities)
    scores = np.broadcast_to(
        self_terms.reshape((1,) + cardinalities), (n,) + cardinalities
    ).copy()
    for q, gram in enumerate(grams):
        shape = [1] * (p + 1)
        shape[0] = n
        shape[q + 1] = cardinalities[q]
        scores -= 2.0 * gram.reshape(shape)
    return scores.reshape(n, -1)


def _partial_score_block(
    grams: Sequence[np.ndarray],
    self_term_block: Callable[[Sequence[np.ndarray]], np.ndarray],
    cardinalities: Tuple[int, ...],
    start: int,
    stop: int,
) -> np.ndarray:
    """Partial scores for flat centroid indices ``[start, stop)``."""
    tuple_indices = np.unravel_index(np.arange(start, stop), cardinalities)
    block = np.broadcast_to(
        self_term_block(tuple_indices)[None, :],
        (grams[0].shape[0], stop - start),
    ).copy()
    for gram, indices in zip(grams, tuple_indices):
        block -= 2.0 * gram[:, indices]
    return block


def grouped_row_sum(
    assignments: np.ndarray, values: np.ndarray, num_groups: int,
    parallel=None,
) -> np.ndarray:
    """Sum rows of ``values`` into ``num_groups`` buckets given by ``assignments``.

    Equivalent to ``np.add.at(out, assignments, values)`` on a zeroed
    ``(num_groups, m)`` array, but implemented as a single flat
    ``np.bincount`` over the fused index ``assignments·m + column`` —
    ``np.add.at`` buffered scatter is a known order-of-magnitude slowdown
    for this access pattern, and one fused pass beats the previous
    per-column ``np.bincount`` loop (m Python-level calls over strided
    columns) at every realistic ``m``.  Bit-identical to both: every output
    bucket accumulates its contributions in the same (increasing-row)
    order.

    **Accumulates — and returns — float64 for every input dtype.**  This is
    one of the two deliberate float64 islands of the ``dtype="float32"``
    kernel stack (the other is the ``C_qr @ θ_r`` contingency matmuls; see
    ``docs/numerics.md``): the grouped sum reduces up to ``n`` terms per
    bucket, and a float32 accumulator would grow an ``O(eps32·n·|Σ|)``
    error that dwarfs the single ``O(eps32·|v|)`` rounding the callers pay
    when they store the quotient back into a float32 protocentroid.  Each
    float32 element widens to float64 exactly, so the result is
    bit-identical to summing a pre-widened copy.

    With ``parallel`` (a :class:`~repro.runtime.parallel.RowBlockPool`),
    each fixed row block computes its own fused-bincount partial and the
    partials are **summed in ascending block order** — the accumulation
    split is fixed by the block boundaries alone, so the result is
    bit-identical at every pool width (and may differ from the single
    sweep only in the last ulp, the same documented reorder the
    ``update=`` knob carries).
    """
    values = as_float_array(values)
    n, m = values.shape
    if parallel is not None and n > 0:
        parts = parallel.map(
            lambda start, stop: grouped_row_sum(
                assignments[start:stop], values[start:stop], num_groups
            ),
            n,
        )
        out = parts[0]
        for part in parts[1:]:
            out += part
        return out
    if m == 0:
        return np.zeros((num_groups, m), dtype=np.float64)
    fused = assignments.astype(np.int64, copy=False)[:, None] * m + np.arange(
        m, dtype=np.int64
    )
    # np.bincount casts its weights to float64 internally (exact for f4
    # inputs) and always returns a float64 accumulation.
    return np.bincount(
        fused.ravel(), weights=np.ascontiguousarray(values).ravel(),
        minlength=num_groups * m,
    ).reshape(num_groups, m)
