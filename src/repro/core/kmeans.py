"""Standard k-Means (Lloyd's algorithm) with k-means++ initialization.

This is the unconstrained baseline of the paper (Section 3).  It is written
from scratch on numpy so that the scalability comparison of Figure 8 runs
both algorithms on the same code path, as the paper does for fairness
("in the scalability experiments ... we use an implementation of k-Means
which mirrors the implementation of Khatri-Rao-k-Means", Appendix B).
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from .._validation import (
    check_array,
    check_dtype,
    check_in,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConvergenceWarning, NotFittedError, ValidationError
from ._bounds import HamerlyBounds, check_pruning, dense_drift, hamerly_step
from ._distances import (
    assign_to_nearest,
    paired_squared_distances,
    row_norms_squared,
    squared_distances,
)
from ._factored import grouped_row_sum

__all__ = ["KMeans", "kmeans_plus_plus_init"]


def _check_sample_weight(sample_weight, n_samples: int, dtype=np.float64) -> np.ndarray:
    """Validate per-sample weights; defaults to all-ones.

    ``dtype`` is the estimator's working dtype: weights are cast once here
    so the per-point products (``w·X``, weighted inertia) stay in-dtype
    instead of silently promoting every float32 hot-loop array to float64.
    """
    if sample_weight is None:
        return np.ones(n_samples, dtype=dtype)
    weights = np.asarray(sample_weight, dtype=dtype).ravel()
    if weights.shape[0] != n_samples:
        raise ValidationError(
            f"sample_weight has length {weights.shape[0]}, expected {n_samples}"
        )
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValidationError("sample_weight must be finite and non-negative")
    if weights.sum() <= 0:
        raise ValidationError("sample_weight must have positive total mass")
    return weights


def kmeans_plus_plus_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding [Arthur & Vassilvitskii, 2007].

    The first centroid is drawn uniformly; each subsequent centroid is a data
    point sampled with probability proportional to its squared distance to
    the nearest centroid chosen so far.

    Returns
    -------
    array of shape (n_clusters, m)
    """
    n = X.shape[0]
    if n_clusters > n:
        raise ValidationError(f"n_clusters={n_clusters} exceeds number of samples {n}")
    # Seeds inherit the data dtype (the estimators' working dtype).
    centers = np.empty((n_clusters, X.shape[1]), dtype=X.dtype)
    first = rng.integers(n)
    centers[0] = X[first]
    closest = squared_distances(X, centers[:1]).ravel()
    for i in range(1, n_clusters):
        # D² probabilities in float64 whatever the working dtype:
        # rng.choice normalization is strict, and float32 distances summed
        # to a float32 total can miss its tolerance.  No-op at float64.
        closest64 = np.asarray(closest, dtype=np.float64)
        total = closest64.sum()
        if total <= 0.0:
            # All points coincide with chosen centers; fall back to uniform.
            idx = rng.integers(n)
        else:
            idx = rng.choice(n, p=closest64 / total)
        centers[i] = X[idx]
        new_distances = squared_distances(X, centers[i : i + 1]).ravel()
        np.minimum(closest, new_distances, out=closest)
    return centers


class KMeans:
    """Lloyd's k-Means with restarts.

    Parameters
    ----------
    n_clusters : int
        Number of centroids ``k``.
    init : {"k-means++", "random"}
        Seeding strategy.
    n_init : int
        Number of random restarts; the solution with the lowest inertia wins
        (the paper runs each method 20 times and keeps the best, Section 9.1).
    max_iter : int
        Maximum Lloyd iterations per restart (paper: 200).
    tol : float
        Stop when total squared centroid movement falls below ``tol``
        (paper: 1e-4).
    pruning : {"auto", "bounds", "none"}
        Cross-iteration Hamerly pruning (:mod:`repro.core._bounds`): keep a
        per-point upper bound on the distance to the assigned centroid and a
        lower bound on the second-nearest, inflate them by the centroid
        drift each iteration, and re-score only the points whose bounds
        overlap — late iterations cost ``O(|active|·k·m)`` instead of
        ``O(n·k·m)``.  Produces labels, inertia and iteration counts
        identical to the unpruned path *at the same working dtype* (the
        certified bound margins scale with the dtype's machine epsilon);
        ``"auto"`` (default) enables it, ``"none"`` forces the classic full
        re-assignment.
    dtype : {"float64", "float32"} or numpy dtype
        Working dtype of the fit: ``X`` is cast once at ``fit`` entry and
        the distance/update hot loops compute in that precision (float32
        halves memory bandwidth on the BLAS-bound assignment step).
        Grouped accumulation (centroid sums via
        :func:`repro.core.grouped_row_sum`), inertia reductions and the
        pruning-bound maintenance stay float64 — see ``docs/numerics.md``
        for the error envelope.  ``"float64"`` (default) is bit-identical
        to the historical behavior.
    random_state : None, int or Generator
        Source of randomness.

    Attributes
    ----------
    cluster_centers_ : array of shape (n_clusters, m)
        Learned centroids, in the working dtype.
    labels_ : int array of shape (n,)
    inertia_ : float
        Sum of squared distances to assigned centroids (Eq. 1).
    n_iter_ : int
        Iterations run by the best restart.
    dtype_ : numpy.dtype
        Working dtype the fit actually ran in.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    >>> model = KMeans(n_clusters=2, random_state=0).fit(X)
    >>> sorted(np.bincount(model.labels_).tolist())
    [2, 2]
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        init: str = "k-means++",
        n_init: int = 10,
        max_iter: int = 200,
        tol: float = 1e-4,
        pruning: str = "auto",
        dtype="float64",
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.init = check_in(init, "init", ("k-means++", "random"))
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.pruning = check_pruning(pruning)
        self.dtype = check_dtype(dtype)
        self.random_state = random_state

        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0
        self.dtype_: Optional[np.dtype] = None

    # ------------------------------------------------------------------ API
    def fit(self, X, sample_weight=None) -> "KMeans":
        """Run ``n_init`` restarts of Lloyd's algorithm and keep the best.

        ``sample_weight`` optionally weights each point's contribution to
        the objective and to the centroid updates (e.g. counts of repeated
        rows).
        """
        # KMeans has no aggregator capability to consult: the requested
        # dtype is the working dtype, cast exactly once here.
        self.dtype_ = self.dtype
        X = check_array(X, min_samples=self.n_clusters, dtype=self.dtype_)
        weights = _check_sample_weight(sample_weight, X.shape[0], dtype=X.dtype)
        rng = check_random_state(self.random_state)
        # ‖x‖² is constant across iterations and restarts — pay for it once.
        x_squared_norms = row_norms_squared(X)

        best_inertia = np.inf
        best_centers = None
        best_labels = None
        best_iterations = 0
        # ... and so is the weighted data matrix feeding the centroid sums.
        weighted_X = X * weights[:, None]
        for _ in range(self.n_init):
            centers, labels, run_inertia, iterations = self._single_run(
                X, rng, weights, weighted_X, x_squared_norms
            )
            if run_inertia < best_inertia:
                best_inertia = run_inertia
                best_centers = centers
                best_labels = labels
                best_iterations = iterations

        self.cluster_centers_ = best_centers
        self.labels_ = best_labels
        self.inertia_ = float(best_inertia)
        self.n_iter_ = best_iterations
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the labels of the training data."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Assign each row of ``X`` to its nearest learned centroid."""
        self._check_fitted()
        X = check_array(X, dtype=self.cluster_centers_.dtype)
        if X.shape[1] != self.cluster_centers_.shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.cluster_centers_.shape[1]}"
            )
        labels, _ = assign_to_nearest(X, self.cluster_centers_)
        return labels

    def transform(self, X) -> np.ndarray:
        """Squared distances of each row of ``X`` to every centroid."""
        self._check_fitted()
        X = check_array(X, dtype=self.cluster_centers_.dtype)
        return squared_distances(X, self.cluster_centers_)

    def score(self, X) -> float:
        """Negative inertia of ``X`` under the learned centroids."""
        self._check_fitted()
        X = check_array(X, dtype=self.cluster_centers_.dtype)
        _, distances = assign_to_nearest(X, self.cluster_centers_)
        return -float(distances.sum(dtype=np.float64))

    def parameter_count(self) -> int:
        """Scalars stored by the summary: ``k · m``."""
        self._check_fitted()
        return int(self.cluster_centers_.size)

    # ------------------------------------------------------------ internals
    def _check_fitted(self) -> None:
        if self.cluster_centers_ is None:
            raise NotFittedError("this KMeans instance is not fitted yet; call fit first")

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.init == "k-means++":
            return kmeans_plus_plus_init(X, self.n_clusters, rng)
        indices = rng.choice(X.shape[0], size=self.n_clusters, replace=False)
        return X[indices].copy()

    @property
    def uses_pruning(self) -> bool:
        """Whether Lloyd iterations run with Hamerly bounds pruning."""
        return self.pruning != "none"

    def _assign_step(
        self,
        X: np.ndarray,
        centers: np.ndarray,
        labels: np.ndarray,
        bounds: Optional[HamerlyBounds],
        x_squared_norms: np.ndarray,
    ):
        """One assignment pass; returns ``(labels, min_distances_or_None)``.

        ``min_distances`` is ``None`` on pruned iterations — the caller
        recomputes it on demand (only the empty-cluster reseed needs it).
        """
        if bounds is None:
            return assign_to_nearest(X, centers, x_squared_norms=x_squared_norms)

        def exact_squared(idx):
            return paired_squared_distances(X[idx], centers[labels[idx]])

        def rescore(idx):
            if idx is None:
                return assign_to_nearest(
                    X, centers, x_squared_norms=x_squared_norms,
                    return_second=True,
                )
            return assign_to_nearest(
                X[idx], centers, x_squared_norms=x_squared_norms[idx],
                return_second=True,
            )

        labels, _, full_d1 = hamerly_step(bounds, labels, exact_squared, rescore)
        return labels, full_d1

    def _single_run(
        self,
        X: np.ndarray,
        rng: np.random.Generator,
        weights: np.ndarray,
        weighted_X: np.ndarray,
        x_squared_norms: np.ndarray,
    ):
        centers = self._init_centers(X, rng)
        bounds = (
            HamerlyBounds(x_squared_norms, X.shape[1])
            if self.uses_pruning else None
        )
        labels = np.zeros(X.shape[0], dtype=np.int64)
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            labels, min_distances = self._assign_step(
                X, centers, labels, bounds, x_squared_norms
            )
            new_centers = centers.copy()
            counts = np.bincount(labels, weights=weights, minlength=self.n_clusters)
            # Per-column bincount reduction (grouped_row_sum) over the
            # fit-hoisted weighted matrix: same row-order accumulation as
            # the np.add.at scatter it replaces, an order of magnitude
            # faster — and with pruning this update is the iteration floor.
            sums = grouped_row_sum(labels, weighted_X, self.n_clusters)
            non_empty = counts > 0
            new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
            # Empty clusters: re-seed on the points farthest from their centroid,
            # the standard remedy (also used by KR-k-Means, Appendix B).
            empty = np.flatnonzero(~non_empty)
            if empty.size:
                if min_distances is None:
                    # Pruned iterations skip exact per-point distances; the
                    # reseed rule ranks all of them, so fall back to the full
                    # computation the unpruned path runs — same call, same
                    # inputs, bit-identical reseed choice.
                    _, min_distances = assign_to_nearest(
                        X, centers, x_squared_norms=x_squared_norms
                    )
                farthest = np.argsort(min_distances * weights)[::-1][: empty.size]
                new_centers[empty] = X[farthest]
            # float64 reduction for any working dtype (exact no-op at f64):
            # the convergence test must not drown in f32 accumulation noise.
            shift = float(np.sum((new_centers - centers) ** 2, dtype=np.float64))
            if bounds is not None and shift >= self.tol:
                drift = dense_drift(centers, new_centers)
                bounds.inflate(drift[labels], float(drift.max()))
            centers = new_centers
            if shift < self.tol:
                break
        else:  # pragma: no cover - depends on data
            warnings.warn(
                f"KMeans did not converge in {self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )
        labels, min_distances = assign_to_nearest(
            X, centers, x_squared_norms=x_squared_norms
        )
        inertia = float((min_distances * weights).sum(dtype=np.float64))
        return centers, labels, inertia, iterations
