"""Standard k-Means (Lloyd's algorithm) with k-means++ initialization.

This is the unconstrained baseline of the paper (Section 3).  It is written
from scratch on numpy so that the scalability comparison of Figure 8 runs
both algorithms on the same code path, as the paper does for fairness
("in the scalability experiments ... we use an implementation of k-Means
which mirrors the implementation of Khatri-Rao-k-Means", Appendix B).
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Optional

import numpy as np

from .._validation import (
    check_array,
    check_dtype,
    check_in,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConvergenceWarning, NotFittedError, ValidationError
from ..runtime.checkpoint import (
    check_header_fields,
    data_fingerprint,
    read_checkpoint,
    resolve_checkpoint,
    restore_rng_state,
    serialize_rng_state,
    write_checkpoint,
)
from ..runtime.executor import resolve_executor, run_restarts
from ..runtime.parallel import open_row_pool, resolve_parallel
from ._bounds import HamerlyBounds, check_pruning, dense_drift, hamerly_step
from ._distances import (
    assign_to_nearest,
    paired_squared_distances,
    row_norms_squared,
    squared_distances,
)
from ._factored import grouped_row_sum
from ._update import _group_mass

__all__ = ["KMeans", "kmeans_plus_plus_init"]


def _check_sample_weight(sample_weight, n_samples: int, dtype=np.float64) -> np.ndarray:
    """Validate per-sample weights; defaults to all-ones.

    ``dtype`` is the estimator's working dtype: weights are cast once here
    so the per-point products (``w·X``, weighted inertia) stay in-dtype
    instead of silently promoting every float32 hot-loop array to float64.
    """
    if sample_weight is None:
        return np.ones(n_samples, dtype=dtype)
    weights = np.asarray(sample_weight, dtype=dtype).ravel()
    if weights.shape[0] != n_samples:
        raise ValidationError(
            f"sample_weight has length {weights.shape[0]}, expected {n_samples}"
        )
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValidationError("sample_weight must be finite and non-negative")
    if weights.sum() <= 0:
        raise ValidationError("sample_weight must have positive total mass")
    return weights


def kmeans_plus_plus_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding [Arthur & Vassilvitskii, 2007].

    The first centroid is drawn uniformly; each subsequent centroid is a data
    point sampled with probability proportional to its squared distance to
    the nearest centroid chosen so far.

    Returns
    -------
    array of shape (n_clusters, m)
    """
    n = X.shape[0]
    if n_clusters > n:
        raise ValidationError(f"n_clusters={n_clusters} exceeds number of samples {n}")
    # Seeds inherit the data dtype (the estimators' working dtype).
    centers = np.empty((n_clusters, X.shape[1]), dtype=X.dtype)
    first = rng.integers(n)
    centers[0] = X[first]
    closest = squared_distances(X, centers[:1]).ravel()
    for i in range(1, n_clusters):
        # D² probabilities in float64 whatever the working dtype:
        # rng.choice normalization is strict, and float32 distances summed
        # to a float32 total can miss its tolerance.  No-op at float64.
        closest64 = np.asarray(closest, dtype=np.float64)
        total = closest64.sum()
        if total <= 0.0:
            # All points coincide with chosen centers; fall back to uniform.
            idx = rng.integers(n)
        else:
            idx = rng.choice(n, p=closest64 / total)
        centers[i] = X[idx]
        new_distances = squared_distances(X, centers[i : i + 1]).ravel()
        np.minimum(closest, new_distances, out=closest)
    return centers


class KMeans:
    """Lloyd's k-Means with restarts.

    Parameters
    ----------
    n_clusters : int
        Number of centroids ``k``.
    init : {"k-means++", "random"}
        Seeding strategy.
    n_init : int
        Number of random restarts; the solution with the lowest inertia wins
        (the paper runs each method 20 times and keeps the best, Section 9.1).
    max_iter : int
        Maximum Lloyd iterations per restart (paper: 200).
    tol : float
        Stop when total squared centroid movement falls below ``tol``
        (paper: 1e-4).
    pruning : {"auto", "bounds", "none"}
        Cross-iteration Hamerly pruning (:mod:`repro.core._bounds`): keep a
        per-point upper bound on the distance to the assigned centroid and a
        lower bound on the second-nearest, inflate them by the centroid
        drift each iteration, and re-score only the points whose bounds
        overlap — late iterations cost ``O(|active|·k·m)`` instead of
        ``O(n·k·m)``.  Produces labels, inertia and iteration counts
        identical to the unpruned path *at the same working dtype* (the
        certified bound margins scale with the dtype's machine epsilon);
        ``"auto"`` (default) enables it, ``"none"`` forces the classic full
        re-assignment.
    dtype : {"float64", "float32"} or numpy dtype
        Working dtype of the fit: ``X`` is cast once at ``fit`` entry and
        the distance/update hot loops compute in that precision (float32
        halves memory bandwidth on the BLAS-bound assignment step).
        Grouped accumulation (centroid sums via
        :func:`repro.core.grouped_row_sum`), inertia reductions and the
        pruning-bound maintenance stay float64 — see ``docs/numerics.md``
        for the error envelope.  ``"float64"`` (default) is bit-identical
        to the historical behavior.
    random_state : None, int or Generator
        Source of randomness.
    checkpoint : None, path or CheckpointConfig
        When set, the sequential restart sweep snapshots its full state
        (centers, labels, bound caches, restart/iteration counters,
        best-so-far, RNG state) atomically to this path on the config's
        cadence — see :mod:`repro.runtime.checkpoint`.  Incompatible
        with ``n_jobs``.
    resume_from : None or path
        Resume a fit from a checkpoint written by a run with identical
        parameters on identical data (both verified, mismatch is a typed
        :class:`~repro.exceptions.CheckpointError`).  The resumed fit is
        bit-identical to the uninterrupted one.
    callback : None or callable
        ``callback(restart_index, iteration)`` invoked after every
        completed Lloyd iteration — the training fault-injection seam
        (:class:`~repro.faults.FaultHook`), also usable for progress
        reporting.  A callback raising ``KeyboardInterrupt`` triggers
        the graceful-interrupt path.
    n_jobs : None, int or ExecutorConfig
        ``None`` (default) runs restarts sequentially on a shared RNG —
        bit-compatible with every earlier release.  An int (or a full
        :class:`~repro.runtime.executor.ExecutorConfig`) runs them
        through the supervised parallel executor on per-restart
        ``rng.spawn`` streams: the result is identical at every worker
        count, and restart failures are retried/tolerated per the
        config.  Incompatible with ``checkpoint``/``resume_from``.
    n_threads : None, int or ParallelConfig
        ``None`` (default) keeps the legacy single-sweep kernels —
        bit-compatible with every earlier release — unless the
        ``REPRO_N_THREADS`` environment variable engages the blocked
        layer suite-wide.  An int (or a full
        :class:`~repro.runtime.parallel.ParallelConfig`) runs the
        per-iteration kernels over fixed row blocks on a supervised
        thread pool: block boundaries depend only on ``(n, block_rows)``
        and reductions merge in block order, so any two thread counts
        are bit-identical.  Composes with ``n_jobs`` (restart workers
        share the pool) and is the seam that streams a
        :class:`numpy.memmap` ``X`` through ``fit`` block by block.

    Attributes
    ----------
    cluster_centers_ : array of shape (n_clusters, m)
        Learned centroids, in the working dtype.
    labels_ : int array of shape (n,)
    inertia_ : float
        Sum of squared distances to assigned centroids (Eq. 1).
    n_iter_ : int
        Iterations run by the best restart.
    dtype_ : numpy.dtype
        Working dtype the fit actually ran in.
    converged_ : bool
        ``True`` when ``fit`` ran to normal completion; ``False`` when a
        ``KeyboardInterrupt`` stopped it early (the best state found so
        far is retained instead of lost).

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    >>> model = KMeans(n_clusters=2, random_state=0).fit(X)
    >>> sorted(np.bincount(model.labels_).tolist())
    [2, 2]
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        init: str = "k-means++",
        n_init: int = 10,
        max_iter: int = 200,
        tol: float = 1e-4,
        pruning: str = "auto",
        dtype="float64",
        random_state=None,
        checkpoint=None,
        resume_from=None,
        callback=None,
        n_jobs=None,
        n_threads=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.init = check_in(init, "init", ("k-means++", "random"))
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.pruning = check_pruning(pruning)
        self.dtype = check_dtype(dtype)
        self.random_state = random_state
        self.checkpoint = resolve_checkpoint(checkpoint)
        self.resume_from = None if resume_from is None else Path(resume_from)
        if callback is not None and not callable(callback):
            raise ValidationError(f"callback must be callable, got {callback!r}")
        self.callback = callback
        self.n_jobs = resolve_executor(n_jobs)
        self.n_threads = resolve_parallel(n_threads)
        if self.n_jobs is not None and (
            self.checkpoint is not None or self.resume_from is not None
        ):
            raise ValidationError(
                "checkpoint/resume_from are sequential-sweep features and "
                "cannot be combined with n_jobs"
            )

        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0
        self.dtype_: Optional[np.dtype] = None
        self.converged_: bool = False

    # ------------------------------------------------------------------ API
    def fit(self, X, sample_weight=None) -> "KMeans":
        """Run ``n_init`` restarts of Lloyd's algorithm and keep the best.

        ``sample_weight`` optionally weights each point's contribution to
        the objective and to the centroid updates (e.g. counts of repeated
        rows).
        """
        # KMeans has no aggregator capability to consult: the requested
        # dtype is the working dtype, cast exactly once here.
        self.dtype_ = self.dtype
        X = check_array(X, min_samples=self.n_clusters, dtype=self.dtype_)
        weights = _check_sample_weight(sample_weight, X.shape[0], dtype=X.dtype)
        rng = check_random_state(self.random_state)
        with open_row_pool(self.n_threads) as pool:
            return self._fit(X, sample_weight, weights, rng, pool)

    def _fit(self, X, sample_weight, weights, rng, parallel) -> "KMeans":
        # ‖x‖² is constant across iterations and restarts — pay for it once.
        x_squared_norms = row_norms_squared(X, parallel=parallel)

        # ... and so is the weighted data matrix feeding the centroid sums.
        # Unweighted fits reuse X itself: X·1 is exact, so results are
        # unchanged, and a memory-mapped X is never materialized in RAM.
        weighted_X = X if sample_weight is None else X * weights[:, None]

        if self.n_jobs is not None:
            # Supervised parallel sweep: per-restart spawned streams, so
            # the selected model is identical at every worker count.  The
            # row pool is shared across restart workers (submit is
            # thread-safe; block workers never re-enter the pool).
            def run_one(gen, seed_index):
                centers, labels, run_inertia, iterations, run_interrupted = (
                    self._single_run(
                        X, gen, weights, weighted_X, x_squared_norms,
                        restart_index=seed_index,
                        parallel=parallel,
                    )
                )
                if run_interrupted:
                    # A callback-raised interrupt inside a worker: surface
                    # it so the sweep reports interrupted (the executor
                    # keeps every restart that already completed).
                    raise KeyboardInterrupt
                return run_inertia, (centers, labels, iterations)

            report = run_restarts(run_one, self.n_init, rng, self.n_jobs)
            if report.interrupted and not report.outcomes:
                raise KeyboardInterrupt
            best = report.best()
            self.cluster_centers_, self.labels_, self.n_iter_ = best.payload
            self.inertia_ = best.inertia
            self.converged_ = not report.interrupted
            return self

        best_inertia = np.inf
        best_centers = None
        best_labels = None
        best_iterations = 0
        start_restart = 0
        resume_state = None
        # The full-pass sha256 fingerprint only feeds checkpoint headers;
        # plain fits (and streamed memmap fits) skip it entirely.
        fingerprint = (
            data_fingerprint(X, weights)
            if self.checkpoint is not None or self.resume_from is not None
            else None
        )
        if self.resume_from is not None:
            (start_restart, resume_state, best_resumed) = self._load_checkpoint(
                rng, fingerprint, x_squared_norms, X.shape[1]
            )
            if best_resumed is not None:
                best_centers, best_labels, best_inertia, best_iterations = (
                    best_resumed
                )
        interrupted = False
        for restart in range(start_restart, self.n_init):
            best_state = (
                None if best_centers is None
                else (best_centers, best_labels, best_inertia, best_iterations)
            )
            try:
                centers, labels, run_inertia, iterations, run_interrupted = (
                    self._single_run(
                        X, rng, weights, weighted_X, x_squared_norms,
                        restart_index=restart,
                        resume=resume_state,
                        fingerprint=fingerprint,
                        best_state=best_state,
                        parallel=parallel,
                    )
                )
            except KeyboardInterrupt:
                # Interrupted before this restart completed one iteration:
                # keep the best earlier restart if there is one.
                if best_centers is None:
                    raise
                interrupted = True
                break
            resume_state = None
            if run_inertia < best_inertia:
                best_inertia = run_inertia
                best_centers = centers
                best_labels = labels
                best_iterations = iterations
            if run_interrupted:
                interrupted = True
                break

        self.cluster_centers_ = best_centers
        self.labels_ = best_labels
        self.inertia_ = float(best_inertia)
        self.n_iter_ = best_iterations
        self.converged_ = not interrupted
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the labels of the training data."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Assign each row of ``X`` to its nearest learned centroid."""
        self._check_fitted()
        X = check_array(X, dtype=self.cluster_centers_.dtype)
        if X.shape[1] != self.cluster_centers_.shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.cluster_centers_.shape[1]}"
            )
        with open_row_pool(self.n_threads) as pool:
            labels, _ = assign_to_nearest(
                X, self.cluster_centers_, parallel=pool
            )
        return labels

    def transform(self, X) -> np.ndarray:
        """Squared distances of each row of ``X`` to every centroid."""
        self._check_fitted()
        X = check_array(X, dtype=self.cluster_centers_.dtype)
        return squared_distances(X, self.cluster_centers_)

    def score(self, X) -> float:
        """Negative inertia of ``X`` under the learned centroids."""
        self._check_fitted()
        X = check_array(X, dtype=self.cluster_centers_.dtype)
        with open_row_pool(self.n_threads) as pool:
            _, distances = assign_to_nearest(
                X, self.cluster_centers_, parallel=pool
            )
        return -float(distances.sum(dtype=np.float64))

    def parameter_count(self) -> int:
        """Scalars stored by the summary: ``k · m``."""
        self._check_fitted()
        return int(self.cluster_centers_.size)

    # ------------------------------------------------------------ internals
    def _check_fitted(self) -> None:
        if self.cluster_centers_ is None:
            raise NotFittedError("this KMeans instance is not fitted yet; call fit first")

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.init == "k-means++":
            return kmeans_plus_plus_init(X, self.n_clusters, rng)
        indices = rng.choice(X.shape[0], size=self.n_clusters, replace=False)
        return X[indices].copy()

    @property
    def uses_pruning(self) -> bool:
        """Whether Lloyd iterations run with Hamerly bounds pruning."""
        return self.pruning != "none"

    def _assign_step(
        self,
        X: np.ndarray,
        centers: np.ndarray,
        labels: np.ndarray,
        bounds: Optional[HamerlyBounds],
        x_squared_norms: np.ndarray,
        parallel=None,
    ):
        """One assignment pass; returns ``(labels, min_distances_or_None)``.

        ``min_distances`` is ``None`` on pruned iterations — the caller
        recomputes it on demand (only the empty-cluster reseed needs it).
        """
        if bounds is None:
            return assign_to_nearest(
                X, centers, x_squared_norms=x_squared_norms, parallel=parallel
            )

        def exact_squared(idx):
            # Active-set tightening, row-blocked over the *subset*: each
            # row's distance is independent, so the blocked sweep is
            # bit-identical and gathers only one block of rows at a time.
            if parallel is None or idx.size == 0:
                return paired_squared_distances(X[idx], centers[labels[idx]])
            parts = parallel.map(
                lambda start, stop: paired_squared_distances(
                    X[idx[start:stop]], centers[labels[idx[start:stop]]]
                ),
                idx.size,
            )
            return np.concatenate(parts)

        def rescore(idx):
            if idx is None:
                return assign_to_nearest(
                    X, centers, x_squared_norms=x_squared_norms,
                    return_second=True, parallel=parallel,
                )
            return assign_to_nearest(
                X[idx], centers, x_squared_norms=x_squared_norms[idx],
                return_second=True, parallel=parallel,
            )

        labels, _, full_d1 = hamerly_step(bounds, labels, exact_squared, rescore)
        return labels, full_d1

    # --------------------------------------------------------- checkpointing
    def _param_header(self) -> dict:
        """Configuration fingerprint a checkpoint must match to resume."""
        # n_threads is deliberately absent: pool width never changes
        # results (the row-block contract), so checkpoints stay portable
        # across machine sizes — and older checkpoints keep resuming.
        return {
            "n_clusters": self.n_clusters,
            "init": self.init,
            "n_init": self.n_init,
            "max_iter": self.max_iter,
            "tol": self.tol,
            "pruning": self.pruning,
            "dtype": np.dtype(self.dtype_).name,
        }

    def _write_checkpoint(
        self, restart, iteration, centers, labels, bounds, rng,
        fingerprint, best_state,
    ) -> None:
        if self.checkpoint is None or not self.checkpoint.due(iteration):
            return
        header = {
            "estimator": type(self).__name__,
            "params": self._param_header(),
            "data": fingerprint,
            "restart": restart,
            "iteration": iteration,
            "rng_state": serialize_rng_state(rng),
            "bounds_initialized": (
                None if bounds is None else bool(bounds.initialized)
            ),
            "has_best": best_state is not None,
            "best_inertia": (
                None if best_state is None else float(best_state[2])
            ),
            "best_iterations": (
                0 if best_state is None else int(best_state[3])
            ),
        }
        arrays = {"centers": centers, "labels": labels}
        if bounds is not None:
            arrays["bounds_upper"] = bounds.upper
            arrays["bounds_lower"] = bounds.lower
        if best_state is not None:
            arrays["best_centers"] = best_state[0]
            arrays["best_labels"] = best_state[1]
        write_checkpoint(self.checkpoint.path, header, arrays)

    def _load_checkpoint(self, rng, fingerprint, x_squared_norms, n_features):
        """Verify and unpack ``resume_from``; restores ``rng`` in place.

        Returns ``(restart_index, resume_state, best_state_or_None)``
        where ``resume_state`` re-enters :meth:`_single_run` at the
        checkpointed iteration's successor.
        """
        from ..exceptions import CheckpointError

        header, arrays = read_checkpoint(self.resume_from)
        check_header_fields(
            header,
            {
                "estimator": type(self).__name__,
                "params": self._param_header(),
                "data": fingerprint,
            },
            path=self.resume_from,
        )
        restore_rng_state(rng, header["rng_state"])
        centers = np.ascontiguousarray(arrays["centers"], dtype=self.dtype_)
        labels = np.ascontiguousarray(arrays["labels"], dtype=np.int64)
        bounds = None
        if self.uses_pruning:
            if "bounds_upper" not in arrays:
                raise CheckpointError(
                    f"{self.resume_from} carries no pruning bounds but the "
                    "resuming estimator prunes", field="bounds_upper",
                )
            # The dtype-margin scalars are deterministic functions of the
            # constructor inputs, so only the per-point arrays and the
            # initialized flag need the round trip.
            bounds = HamerlyBounds(x_squared_norms, n_features)
            bounds.upper = np.ascontiguousarray(
                arrays["bounds_upper"], dtype=np.float64
            )
            bounds.lower = np.ascontiguousarray(
                arrays["bounds_lower"], dtype=np.float64
            )
            bounds.initialized = bool(header["bounds_initialized"])
        resume_state = (centers, labels, bounds, int(header["iteration"]) + 1)
        best_state = None
        if header.get("has_best"):
            best_state = (
                np.ascontiguousarray(arrays["best_centers"], dtype=self.dtype_),
                np.ascontiguousarray(arrays["best_labels"], dtype=np.int64),
                float(header["best_inertia"]),
                int(header["best_iterations"]),
            )
        return int(header["restart"]), resume_state, best_state

    def _single_run(
        self,
        X: np.ndarray,
        rng: np.random.Generator,
        weights: np.ndarray,
        weighted_X: np.ndarray,
        x_squared_norms: np.ndarray,
        restart_index: int = 0,
        resume=None,
        fingerprint=None,
        best_state=None,
        parallel=None,
    ):
        if resume is None:
            centers = self._init_centers(X, rng)
            bounds = (
                HamerlyBounds(x_squared_norms, X.shape[1])
                if self.uses_pruning else None
            )
            labels = np.zeros(X.shape[0], dtype=np.int64)
            start = 1
        else:
            centers, labels, bounds, start = resume
        interrupted = False
        # `completed` and `centers` advance together at the end of each
        # iteration, so the KeyboardInterrupt handler always sees a
        # consistent last-completed state even mid-iteration.
        completed = start - 1
        try:
            for iterations in range(start, self.max_iter + 1):
                labels, min_distances = self._assign_step(
                    X, centers, labels, bounds, x_squared_norms, parallel
                )
                new_centers = centers.copy()
                counts = _group_mass(
                    labels, weights, self.n_clusters, parallel
                )
                # Per-column bincount reduction (grouped_row_sum) over the
                # fit-hoisted weighted matrix: same row-order accumulation as
                # the np.add.at scatter it replaces, an order of magnitude
                # faster — and with pruning this update is the iteration floor.
                sums = grouped_row_sum(
                    labels, weighted_X, self.n_clusters, parallel
                )
                non_empty = counts > 0
                new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
                # Empty clusters: re-seed on the points farthest from their
                # centroid, the standard remedy (also KR-k-Means, Appendix B).
                empty = np.flatnonzero(~non_empty)
                if empty.size:
                    if min_distances is None:
                        # Pruned iterations skip exact per-point distances;
                        # the reseed rule ranks all of them, so fall back to
                        # the full computation the unpruned path runs — same
                        # call, same inputs, bit-identical reseed choice.
                        _, min_distances = assign_to_nearest(
                            X, centers, x_squared_norms=x_squared_norms,
                            parallel=parallel,
                        )
                    farthest = (
                        np.argsort(min_distances * weights)[::-1][: empty.size]
                    )
                    new_centers[empty] = X[farthest]
                # float64 reduction for any working dtype (exact no-op at
                # f64): the convergence test must not drown in f32
                # accumulation noise.
                shift = float(
                    np.sum((new_centers - centers) ** 2, dtype=np.float64)
                )
                if bounds is not None and shift >= self.tol:
                    drift = dense_drift(centers, new_centers)
                    bounds.inflate(drift[labels], float(drift.max()))
                centers = new_centers
                completed = iterations
                if self.callback is not None:
                    self.callback(restart_index, iterations)
                if shift < self.tol:
                    break
                # Snapshot only on continuing iterations: a resumed run
                # always has at least the terminal iteration left to do.
                self._write_checkpoint(
                    restart_index, iterations, centers, labels, bounds,
                    rng, fingerprint, best_state,
                )
            else:  # pragma: no cover - depends on data
                warnings.warn(
                    f"KMeans did not converge in {self.max_iter} iterations",
                    ConvergenceWarning,
                    stacklevel=2,
                )
        except KeyboardInterrupt:
            interrupted = True
        labels, min_distances = assign_to_nearest(
            X, centers, x_squared_norms=x_squared_norms, parallel=parallel
        )
        inertia = float((min_distances * weights).sum(dtype=np.float64))
        return centers, labels, inertia, completed, interrupted
