"""The Khatri-Rao-k-Means algorithm (paper Section 6, Algorithm 1).

Khatri-Rao k-Means represents ``k = h_1 · h_2 · ... · h_p`` centroids through
``p`` sets of protocentroids with only ``h_1 + ... + h_p`` stored vectors.
Each iteration:

1. materializes centroids by aggregating protocentroids (on the fly in the
   memory-efficient mode, or cached in the time-efficient mode — Appendix B);
2. assigns every point to its nearest centroid, which induces a per-set
   assignment through the centroid-index ↔ tuple bijection;
3. updates each protocentroid in closed form (Proposition 6.1, generalized
   here to arbitrary ``p``);
4. stops when the total squared movement of the reconstructed centroids
   falls below ``tol`` (Algorithm 1, line 20).

Both the sum and product aggregators of the paper are supported, as well as
random and k-means++-style initialization (Section 6, "Initialization").
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_array,
    check_cardinalities,
    check_in,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConvergenceWarning, NotFittedError, ValidationError
from ..linalg import get_aggregator, khatri_rao_combine, num_combinations
from ._distances import assign_to_nearest, squared_distances
from .kmeans import _check_sample_weight, kmeans_plus_plus_init

__all__ = ["KhatriRaoKMeans"]

# Entries of the product-aggregator denominator below this threshold keep the
# previous protocentroid value instead of dividing by ~0.
_EPSILON = 1e-12


class KhatriRaoKMeans:
    """Khatri-Rao k-Means clustering (Algorithm 1).

    Parameters
    ----------
    cardinalities : sequence of int
        ``(h_1, ..., h_p)`` — the size of each protocentroid set.  The model
        represents ``h_1 · ... · h_p`` centroids with ``h_1 + ... + h_p``
        stored vectors.
    aggregator : {"sum", "product"} or Aggregator
        The elementwise ``⊕`` combining protocentroids (paper: ``+`` or
        ``×``).
    init : {"random", "kr-k-means++"}
        ``"random"`` samples data points as initial protocentroids
        (Algorithm 1, lines 3-4); ``"kr-k-means++"`` D²-samples far-apart
        data points and factors each into per-set protocentroids via the
        aggregator's exact split (Section 6, "Initialization").
    n_init : int
        Restarts; the lowest-inertia solution is kept (paper: 20).
    max_iter : int
        Maximum iterations per restart (paper: 200).
    tol : float
        Stopping tolerance on total squared centroid movement (paper: 1e-4).
    mode : {"auto", "time", "memory"}
        ``"time"`` materializes all ``∏ h_q`` centroids once per iteration;
        ``"memory"`` computes centroid chunks on the fly so peak memory grows
        with ``∑ h_q`` instead of ``∏ h_q`` (Appendix B).  ``"auto"`` picks
        ``"memory"`` when the centroid matrix would dominate the data matrix.
    chunk_size : int
        Number of centroids materialized at a time in memory mode.
    random_state : None, int or Generator
        Source of randomness.

    Attributes
    ----------
    protocentroids_ : list of arrays, set ``q`` has shape ``(h_q, m)``
    labels_ : int array of shape (n,)
        Flat centroid index per point (C-order over the tuple indices).
    set_labels_ : int array of shape (n, p)
        Per-set protocentroid assignment of each point.
    inertia_ : float
    n_iter_ : int

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> base = np.array([[0.0, 0.0], [0.0, 8.0], [8.0, 0.0], [8.0, 8.0]])
    >>> X = np.vstack([b + 0.05 * rng.normal(size=(30, 2)) for b in base])
    >>> model = KhatriRaoKMeans((2, 2), aggregator="sum", random_state=0).fit(X)
    >>> model.centroids().shape
    (4, 2)
    """

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        aggregator="sum",
        init: str = "random",
        n_init: int = 10,
        max_iter: int = 200,
        tol: float = 1e-4,
        mode: str = "auto",
        chunk_size: int = 256,
        random_state=None,
    ) -> None:
        self.cardinalities = check_cardinalities(cardinalities)
        self.aggregator = get_aggregator(aggregator)
        self.init = check_in(init, "init", ("random", "kr-k-means++"))
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.mode = check_in(mode, "mode", ("auto", "time", "memory"))
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.random_state = random_state

        self.protocentroids_: Optional[List[np.ndarray]] = None
        self.labels_: Optional[np.ndarray] = None
        self.set_labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ API
    @property
    def n_clusters(self) -> int:
        """Number of representable centroids, ``∏ h_q``."""
        return num_combinations(self.cardinalities)

    @property
    def n_protocentroids(self) -> int:
        """Number of stored vectors, ``∑ h_q``."""
        return int(sum(self.cardinalities))

    def fit(self, X, sample_weight=None) -> "KhatriRaoKMeans":
        """Run ``n_init`` restarts of Algorithm 1 and keep the best solution.

        ``sample_weight`` optionally weights each point in the objective and
        in the closed-form protocentroid updates (the weighted form of
        Proposition 6.1).
        """
        X = check_array(X, min_samples=max(self.cardinalities))
        weights = _check_sample_weight(sample_weight, X.shape[0])
        rng = check_random_state(self.random_state)
        materialize = self._should_materialize(X)

        best = (np.inf, None, None, None, 0)
        for _ in range(self.n_init):
            thetas, labels, set_labels, run_inertia, iters = self._single_run(
                X, rng, materialize, weights
            )
            if run_inertia < best[0]:
                best = (run_inertia, thetas, labels, set_labels, iters)

        self.inertia_ = float(best[0])
        self.protocentroids_ = best[1]
        self.labels_ = best[2]
        self.set_labels_ = best[3]
        self.n_iter_ = best[4]
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return flat centroid labels for the training data."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Assign each row of ``X`` to its nearest reconstructed centroid."""
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.protocentroids_[0].shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.protocentroids_[0].shape[1]}"
            )
        labels, _ = self._assign(X, self.protocentroids_, self._should_materialize(X))
        return labels

    def centroids(self) -> np.ndarray:
        """Materialize the full ``(∏ h_q, m)`` centroid matrix."""
        self._check_fitted()
        return khatri_rao_combine(self.protocentroids_, self.aggregator)

    def parameter_count(self) -> int:
        """Scalars stored by the summary: ``(∑ h_q) · m``."""
        self._check_fitted()
        return int(sum(theta.size for theta in self.protocentroids_))

    def set_assignments(self, labels: Optional[np.ndarray] = None) -> np.ndarray:
        """Decode flat centroid labels into per-set protocentroid indices."""
        if labels is None:
            self._check_fitted()
            labels = self.labels_
        labels = np.asarray(labels, dtype=np.int64).ravel()
        decoded = np.unravel_index(labels, self.cardinalities)
        return np.stack(decoded, axis=1)

    # ------------------------------------------------------------ internals
    def _check_fitted(self) -> None:
        if self.protocentroids_ is None:
            raise NotFittedError(
                "this KhatriRaoKMeans instance is not fitted yet; call fit first"
            )

    def _should_materialize(self, X: np.ndarray) -> bool:
        if self.mode == "time":
            return True
        if self.mode == "memory":
            return False
        # auto: materialize unless the centroid matrix would rival the data.
        return self.n_clusters * X.shape[1] <= max(X.size, 4 * self.chunk_size * X.shape[1])

    # -- initialization ----------------------------------------------------
    def _init_protocentroids(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> List[np.ndarray]:
        if self.init == "random":
            # Sample data points per set, then factor each through the
            # aggregator's exact split so the *initial centroids* (the
            # aggregation of one protocentroid per set) stay inside the data
            # range: raw points would start centroids at e.g. x_i + x_j for
            # the sum aggregator, far outside the hull (Appendix B).
            p = len(self.cardinalities)
            thetas = []
            for q, h in enumerate(self.cardinalities):
                samples = X[rng.choice(X.shape[0], size=h, replace=X.shape[0] < h)]
                block = np.empty((h, X.shape[1]), dtype=float)
                for j in range(h):
                    block[j] = self.aggregator.split(samples[j], p)[q]
                thetas.append(block)
            return thetas
        return self._init_plus_plus(X, rng)

    def _init_plus_plus(self, X: np.ndarray, rng: np.random.Generator) -> List[np.ndarray]:
        # Sample sum(h_q) far-apart data points with k-means++ D²-sampling,
        # then factor each sampled point x into p parts whose aggregation
        # reproduces x; set q keeps the q-th part of its own samples
        # (Section 6, "Initialization").
        p = len(self.cardinalities)
        total = sum(self.cardinalities)
        seeds = kmeans_plus_plus_init(X, min(total, X.shape[0]), rng)
        if seeds.shape[0] < total:
            extra = X[rng.choice(X.shape[0], size=total - seeds.shape[0])]
            seeds = np.vstack([seeds, extra])
        thetas = []
        offset = 0
        for q, h in enumerate(self.cardinalities):
            block = np.empty((h, X.shape[1]), dtype=float)
            for j in range(h):
                parts = self.aggregator.split(seeds[offset + j], p)
                block[j] = parts[q]
            thetas.append(block)
            offset += h
        return thetas

    # -- assignment ---------------------------------------------------------
    def _assign(
        self, X: np.ndarray, thetas: List[np.ndarray], materialize: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        if materialize:
            centroids = khatri_rao_combine(thetas, self.aggregator)
            return assign_to_nearest(X, centroids)
        return self._assign_chunked(X, thetas)

    def _assign_chunked(
        self, X: np.ndarray, thetas: List[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = X.shape[0]
        k = self.n_clusters
        labels = np.zeros(n, dtype=np.int64)
        best = np.full(n, np.inf)
        for start in range(0, k, self.chunk_size):
            stop = min(start + self.chunk_size, k)
            chunk = self._materialize_chunk(thetas, start, stop)
            distances = squared_distances(X, chunk)
            chunk_labels = np.argmin(distances, axis=1)
            chunk_best = distances[np.arange(n), chunk_labels]
            improved = chunk_best < best
            labels[improved] = chunk_labels[improved] + start
            best[improved] = chunk_best[improved]
        return labels, best

    def _materialize_chunk(
        self, thetas: List[np.ndarray], start: int, stop: int
    ) -> np.ndarray:
        flat = np.arange(start, stop)
        tuple_indices = np.unravel_index(flat, self.cardinalities)
        parts = [theta[idx] for theta, idx in zip(thetas, tuple_indices)]
        return self.aggregator.combine(parts)

    # -- protocentroid updates (Proposition 6.1, generalized to p sets) -----
    def _rest_contribution(
        self,
        thetas: List[np.ndarray],
        set_labels: np.ndarray,
        excluded_set: int,
        feature_dim: int,
    ) -> np.ndarray:
        """Aggregate, per point, the protocentroids of every set but one."""
        parts = [
            thetas[l][set_labels[:, l]]
            for l in range(len(thetas))
            if l != excluded_set
        ]
        if not parts:
            return self.aggregator.identity((set_labels.shape[0], feature_dim))
        return self.aggregator.combine(parts)

    def _update_protocentroids(
        self,
        X: np.ndarray,
        thetas: List[np.ndarray],
        set_labels: np.ndarray,
        rng: np.random.Generator,
        weights: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        m = X.shape[1]
        if weights is None:
            weights = np.ones(X.shape[0])
        w_column = weights[:, None]
        is_product = self.aggregator.name == "product"
        new_thetas = [theta.copy() for theta in thetas]
        for q, h in enumerate(self.cardinalities):
            rest = self._rest_contribution(new_thetas, set_labels, q, m)
            assignments = set_labels[:, q]
            numerator = np.zeros((h, m), dtype=float)
            if is_product:
                # θ_q^j = Σ w·x ⊙ rest / Σ w·rest ⊙ rest over points with a_q = j
                # (weighted Proposition 6.1).
                denominator = np.zeros((h, m), dtype=float)
                np.add.at(numerator, assignments, X * rest * w_column)
                np.add.at(denominator, assignments, rest * rest * w_column)
                safe = denominator > _EPSILON
                updated = new_thetas[q].copy()
                updated[safe] = numerator[safe] / denominator[safe]
            else:
                # θ_q^j = Σ w·(x − rest) / Σ w over points with a_q = j.
                mass = np.bincount(assignments, weights=weights, minlength=h)
                np.add.at(numerator, assignments, (X - rest) * w_column)
                updated = new_thetas[q].copy()
                non_empty = mass > 0
                updated[non_empty] = numerator[non_empty] / mass[non_empty, None]
            # Re-seed protocentroids with no assigned mass (Appendix B).
            mass = np.bincount(assignments, weights=weights, minlength=h)
            for j in np.flatnonzero(mass == 0):
                parts = self.aggregator.split(X[rng.integers(X.shape[0])], len(thetas))
                updated[j] = parts[q]
            new_thetas[q] = updated
        return new_thetas

    # -- main loop -----------------------------------------------------------
    def _single_run(
        self,
        X: np.ndarray,
        rng: np.random.Generator,
        materialize: bool,
        weights: Optional[np.ndarray] = None,
    ):
        if weights is None:
            weights = np.ones(X.shape[0])
        thetas = self._init_protocentroids(X, rng)
        self._previous_thetas = None  # reset memory-mode shift tracking per run
        old_centroids = khatri_rao_combine(thetas, self.aggregator) if materialize else None
        labels = np.zeros(X.shape[0], dtype=np.int64)
        min_distances = np.zeros(X.shape[0])
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            labels, min_distances = self._assign(X, thetas, materialize)
            set_labels = self.set_assignments(labels)
            thetas = self._update_protocentroids(X, thetas, set_labels, rng, weights)
            shift = self._centroid_shift(thetas, old_centroids, materialize)
            if materialize:
                old_centroids = khatri_rao_combine(thetas, self.aggregator)
            if shift < self.tol:
                break
        else:  # pragma: no cover - depends on data
            warnings.warn(
                f"KhatriRaoKMeans did not converge in {self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )
        labels, min_distances = self._assign(X, thetas, materialize)
        set_labels = self.set_assignments(labels)
        weighted_inertia = float((min_distances * weights).sum())
        return thetas, labels, set_labels, weighted_inertia, iterations

    def _centroid_shift(
        self,
        thetas: List[np.ndarray],
        old_centroids: Optional[np.ndarray],
        materialize: bool,
    ) -> float:
        if materialize and old_centroids is not None:
            new_centroids = khatri_rao_combine(thetas, self.aggregator)
            return float(np.sum((new_centroids - old_centroids) ** 2))
        # Memory mode: measure movement chunk by chunk against the cached
        # previous protocentroids to avoid materializing all centroids.
        if not hasattr(self, "_previous_thetas") or self._previous_thetas is None:
            self._previous_thetas = [theta.copy() for theta in thetas]
            return np.inf
        shift = 0.0
        k = self.n_clusters
        for start in range(0, k, self.chunk_size):
            stop = min(start + self.chunk_size, k)
            new_chunk = self._materialize_chunk(thetas, start, stop)
            old_chunk = self._materialize_chunk(self._previous_thetas, start, stop)
            shift += float(np.sum((new_chunk - old_chunk) ** 2))
        self._previous_thetas = [theta.copy() for theta in thetas]
        return shift
