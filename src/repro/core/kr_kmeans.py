"""The Khatri-Rao-k-Means algorithm (paper Section 6, Algorithm 1).

Khatri-Rao k-Means represents ``k = h_1 · h_2 · ... · h_p`` centroids through
``p`` sets of protocentroids with only ``h_1 + ... + h_p`` stored vectors.
Each iteration, as the paper states it:

1. materializes centroids by aggregating protocentroids (on the fly in the
   memory-efficient mode, or cached in the time-efficient mode — Appendix B)
   — in this implementation an *implicit* step for decomposable
   aggregators, which score the grid without ever building it (see
   "Factored assignment" below);
2. assigns every point to its nearest centroid, which induces a per-set
   assignment through the centroid-index ↔ tuple bijection;
3. updates each protocentroid in closed form (Proposition 6.1, generalized
   here to arbitrary ``p``);
4. stops when the total squared movement of the reconstructed centroids
   falls below ``tol`` (Algorithm 1, line 20).

Both the sum and product aggregators of the paper are supported, as well as
random and k-means++-style initialization (Section 6, "Initialization").

Factored assignment (the Khatri-Rao fast path)
----------------------------------------------
Step 2 dominates the complexity analysis of Section 6.  A direct
implementation pays the full k-Means price — ``O(n·k·m)`` with
``k = ∏ h_q`` — but for the sum aggregator the squared distance to centroid
``c = Σ_q θ_q[j_q]`` decomposes as

.. math::

    ‖x − c‖² = ‖x‖² − 2 Σ_q x·θ_q[j_q] + ‖Σ_q θ_q[j_q]‖²

so assignment needs only ``p`` Gram matrices ``G_q = X @ θ_qᵀ`` of shape
``(n, h_q)`` and a data-free centroid-norm vector ``S`` — never the
``(k, m)`` centroid matrix.  On top of either strategy, cross-iteration
Hamerly bounds (:mod:`repro.core._bounds`, the ``pruning`` knob) shrink the
per-iteration scan to the ``a ≤ n`` *active* points whose bounds overlap:

==============  ==========================  ===========================  ==============
assignment      time per iteration (full)   pruned iteration             materializes?
==============  ==========================  ===========================  ==============
materialized    ``O(n·k·m)``                ``O(a·k·m + n)``             yes
factored        ``O(n·m·Σh_q + n·k·p)``     ``O(a·m·Σh_q + a·k·p + n)``  never
==============  ==========================  ===========================  ==============

The ``assignment`` knob selects the strategy; ``"auto"`` (default) uses the
factored kernel whenever the aggregator advertises
``supports_factored_assignment`` (sum: yes; product: no — it transparently
falls back to the materialized path).  The same capability powers a
closed-form centroid-shift test, so memory mode no longer re-materializes
the centroid grid to check convergence either.

Contingency-table updates (the ``update`` knob)
-----------------------------------------------
Once assignment is factored and pruned, the closed-form protocentroid
update of Proposition 6.1 becomes the per-iteration floor.  Its gather form
materializes an ``(n, m)`` *rest* matrix per set, plus several same-size
temporaries around it.  For the sum aggregator the grouped rest
contribution factors through per-set-pair contingency count tables,
``Σ_{a_q=j} θ_r[a_r] = (C_qr @ θ_r)[j]``, so the update needs one fused
``bincount`` pass over the data per set plus tiny
``(h_q, h_r) @ (h_r, m)`` matmuls — still ``Θ(p·n·m)``, but the only
full-size temporary left is the fused bincount index, a measured ~3–10×
constant-factor win (:mod:`repro.core._update`).  The two forms reorder
floating
point, so they agree to last-ulp drift; the ``update`` knob selects between
them and ``"auto"`` uses the factored kernel whenever the aggregator
advertises ``supports_factored_update`` (sum: yes; product: no — gather
fallback).

Bounds-pruned incremental Lloyd (the ``pruning`` knob)
------------------------------------------------------
After the first few iterations most points provably cannot change label.
Each point keeps an upper bound on the distance to its assigned centroid
and a lower bound on the second-nearest; after every protocentroid update
the bounds are inflated by per-centroid drift bounds and only overlapping
points are re-scored.  For decomposable aggregators the drift side is
factored too: ``‖Δc(j_1..j_p)‖ ≤ Σ_q ‖Δθ_q[j_q]‖`` (the aggregator's
``factored_drift`` hook), so drift bounds for all ``k = ∏ h_q`` centroids
cost ``Σ h_q`` numbers.  Pruned and unpruned runs produce identical labels,
inertia and iteration counts; late iterations typically re-score under 10 %
of the points, a 2–5× end-to-end ``fit()`` speedup on multi-iteration
workloads.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_array,
    check_cardinalities,
    check_dtype,
    check_in,
    check_positive_int,
    check_random_state,
)
from ..exceptions import (
    CheckpointError,
    ConvergenceWarning,
    NotFittedError,
    ValidationError,
)
from ..runtime.checkpoint import (
    check_header_fields,
    data_fingerprint,
    read_checkpoint,
    resolve_checkpoint,
    restore_rng_state,
    serialize_rng_state,
    write_checkpoint,
)
from ..runtime.executor import resolve_executor, run_restarts
from ..runtime.parallel import open_row_pool, resolve_parallel
from ..linalg import (
    get_aggregator,
    khatri_rao_combine,
    num_combinations,
    resolve_working_dtype,
)
from ._bounds import (
    HamerlyBounds,
    check_pruning,
    dense_drift,
    drift_inflation_from_tables,
    hamerly_step,
)
from ._distances import (
    _chunked_argmin,
    assign_to_nearest,
    merge_row_block_assignments,
    paired_squared_distances,
    row_norms_squared,
    squared_distances,
)
from ._factored import (
    ASSIGNMENT_MODES,
    assign_factored,
    resolve_assignment,
)
from ._update import UPDATE_MODES, resolve_update, update_protocentroids
from .kmeans import _check_sample_weight, kmeans_plus_plus_init

__all__ = ["KhatriRaoKMeans"]


class KhatriRaoKMeans:
    """Khatri-Rao k-Means clustering (Algorithm 1).

    Parameters
    ----------
    cardinalities : sequence of int
        ``(h_1, ..., h_p)`` — the size of each protocentroid set.  The model
        represents ``h_1 · ... · h_p`` centroids with ``h_1 + ... + h_p``
        stored vectors.
    aggregator : {"sum", "product"} or Aggregator
        The elementwise ``⊕`` combining protocentroids (paper: ``+`` or
        ``×``).
    init : {"random", "kr-k-means++"}
        ``"random"`` samples data points as initial protocentroids
        (Algorithm 1, lines 3-4); ``"kr-k-means++"`` D²-samples far-apart
        data points and factors each into per-set protocentroids via the
        aggregator's exact split (Section 6, "Initialization").
    n_init : int
        Restarts; the lowest-inertia solution is kept (paper: 20).
    max_iter : int
        Maximum iterations per restart (paper: 200).
    tol : float
        Stopping tolerance on total squared centroid movement (paper: 1e-4).
    mode : {"auto", "time", "memory"}
        Peak-memory policy of the scoring sweep (Appendix B): ``"time"``
        scores the whole centroid grid at once, ``"memory"`` sweeps it in
        ``chunk_size`` blocks so peak memory grows with ``∑ h_q`` instead
        of ``∏ h_q``, and ``"auto"`` picks ``"memory"`` when the grid would
        dominate the data matrix.  Whether centroids are *materialized* at
        all is the ``assignment`` knob's business: with the factored kernel
        (the sum-aggregator default since the factored-assignment
        subsystem) neither mode ever builds the ``(∏ h_q, m)`` matrix —
        time mode holds the full ``(n, ∏ h_q)`` partial-score block,
        memory mode only ``(n, chunk_size)`` blocks.
    assignment : {"auto", "factored", "materialized"}
        Strategy for the nearest-centroid step.  ``"factored"`` exploits the
        Khatri-Rao structure: per-set Gram matrices ``G_q = X @ θ_qᵀ`` and a
        data-free centroid-norm vector replace the ``O(n·k·m)`` distance
        computation with ``O(n·m·Σh_q + n·k·p)``, never materializing
        centroids (sum aggregator only; other aggregators fall back to
        ``"materialized"`` transparently).  ``"materialized"`` forces the
        classic full-price path.  ``"auto"`` (default) uses the factored
        kernel whenever the aggregator supports it.  Both strategies produce
        identical labels; in memory mode the factored kernel sweeps the
        tuple grid in ``chunk_size`` blocks so it keeps the bounded-memory
        guarantee too.
    update : {"auto", "factored", "gather"}
        Strategy for the closed-form protocentroid update (Proposition 6.1).
        ``"factored"`` assembles each set's numerator through per-set-pair
        contingency count tables (``C_qr @ θ_r``) instead of gathering an
        ``(n, m)`` rest matrix per set — one fused ``bincount`` pass per
        set, a ~3–10× constant-factor win over the gather arithmetic (sum
        aggregator only; other
        aggregators fall back to ``"gather"`` transparently).  ``"gather"``
        forces the reference per-point arithmetic.  ``"auto"`` (default)
        uses the factored kernel whenever the aggregator supports it.  The
        two strategies reorder floating point and so agree to last-ulp
        drift (empty-cluster reseeds consume the rng identically either
        way).
    pruning : {"auto", "bounds", "none"}
        Cross-iteration Hamerly pruning (:mod:`repro.core._bounds`).
        ``"bounds"`` maintains per-point distance bounds, inflates them with
        per-centroid drift bounds after each protocentroid update (factored
        through the aggregator's ``factored_drift`` hook when it
        decomposes), and re-runs the argmin only on the points whose bounds
        overlap.  Exactly equivalent to the unpruned path — identical
        labels, inertia and iteration counts *at the same working dtype*
        (the certified bound margins scale with the dtype's machine
        epsilon, so float32 runs stay label-identical to unpruned float32
        runs).  ``"auto"`` (default) enables it except in memory mode with
        a non-decomposable aggregator, where the dense ``(k,)`` drift
        vector would break the bounded-peak-memory guarantee; ``"none"``
        always re-scores every point.
    chunk_size : int
        Number of centroids scored at a time in memory mode.
    dtype : {"float64", "float32"} or numpy dtype
        Working dtype of the kernel stack: ``X`` is cast once at ``fit``
        entry, protocentroids/Grams/partial scores are allocated in-dtype,
        and the BLAS-bound hot paths (``cross_gram``, score blocks) run at
        that precision — float32 halves their memory bandwidth, the
        serving-shaped configuration.  Grouped accumulation
        (:func:`repro.core.grouped_row_sum`, the ``C_qr @ θ_r`` contingency
        matmuls), inertia/shift reductions and pruning-bound maintenance
        deliberately stay float64 (error analysis in ``docs/numerics.md``).
        The dtype must be supported by the aggregator's ``working_dtypes``
        capability; unsupported requests fall back to float64 with a
        :class:`~repro.exceptions.DtypeFallbackWarning`.  ``"float64"``
        (default) is bit-identical to the historical behavior.
    random_state : None, int or Generator
        Source of randomness.
    checkpoint : None, path or CheckpointConfig
        When set, the sequential restart sweep snapshots its full state
        (protocentroids, labels, bound caches, restart/iteration
        counters, best-so-far, RNG state) atomically to this path on the
        config's cadence — see :mod:`repro.runtime.checkpoint`.
        Incompatible with ``n_jobs``.
    resume_from : None or path
        Resume a fit from a checkpoint written by a run with identical
        parameters on identical data (both verified, mismatch is a typed
        :class:`~repro.exceptions.CheckpointError`).  The resumed fit is
        bit-identical to the uninterrupted one.
    callback : None or callable
        ``callback(restart_index, iteration)`` invoked after every
        completed Lloyd iteration — the training fault-injection seam
        (:class:`~repro.faults.FaultHook`).  A callback raising
        ``KeyboardInterrupt`` triggers the graceful-interrupt path.
    n_jobs : None, int or ExecutorConfig
        ``None`` (default) runs restarts sequentially on a shared RNG —
        bit-compatible with every earlier release.  An int (or a full
        :class:`~repro.runtime.executor.ExecutorConfig`) runs them
        through the supervised parallel executor on per-restart
        ``rng.spawn`` streams: identical result at every worker count,
        restart failures retried/tolerated per the config.  Incompatible
        with ``checkpoint``/``resume_from``.
    n_threads : None, int or ParallelConfig
        ``None`` (default) keeps the legacy single-sweep kernels —
        bit-compatible with every earlier release — unless the
        ``REPRO_N_THREADS`` environment variable engages the blocked
        layer suite-wide.  An int (or a full
        :class:`~repro.runtime.parallel.ParallelConfig`) runs
        assignment, updates and bound sweeps over fixed row blocks on a
        supervised thread pool: block boundaries depend only on
        ``(n, block_rows)`` and reductions merge in ascending block
        order, so any two thread counts produce bit-identical labels,
        inertia and iteration counts.  Composes with ``n_jobs`` (restart
        workers share the pool) and is the seam that streams a
        :class:`numpy.memmap` ``X`` through ``fit`` block by block —
        larger-than-RAM datasets train through the identical code path.

    Attributes
    ----------
    protocentroids_ : list of arrays, set ``q`` has shape ``(h_q, m)``
        Learned protocentroid sets, in the working dtype.
    labels_ : int array of shape (n,)
        Flat centroid index per point (C-order over the tuple indices).
    set_labels_ : int array of shape (n, p)
        Per-set protocentroid assignment of each point.
    inertia_ : float
    n_iter_ : int
    reassignment_fractions_ : list of float or None
        Fraction of points fully re-scored at each Lloyd iteration of the
        best restart (1.0 on the seeding iteration, then typically decaying
        fast); ``None`` when pruning is disabled.
    dtype_ : numpy.dtype
        Working dtype the fit actually ran in (after capability
        resolution — equals the requested ``dtype`` unless the aggregator
        forced the float64 fallback).
    converged_ : bool
        ``True`` when ``fit`` ran to normal completion; ``False`` when a
        ``KeyboardInterrupt`` stopped it early (the best state found so
        far is retained instead of lost).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> base = np.array([[0.0, 0.0], [0.0, 8.0], [8.0, 0.0], [8.0, 8.0]])
    >>> X = np.vstack([b + 0.05 * rng.normal(size=(30, 2)) for b in base])
    >>> model = KhatriRaoKMeans((2, 2), aggregator="sum", random_state=0).fit(X)
    >>> model.centroids().shape
    (4, 2)
    """

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        aggregator="sum",
        init: str = "random",
        n_init: int = 10,
        max_iter: int = 200,
        tol: float = 1e-4,
        mode: str = "auto",
        assignment: str = "auto",
        update: str = "auto",
        pruning: str = "auto",
        chunk_size: int = 256,
        dtype="float64",
        random_state=None,
        checkpoint=None,
        resume_from=None,
        callback=None,
        n_jobs=None,
        n_threads=None,
    ) -> None:
        self.cardinalities = check_cardinalities(cardinalities)
        self.aggregator = get_aggregator(aggregator)
        self.init = check_in(init, "init", ("random", "kr-k-means++"))
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.mode = check_in(mode, "mode", ("auto", "time", "memory"))
        self.assignment = check_in(assignment, "assignment", ASSIGNMENT_MODES)
        self.update = check_in(update, "update", UPDATE_MODES)
        self.pruning = check_pruning(pruning)
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.dtype = check_dtype(dtype)
        self.random_state = random_state
        self.checkpoint = resolve_checkpoint(checkpoint)
        self.resume_from = None if resume_from is None else Path(resume_from)
        if callback is not None and not callable(callback):
            raise ValidationError(f"callback must be callable, got {callback!r}")
        self.callback = callback
        self.n_jobs = resolve_executor(n_jobs)
        self.n_threads = resolve_parallel(n_threads)
        if self.n_jobs is not None and (
            self.checkpoint is not None or self.resume_from is not None
        ):
            raise ValidationError(
                "checkpoint/resume_from are sequential-sweep features and "
                "cannot be combined with n_jobs"
            )

        self.protocentroids_: Optional[List[np.ndarray]] = None
        self.labels_: Optional[np.ndarray] = None
        self.set_labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0
        self.reassignment_fractions_: Optional[List[float]] = None
        self.dtype_: Optional[np.dtype] = None
        self.converged_: bool = False

    # ------------------------------------------------------------------ API
    @property
    def n_clusters(self) -> int:
        """Number of representable centroids, ``∏ h_q``."""
        return num_combinations(self.cardinalities)

    @property
    def n_protocentroids(self) -> int:
        """Number of stored vectors, ``∑ h_q``."""
        return int(sum(self.cardinalities))

    @property
    def uses_factored_assignment(self) -> bool:
        """Whether assignment runs through the factored Khatri-Rao kernel.

        Resolves the ``assignment`` knob against the aggregator's
        capability: True for ``"auto"``/``"factored"`` with a decomposable
        aggregator (sum), False when forced ``"materialized"`` or when the
        aggregator (product) requires the materialized fallback.
        """
        return resolve_assignment(self.assignment, self.aggregator)

    @property
    def uses_factored_update(self) -> bool:
        """Whether protocentroid updates run through the contingency kernel.

        Resolves the ``update`` knob against the aggregator's
        ``supports_factored_update`` capability: True for
        ``"auto"``/``"factored"`` with a decomposable aggregator (sum),
        False when forced ``"gather"`` or when the aggregator (product)
        requires the gather fallback.
        """
        return resolve_update(self.update, self.aggregator)

    def _uses_pruning(self, materialize: bool) -> bool:
        """Resolve the ``pruning`` knob for a concrete run configuration."""
        if self.pruning == "none":
            return False
        if self.pruning == "bounds":
            return True
        # auto: enable everywhere except memory mode with a non-decomposable
        # aggregator, where the dense (k,) per-centroid drift vector would
        # break the bounded-peak-memory guarantee of Appendix B.  Keyed on
        # the aggregator capability, not the assignment knob: a decomposable
        # aggregator provides Σh_q drift tables whichever way assignment
        # runs.
        return self.aggregator.supports_factored_assignment or materialize

    def fit(self, X, sample_weight=None) -> "KhatriRaoKMeans":
        """Run ``n_init`` restarts of Algorithm 1 and keep the best solution.

        ``sample_weight`` optionally weights each point in the objective and
        in the closed-form protocentroid updates (the weighted form of
        Proposition 6.1).
        """
        # Resolve the requested dtype against the aggregator capability
        # (loud float64 fallback), then cast exactly once for the whole fit.
        self.dtype_ = resolve_working_dtype(self.dtype, self.aggregator)
        X = check_array(X, min_samples=max(self.cardinalities), dtype=self.dtype_)
        # None stays None: the update kernels and the inertia reduction skip
        # the exact-but-wasted multiply by an all-ones weight column.
        weights = (
            None if sample_weight is None
            else _check_sample_weight(sample_weight, X.shape[0], dtype=X.dtype)
        )
        rng = check_random_state(self.random_state)
        with open_row_pool(self.n_threads) as pool:
            return self._fit(X, weights, rng, pool)

    def _fit(self, X, weights, rng, parallel) -> "KhatriRaoKMeans":
        materialize = self._should_materialize(X)
        # ‖x‖² is constant across iterations and restarts — pay for it once.
        x_squared_norms = row_norms_squared(X, parallel=parallel)

        if self.n_jobs is not None:
            # Supervised parallel sweep: per-restart spawned streams, so
            # the selected model is identical at every worker count.  The
            # row pool is shared across restart workers (submit is
            # thread-safe; block workers never re-enter the pool).
            def run_one(gen, seed_index):
                (thetas, labels, set_labels, run_inertia, iters, fractions,
                 run_interrupted) = self._single_run(
                    X, gen, materialize, weights, x_squared_norms,
                    restart_index=seed_index,
                    parallel=parallel,
                )
                if run_interrupted:
                    # A callback-raised interrupt inside a worker: surface
                    # it so the sweep reports interrupted (the executor
                    # keeps every restart that already completed).
                    raise KeyboardInterrupt
                return run_inertia, (thetas, labels, set_labels, iters, fractions)

            report = run_restarts(run_one, self.n_init, rng, self.n_jobs)
            if report.interrupted and not report.outcomes:
                raise KeyboardInterrupt
            winner = report.best()
            (self.protocentroids_, self.labels_, self.set_labels_,
             self.n_iter_, self.reassignment_fractions_) = winner.payload
            self.inertia_ = winner.inertia
            self.converged_ = not report.interrupted
            return self

        best = (np.inf, None, None, None, 0, None)
        start_restart = 0
        resume_state = None
        # The full-pass sha256 fingerprint only feeds checkpoint headers;
        # plain fits (and streamed memmap fits) skip it entirely.
        fingerprint = (
            data_fingerprint(X, weights)
            if self.checkpoint is not None or self.resume_from is not None
            else None
        )
        if self.resume_from is not None:
            start_restart, resume_state, best_resumed = self._load_checkpoint(
                rng, fingerprint, materialize, x_squared_norms, X.shape[1]
            )
            if best_resumed is not None:
                best = best_resumed
        interrupted = False
        for restart in range(start_restart, self.n_init):
            best_state = None if best[1] is None else best
            try:
                (thetas, labels, set_labels, run_inertia, iters, fractions,
                 run_interrupted) = self._single_run(
                    X, rng, materialize, weights, x_squared_norms,
                    restart_index=restart,
                    resume=resume_state,
                    fingerprint=fingerprint,
                    best_state=best_state,
                    parallel=parallel,
                )
            except KeyboardInterrupt:
                # Interrupted before this restart completed one iteration:
                # keep the best earlier restart if there is one.
                if best[1] is None:
                    raise
                interrupted = True
                break
            resume_state = None
            if run_inertia < best[0]:
                best = (run_inertia, thetas, labels, set_labels, iters, fractions)
            if run_interrupted:
                interrupted = True
                break

        self.inertia_ = float(best[0])
        self.protocentroids_ = best[1]
        self.labels_ = best[2]
        self.set_labels_ = best[3]
        self.n_iter_ = best[4]
        self.reassignment_fractions_ = best[5]
        self.converged_ = not interrupted
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return flat centroid labels for the training data."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Assign each row of ``X`` to its nearest reconstructed centroid."""
        self._check_fitted()
        X = check_array(X, dtype=self.protocentroids_[0].dtype)
        if X.shape[1] != self.protocentroids_[0].shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.protocentroids_[0].shape[1]}"
            )
        with open_row_pool(self.n_threads) as pool:
            labels, _ = self._assign(
                X, self.protocentroids_, self._should_materialize(X),
                parallel=pool,
            )
        return labels

    def centroids(self) -> np.ndarray:
        """Materialize the full ``(∏ h_q, m)`` centroid matrix."""
        self._check_fitted()
        return khatri_rao_combine(self.protocentroids_, self.aggregator)

    def parameter_count(self) -> int:
        """Scalars stored by the summary: ``(∑ h_q) · m``."""
        self._check_fitted()
        return int(sum(theta.size for theta in self.protocentroids_))

    def set_assignments(self, labels: Optional[np.ndarray] = None) -> np.ndarray:
        """Decode flat centroid labels into per-set protocentroid indices."""
        if labels is None:
            self._check_fitted()
            labels = self.labels_
        labels = np.asarray(labels, dtype=np.int64).ravel()
        decoded = np.unravel_index(labels, self.cardinalities)
        return np.stack(decoded, axis=1)

    # ------------------------------------------------------------ internals
    def _check_fitted(self) -> None:
        if self.protocentroids_ is None:
            raise NotFittedError(
                "this KhatriRaoKMeans instance is not fitted yet; call fit first"
            )

    def _should_materialize(self, X: np.ndarray) -> bool:
        if self.mode == "time":
            return True
        if self.mode == "memory":
            return False
        # auto: materialize unless the centroid matrix would rival the data.
        return self.n_clusters * X.shape[1] <= max(X.size, 4 * self.chunk_size * X.shape[1])

    # -- initialization ----------------------------------------------------
    def _init_protocentroids(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> List[np.ndarray]:
        if self.init == "random":
            # Sample data points per set, then factor each through the
            # aggregator's exact split so the *initial centroids* (the
            # aggregation of one protocentroid per set) stay inside the data
            # range: raw points would start centroids at e.g. x_i + x_j for
            # the sum aggregator, far outside the hull (Appendix B).
            p = len(self.cardinalities)
            thetas = []
            for q, h in enumerate(self.cardinalities):
                samples = X[rng.choice(X.shape[0], size=h, replace=X.shape[0] < h)]
                block = np.empty((h, X.shape[1]), dtype=X.dtype)
                for j in range(h):
                    block[j] = self.aggregator.split(samples[j], p)[q]
                thetas.append(block)
            return thetas
        return self._init_plus_plus(X, rng)

    def _init_plus_plus(self, X: np.ndarray, rng: np.random.Generator) -> List[np.ndarray]:
        # Sample sum(h_q) far-apart data points with k-means++ D²-sampling,
        # then factor each sampled point x into p parts whose aggregation
        # reproduces x; set q keeps the q-th part of its own samples
        # (Section 6, "Initialization").
        p = len(self.cardinalities)
        total = sum(self.cardinalities)
        seeds = kmeans_plus_plus_init(X, min(total, X.shape[0]), rng)
        if seeds.shape[0] < total:
            extra = X[rng.choice(X.shape[0], size=total - seeds.shape[0])]
            seeds = np.vstack([seeds, extra])
        thetas = []
        offset = 0
        for q, h in enumerate(self.cardinalities):
            block = np.empty((h, X.shape[1]), dtype=X.dtype)
            for j in range(h):
                parts = self.aggregator.split(seeds[offset + j], p)
                block[j] = parts[q]
            thetas.append(block)
            offset += h
        return thetas

    # -- assignment ---------------------------------------------------------
    def _assign(
        self,
        X: np.ndarray,
        thetas: List[np.ndarray],
        materialize: bool,
        x_squared_norms: Optional[np.ndarray] = None,
        return_second: bool = False,
        parallel=None,
    ) -> Tuple[np.ndarray, ...]:
        if self.uses_factored_assignment:
            # Memory mode sweeps the tuple grid in chunks; time mode scores
            # the whole grid at once (the partial-score matrix is the only
            # O(n·k) allocation either way — centroids are never built).
            return assign_factored(
                X,
                thetas,
                self.aggregator,
                chunk_size=0 if materialize else self.chunk_size,
                x_squared_norms=x_squared_norms,
                return_second=return_second,
                parallel=parallel,
            )
        if materialize:
            centroids = khatri_rao_combine(thetas, self.aggregator)
            return assign_to_nearest(
                X,
                centroids,
                x_squared_norms=x_squared_norms,
                return_second=return_second,
                parallel=parallel,
            )
        return self._assign_chunked(
            X, thetas, x_squared_norms, return_second, parallel
        )

    def _assign_chunked(
        self,
        X: np.ndarray,
        thetas: List[np.ndarray],
        x_squared_norms: Optional[np.ndarray] = None,
        return_second: bool = False,
        parallel=None,
    ) -> Tuple[np.ndarray, ...]:
        if parallel is not None and X.shape[0] > 0:
            # Row-block the memory-mode sweep: each block runs its own
            # centroid-chunk argmin (rows are scored independently, so the
            # blocked result is bit-identical at every pool width).
            if x_squared_norms is None:
                x_squared_norms = row_norms_squared(X, parallel=parallel)
            parts = parallel.map(
                lambda start, stop: self._assign_chunked(
                    X[start:stop], thetas, x_squared_norms[start:stop],
                    return_second,
                ),
                X.shape[0],
            )
            return merge_row_block_assignments(parts, return_second)
        if x_squared_norms is None:
            x_squared_norms = row_norms_squared(X)
        return _chunked_argmin(
            X.shape[0],
            self.n_clusters,
            self.chunk_size,
            lambda start, stop: squared_distances(
                X,
                self._materialize_chunk(thetas, start, stop),
                x_squared_norms=x_squared_norms,
            ),
            return_second=return_second,
        )

    def _combine_rows(
        self, thetas: List[np.ndarray], set_labels: np.ndarray
    ) -> np.ndarray:
        """Materialize each point's *assigned* centroid only — ``(b, m)``.

        The tightening step of Hamerly pruning needs just these rows, never
        the full grid, for any aggregator.
        """
        parts = [theta[set_labels[:, q]] for q, theta in enumerate(thetas)]
        return self.aggregator.combine(parts)

    def _assign_iteration(
        self,
        X: np.ndarray,
        thetas: List[np.ndarray],
        materialize: bool,
        x_squared_norms: np.ndarray,
        labels: np.ndarray,
        set_labels: Optional[np.ndarray],
        bounds: HamerlyBounds,
        parallel=None,
    ) -> Tuple[np.ndarray, float]:
        """One Lloyd assignment pass under Hamerly bounds.

        Points whose bounds certify a strictly-nearest assigned centroid
        keep their label untouched; the remainder are first tightened
        (exact distance to the assigned centroid only) and the survivors
        re-scored against all ``∏ h_q`` centroids through the regular
        factored/materialized kernels — so the pruned path reproduces the
        unpruned argmin exactly wherever it actually recomputes.  Returns
        the labels and the fraction of points fully re-scored.

        With ``parallel`` both sweeps go block-parallel: the tightening
        gather over the active set splits on fixed blocks of ``idx`` (each
        active point's distance is independent, so concatenation is exact),
        and the rescore routes through the row-blocked assignment kernels.
        """
        def exact_squared(idx):
            if parallel is None or idx.size == 0:
                assigned = self._combine_rows(thetas, set_labels[idx])
                return paired_squared_distances(X[idx], assigned)
            parts = parallel.map(
                lambda start, stop: paired_squared_distances(
                    X[idx[start:stop]],
                    self._combine_rows(thetas, set_labels[idx[start:stop]]),
                ),
                idx.size,
            )
            return np.concatenate(parts)

        def rescore(idx):
            if idx is None:
                return self._assign(
                    X, thetas, materialize, x_squared_norms,
                    return_second=True, parallel=parallel,
                )
            return self._assign(
                X[idx], thetas, materialize, x_squared_norms[idx],
                return_second=True, parallel=parallel,
            )

        labels, fraction, _ = hamerly_step(bounds, labels, exact_squared, rescore)
        return labels, fraction

    def _materialize_chunk(
        self, thetas: List[np.ndarray], start: int, stop: int
    ) -> np.ndarray:
        flat = np.arange(start, stop)
        tuple_indices = np.unravel_index(flat, self.cardinalities)
        parts = [theta[idx] for theta, idx in zip(thetas, tuple_indices)]
        return self.aggregator.combine(parts)

    # -- protocentroid updates (Proposition 6.1, generalized to p sets) -----
    def _update_protocentroids(
        self,
        X: np.ndarray,
        thetas: List[np.ndarray],
        set_labels: np.ndarray,
        rng: np.random.Generator,
        weights: Optional[np.ndarray] = None,
        parallel=None,
    ) -> List[np.ndarray]:
        """One closed-form update sweep, routed by the ``update`` knob.

        The kernels live in :mod:`repro.core._update`: the contingency-table
        form for decomposable aggregators, the per-point gather reference
        otherwise.  Both share one weighted-mass ``bincount`` per set
        between the update denominator and the empty-cluster reseed, and
        both accept a row pool — per-block partials folded in ascending
        block order, bit-identical at every pool width.
        """
        return update_protocentroids(
            X, thetas, set_labels, self.aggregator, rng,
            weights=weights, factored=self.uses_factored_update,
            parallel=parallel,
        )

    # --------------------------------------------------------- checkpointing
    def _param_header(self) -> dict:
        """Configuration fingerprint a checkpoint must match to resume."""
        # n_threads is deliberately absent: pool width never changes the
        # results (fixed block boundaries, block-order reductions), so
        # checkpoints written at any thread count keep resuming.
        return {
            "cardinalities": [int(h) for h in self.cardinalities],
            "aggregator": self.aggregator.name,
            "init": self.init,
            "n_init": self.n_init,
            "max_iter": self.max_iter,
            "tol": self.tol,
            "mode": self.mode,
            "assignment": self.assignment,
            "update": self.update,
            "pruning": self.pruning,
            "chunk_size": self.chunk_size,
            "dtype": np.dtype(self.dtype_).name,
        }

    def _write_checkpoint(
        self, restart, iteration, thetas, labels, bounds, fractions,
        rng, fingerprint, best_state,
    ) -> None:
        if self.checkpoint is None or not self.checkpoint.due(iteration):
            return
        header = {
            "estimator": type(self).__name__,
            "params": self._param_header(),
            "data": fingerprint,
            "restart": restart,
            "iteration": iteration,
            "rng_state": serialize_rng_state(rng),
            "bounds_initialized": (
                None if bounds is None else bool(bounds.initialized)
            ),
            "has_best": best_state is not None,
            "best_inertia": (
                None if best_state is None else float(best_state[0])
            ),
            "best_iterations": (
                0 if best_state is None else int(best_state[4])
            ),
        }
        arrays = {"labels": labels}
        for q, theta in enumerate(thetas):
            arrays[f"theta_{q}"] = theta
        if bounds is not None:
            arrays["bounds_upper"] = bounds.upper
            arrays["bounds_lower"] = bounds.lower
            arrays["fractions"] = np.asarray(fractions, dtype=np.float64)
        if best_state is not None:
            for q, theta in enumerate(best_state[1]):
                arrays[f"best_theta_{q}"] = theta
            arrays["best_labels"] = best_state[2]
            if best_state[5] is not None:
                arrays["best_fractions"] = np.asarray(
                    best_state[5], dtype=np.float64
                )
        write_checkpoint(self.checkpoint.path, header, arrays)

    def _load_checkpoint(
        self, rng, fingerprint, materialize, x_squared_norms, n_features
    ):
        """Verify and unpack ``resume_from``; restores ``rng`` in place.

        Returns ``(restart_index, resume_state, best_tuple_or_None)``
        where ``resume_state`` re-enters :meth:`_single_run` at the
        checkpointed iteration's successor.
        """
        header, arrays = read_checkpoint(self.resume_from)
        check_header_fields(
            header,
            {
                "estimator": type(self).__name__,
                "params": self._param_header(),
                "data": fingerprint,
            },
            path=self.resume_from,
        )
        restore_rng_state(rng, header["rng_state"])

        def _thetas(prefix):
            out = []
            for q in range(len(self.cardinalities)):
                key = f"{prefix}{q}"
                if key not in arrays:
                    raise CheckpointError(
                        f"{self.resume_from} is missing protocentroid set "
                        f"{key!r}", field=key,
                    )
                out.append(np.ascontiguousarray(arrays[key], dtype=self.dtype_))
            return out

        thetas = _thetas("theta_")
        labels = np.ascontiguousarray(arrays["labels"], dtype=np.int64)
        set_labels = self.set_assignments(labels)
        bounds = None
        fractions: Optional[List[float]] = None
        if self._uses_pruning(materialize):
            if "bounds_upper" not in arrays:
                raise CheckpointError(
                    f"{self.resume_from} carries no pruning bounds but the "
                    "resuming estimator prunes", field="bounds_upper",
                )
            # The dtype-margin scalars are deterministic functions of the
            # constructor inputs, so only the per-point arrays and the
            # initialized flag need the round trip.
            bounds = HamerlyBounds(x_squared_norms, n_features)
            bounds.upper = np.ascontiguousarray(
                arrays["bounds_upper"], dtype=np.float64
            )
            bounds.lower = np.ascontiguousarray(
                arrays["bounds_lower"], dtype=np.float64
            )
            bounds.initialized = bool(header["bounds_initialized"])
            fractions = [float(f) for f in arrays["fractions"]]
        resume_state = (
            thetas, labels, set_labels, bounds, fractions,
            int(header["iteration"]) + 1,
        )
        best = None
        if header.get("has_best"):
            best_labels = np.ascontiguousarray(
                arrays["best_labels"], dtype=np.int64
            )
            best_fractions = (
                [float(f) for f in arrays["best_fractions"]]
                if "best_fractions" in arrays else None
            )
            best = (
                float(header["best_inertia"]),
                _thetas("best_theta_"),
                best_labels,
                self.set_assignments(best_labels),
                int(header["best_iterations"]),
                best_fractions,
            )
        return int(header["restart"]), resume_state, best

    # -- main loop -----------------------------------------------------------
    def _single_run(
        self,
        X: np.ndarray,
        rng: np.random.Generator,
        materialize: bool,
        weights: Optional[np.ndarray],
        x_squared_norms: np.ndarray,
        restart_index: int = 0,
        resume=None,
        fingerprint=None,
        best_state=None,
        parallel=None,
    ):
        factored = self.uses_factored_assignment
        if resume is None:
            thetas = self._init_protocentroids(X, rng)
            bounds = (
                HamerlyBounds(x_squared_norms, X.shape[1])
                if self._uses_pruning(materialize) else None
            )
            fractions: Optional[List[float]] = [] if bounds is not None else None
            labels = np.zeros(X.shape[0], dtype=np.int64)
            set_labels: Optional[np.ndarray] = None
            start = 1
        else:
            thetas, labels, set_labels, bounds, fractions, start = resume
        # Shift tracking: the factored closed form and the chunked memory
        # comparison diff protocentroids directly, so both seed the cached
        # previous copies from the current protocentroids; the materialized
        # comparison seeds old_centroids instead.  All three therefore
        # measure a real shift on the next iteration and converge
        # identically.  (On resume this reconstruction is exact: at the end
        # of every completed iteration the caches equal the current
        # protocentroids / their combination, which is what the checkpoint
        # stores.)
        if not factored and materialize:
            previous_thetas = None
            old_centroids = khatri_rao_combine(thetas, self.aggregator)
        else:
            previous_thetas = [theta.copy() for theta in thetas]
            old_centroids = None
        interrupted = False
        # `completed` advances only once an iteration's protocentroid
        # update has landed, so the KeyboardInterrupt handler always
        # reports a consistent last-completed count.
        completed = start - 1
        try:
            for iterations in range(start, self.max_iter + 1):
                if bounds is None:
                    labels, _ = self._assign(
                        X, thetas, materialize, x_squared_norms,
                        parallel=parallel,
                    )
                else:
                    labels, fraction = self._assign_iteration(
                        X, thetas, materialize, x_squared_norms, labels,
                        set_labels, bounds, parallel=parallel,
                    )
                    fractions.append(fraction)
                set_labels = self.set_assignments(labels)
                thetas = self._update_protocentroids(
                    X, thetas, set_labels, rng, weights, parallel=parallel
                )
                shift, old_centroids, drift = self._centroid_shift(
                    thetas, previous_thetas, old_centroids, materialize,
                    want_drift=bounds is not None,
                )
                completed = iterations
                if self.callback is not None:
                    self.callback(restart_index, iterations)
                if shift < self.tol:
                    break
                if bounds is not None:
                    # Triangle-inequality inflation: the assigned centroid's
                    # drift bound raises each upper bound, the grid-wide
                    # maximum lowers every second-nearest bound.
                    if drift[0] == "tables":
                        assigned_drift, max_drift = drift_inflation_from_tables(
                            drift[1], set_labels
                        )
                    else:
                        assigned_drift = drift[1][labels]
                        max_drift = float(drift[1].max())
                    bounds.inflate(assigned_drift, max_drift)
                # Snapshot only on continuing iterations: a resumed run
                # always has at least the terminal iteration left to do.
                self._write_checkpoint(
                    restart_index, iterations, thetas, labels, bounds,
                    fractions, rng, fingerprint, best_state,
                )
            else:  # pragma: no cover - depends on data
                warnings.warn(
                    f"KhatriRaoKMeans did not converge in "
                    f"{self.max_iter} iterations",
                    ConvergenceWarning,
                    stacklevel=2,
                )
        except KeyboardInterrupt:
            interrupted = True
        labels, min_distances = self._assign(
            X, thetas, materialize, x_squared_norms, parallel=parallel
        )
        set_labels = self.set_assignments(labels)
        # float64 reduction for any working dtype (exact no-op at f64).
        weighted_inertia = float(
            min_distances.sum(dtype=np.float64) if weights is None
            else (min_distances * weights).sum(dtype=np.float64)
        )
        return (
            thetas, labels, set_labels, weighted_inertia, completed,
            fractions, interrupted,
        )

    def _store_previous_thetas(
        self, previous_thetas: List[np.ndarray], thetas: List[np.ndarray]
    ) -> None:
        # Reuse the cached buffers (np.copyto) instead of reallocating copies
        # of every protocentroid array each iteration.
        for previous, current in zip(previous_thetas, thetas):
            np.copyto(previous, current)

    def _centroid_shift(
        self,
        thetas: List[np.ndarray],
        previous_thetas: Optional[List[np.ndarray]],
        old_centroids: Optional[np.ndarray],
        materialize: bool,
        want_drift: bool = False,
    ) -> Tuple[float, Optional[np.ndarray], Optional[tuple]]:
        """Total squared centroid movement (Algorithm 1, line 20).

        Returns ``(shift, new_centroids, drift)``; ``new_centroids`` is the
        freshly materialized grid when the materialized comparison produced
        one (so the caller can reuse it instead of combining again), else
        ``None``.  With ``want_drift`` the third element carries per-centroid
        movement bounds for Hamerly inflation: ``("tables", [d_q])`` —
        per-set norm tables from the aggregator's ``factored_drift`` hook,
        ``Σ h_q`` numbers covering the whole grid — for decomposable
        aggregators, or ``("dense", δ)`` with the exact ``(k,)`` movement
        vector otherwise.
        """
        drift: Optional[tuple] = None
        if self.uses_factored_assignment:
            # Closed form for decomposable aggregators — O(m·Σh_q + p²·m),
            # no centroid grid in either time or memory mode.
            shift = self.aggregator.factored_shift(previous_thetas, thetas)
            if want_drift:
                drift = (
                    "tables",
                    self.aggregator.factored_drift(previous_thetas, thetas),
                )
            self._store_previous_thetas(previous_thetas, thetas)
            return shift, None, drift
        if materialize and old_centroids is not None:
            new_centroids = khatri_rao_combine(thetas, self.aggregator)
            if want_drift:
                drift = ("dense", dense_drift(old_centroids, new_centroids))
            shift = float(np.sum(
                (new_centroids - old_centroids) ** 2, dtype=np.float64
            ))
            return shift, new_centroids, drift
        # Memory mode: measure movement chunk by chunk against the cached
        # previous protocentroids (seeded by _single_run) to avoid
        # materializing all centroids.  Decomposable aggregators get their
        # drift bounds from the Σh_q factored tables even here (the
        # assignment knob may have forced the materialized comparison); the
        # dense (k,) fallback below is what pruning="auto" refuses to
        # allocate in this mode (pruning="bounds" opts in explicitly).
        want_dense = want_drift and not self.aggregator.supports_factored_assignment
        if want_drift and not want_dense:
            drift = (
                "tables",
                self.aggregator.factored_drift(previous_thetas, thetas),
            )
        shift = 0.0
        k = self.n_clusters
        drift_vector = np.empty(k) if want_dense else None
        for start in range(0, k, self.chunk_size):
            stop = min(start + self.chunk_size, k)
            new_chunk = self._materialize_chunk(thetas, start, stop)
            old_chunk = self._materialize_chunk(previous_thetas, start, stop)
            if want_dense:
                drift_vector[start:stop] = dense_drift(old_chunk, new_chunk)
            shift += float(np.sum((new_chunk - old_chunk) ** 2, dtype=np.float64))
        if want_dense:
            drift = ("dense", drift_vector)
        self._store_previous_thetas(previous_thetas, thetas)
        return shift, None, drift
