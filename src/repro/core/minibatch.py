"""Mini-batch Khatri-Rao-k-Means (web-scale extension, paper Section 4).

The paper notes that Khatri-Rao extensions of gradient-descent-based
clustering "are possible but require method-specific adjustments", citing
Sculley's web-scale mini-batch k-means.  This module provides that
adjustment: a streaming variant of Algorithm 1 whose protocentroid updates
use per-batch sufficient statistics with per-protocentroid learning rates
``1 / count`` (the mini-batch k-means schedule), so each pass touches only a
batch of the data.

The closed-form structure of Proposition 6.1 carries over: for a batch, the
same numerators/denominators are computed, and the protocentroid moves a
step toward the batch-optimal value instead of jumping to it.

Assignment inside each step goes through the same dispatch as
:class:`~repro.core.kr_kmeans.KhatriRaoKMeans`: for aggregators that support
it (sum), the factored Gram-matrix kernel of :mod:`repro.core._factored`
assigns the batch without materializing the ``∏ h_q`` centroids at all.

On top of that, :meth:`fit` supports cross-step Hamerly pruning (the
``pruning`` knob, :class:`repro.core._bounds.StreamingBounds`): every
point's distance bounds are anchored against cumulative per-protocentroid
drift tables at its last exact assignment, so when a point is re-sampled
after the learning rates have decayed, the telescoped triangle inequality
usually certifies its cached label and the batch re-scores only the stale
points — identical labels and updates to the unpruned schedule.

:meth:`partial_fit` extends the same pruning to *online* streams through
the opt-in point-identity protocol: a caller that can name its rows with
stable integer indices (``partial_fit(batch, index=...)``) gets a dynamic
:class:`~repro.core._bounds.StreamingBounds` that carries certified bounds
across batches, so re-presented points whose cached label is provably
still nearest skip the argmin — bit-identical labels, inertia and updates
to the anonymous (unpruned) stream.  Every completed step also publishes a
read-only :class:`BatchStats` snapshot (``last_batch_stats_``), the
contract the :mod:`repro.monitoring` drift engine consumes without
reaching into private attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_array,
    check_cardinalities,
    check_dtype,
    check_in,
    check_positive_int,
    check_random_state,
)
from ..exceptions import CheckpointError, NotFittedError, ValidationError
from ..runtime.checkpoint import (
    check_header_fields,
    data_fingerprint,
    read_checkpoint,
    resolve_checkpoint,
    restore_rng_state,
    serialize_rng_state,
    write_checkpoint,
)
from ..runtime.parallel import open_row_pool, resolve_parallel
from ..linalg import (
    get_aggregator,
    khatri_rao_combine,
    num_combinations,
    resolve_working_dtype,
)
from ._bounds import StreamingBounds, check_pruning
from ._distances import assign_to_nearest, row_norms_squared
from ._factored import (
    ASSIGNMENT_MODES,
    assign_factored,
    grouped_row_sum,
    resolve_assignment,
)
from ._update import (
    UPDATE_MODES,
    _group_mass,
    _rest_contribution,
    _weighted_grouped_row_sum,
    factored_sum_numerator,
    pair_count_tables,
    resolve_update,
)
from .kmeans import _check_sample_weight

__all__ = ["BatchStats", "MiniBatchKhatriRaoKMeans"]

_EPSILON = 1e-12


@dataclass(frozen=True)
class BatchStats:
    """Read-only statistics snapshot of one completed mini-batch step.

    Published as ``last_batch_stats_`` by every step of
    :meth:`MiniBatchKhatriRaoKMeans.fit` / :meth:`~MiniBatchKhatriRaoKMeans.partial_fit`
    — the stable surface monitors (:mod:`repro.monitoring`) consume
    instead of reaching into private estimator attributes.  All arrays
    are read-only copies; every value is a pure function of
    ``(batch, labels, pre-update model state)``, so pruned and unpruned
    streams with identical labels publish identical snapshots.
    """

    #: 1-based step number this snapshot describes.
    step: int
    #: rows in the batch.
    batch_size: int
    #: total weighted mass of the batch (``batch_size`` when unweighted).
    mass: float
    #: weighted batch inertia against the *pre-update* protocentroids.
    inertia: float
    #: ``inertia / mass`` — the scale-free trajectory signal.
    mean_inertia: float
    #: total squared protocentroid shift applied by this step.
    shift: float
    #: share of the batch that was fully re-scored (1.0 when unpruned).
    reassignment_fraction: float
    #: the batch's (read-only) flat centroid labels.
    labels: np.ndarray
    #: per-set read-only tables ``‖Δθ_q[j]‖`` of this step's movement.
    drift_norms: Tuple[np.ndarray, ...]

    @property
    def max_drift(self) -> float:
        """Upper bound on any centroid's movement: ``Σ_q max_j ‖Δθ_q[j]‖``."""
        return float(sum(table.max() for table in self.drift_norms))

    def to_dict(self) -> dict:
        """Scalar fields as a JSON-able dict (arrays omitted)."""
        return {
            "step": self.step,
            "batch_size": self.batch_size,
            "mass": self.mass,
            "inertia": self.inertia,
            "mean_inertia": self.mean_inertia,
            "shift": self.shift,
            "reassignment_fraction": self.reassignment_fraction,
            "max_drift": self.max_drift,
        }


class MiniBatchKhatriRaoKMeans:
    """Streaming Khatri-Rao-k-Means with mini-batch updates.

    Parameters
    ----------
    cardinalities : sequence of int
        Protocentroid set sizes ``(h_1, ..., h_p)``; the model streams
        ``∏ h_q`` centroids out of ``∑ h_q`` stored vectors.
    aggregator : {"sum", "product"} or Aggregator
        The elementwise ``⊕`` combining protocentroids.  Its capability
        flags decide which fast paths engage (factored
        assignment/updates, streaming pruning, float32 kernels).
    batch_size : int
        Points sampled per update step.
    max_steps : int
        Total mini-batch steps in :meth:`fit`.
    reassignment_tol : float
        Convergence tolerance on the exponentially-averaged centroid shift.
    assignment : {"auto", "factored", "materialized"}
        Nearest-centroid strategy, as in :class:`KhatriRaoKMeans`:
        ``"auto"`` (default) uses the factored Gram-matrix kernel whenever
        the aggregator supports it, skipping centroid materialization in
        every mini-batch step; unsupported aggregators fall back to the
        materialized path transparently.
    update : {"auto", "factored", "gather"}
        Strategy for the per-batch sufficient statistics, as in
        :class:`KhatriRaoKMeans`: ``"factored"`` assembles each set's
        batch numerator through per-set-pair contingency count tables
        (:mod:`repro.core._update`) instead of gathering a
        ``(batch, m)`` rest matrix per set; ``"auto"`` (default) picks it
        whenever the aggregator supports it (sum), falling back to
        ``"gather"`` otherwise.  The mini-batch learning-rate schedule is
        unaffected — only the arithmetic order of the batch-optimal target
        changes (last-ulp drift).
    pruning : {"auto", "bounds", "none"}
        Cross-step Hamerly pruning inside :meth:`fit` (which samples its own
        batch indices and can therefore track per-point state).  Bounds are
        anchored against cumulative drift tables so re-sampled points whose
        cached label is provably still nearest skip the argmin entirely —
        exactly the labels and updates of the unpruned schedule *at the
        same working dtype* (bound margins scale with the dtype's machine
        epsilon).  Requires a decomposable aggregator (sum); others fall
        back to unpruned transparently, as does :meth:`partial_fit`, which
        receives anonymous batches.
    dtype : {"float64", "float32"} or numpy dtype
        Working dtype of the kernel stack, as on
        :class:`~repro.core.kr_kmeans.KhatriRaoKMeans`: data and
        protocentroids are cast once (at :meth:`fit` entry, or at the first
        :meth:`partial_fit` batch) and every batch scores in that
        precision.  Per-batch grouped sums, the learning-rate count tables
        and the streaming-bound maintenance stay float64 (see
        ``docs/numerics.md``).  Unsupported aggregator/dtype combinations
        fall back to float64 with a
        :class:`~repro.exceptions.DtypeFallbackWarning`; ``"float64"``
        (default) reproduces the historical behavior bit for bit.
    random_state : None, int or Generator
        Source of randomness (batch sampling and initialization).
    checkpoint : None, path or CheckpointConfig
        When set, :meth:`fit` snapshots its full streaming state
        (protocentroids, learning-rate counts, streaming-bound caches,
        step counter, RNG state) atomically to this path on the config's
        cadence — see :mod:`repro.runtime.checkpoint`.
    resume_from : None or path
        Resume :meth:`fit` from a checkpoint written by a run with
        identical parameters on identical data (both verified, mismatch
        is a typed :class:`~repro.exceptions.CheckpointError`).  The
        resumed fit is bit-identical to the uninterrupted one.
    callback : None or callable
        ``callback(restart_index, step)`` invoked after every completed
        mini-batch step (``restart_index`` is always 0 — the streaming
        fit has no restarts; the signature matches the batch
        estimators').  A callback raising ``KeyboardInterrupt`` triggers
        the graceful-interrupt path.
    n_threads : None, int or ParallelConfig
        ``None`` (default) keeps the legacy single-sweep kernels —
        bit-compatible with every earlier release — unless the
        ``REPRO_N_THREADS`` environment variable engages the blocked
        layer suite-wide.  An int (or a full
        :class:`~repro.runtime.parallel.ParallelConfig`) runs each
        batch's assignment and sufficient statistics, plus the final
        full-data labeling, over fixed row blocks on a supervised
        thread pool — bit-identical at every pool width, and the seam
        that lets :meth:`fit` stream a :class:`numpy.memmap` ``X``
        (batches are gathered copies; only the final labeling touches
        the map, block by block).

    Attributes
    ----------
    protocentroids_ : list of arrays
        Learned protocentroid sets, in the working dtype.
    labels_ : int array of shape (n,)
        Labels of the full training data after the final step.
    inertia_ : float
    n_steps_ : int
    reassignment_fractions_ : list of float or None
        Per-step fraction of the batch that was fully re-scored.  ``None``
        exactly when pruning is disabled for this estimator
        (``uses_pruning`` is False); otherwise **every** completed step —
        pruned :meth:`fit` steps, indexed :meth:`partial_fit` batches, and
        anonymous batches that could not prune (recorded as 1.0) — appends
        exactly one entry, so the list always aligns with ``n_steps_``
        (one code path, :meth:`_finish_step`).
    last_batch_stats_ : BatchStats or None
        Read-only statistics snapshot of the most recently completed step
        (``None`` before the first step) — the stable monitoring surface.
    dtype_ : numpy.dtype
        Working dtype training actually ran in (after capability
        resolution).
    converged_ : bool
        ``True`` when :meth:`fit` ran to normal completion; ``False``
        when a ``KeyboardInterrupt`` stopped it early (the
        last-completed-step model is retained instead of lost).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import make_blobs
    >>> X, _ = make_blobs(500, n_clusters=9, random_state=0)
    >>> model = MiniBatchKhatriRaoKMeans((3, 3), batch_size=64,
    ...                                  random_state=0).fit(X)
    >>> model.centroids().shape
    (9, 2)
    """

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        aggregator="sum",
        batch_size: int = 256,
        max_steps: int = 100,
        reassignment_tol: float = 1e-4,
        assignment: str = "auto",
        update: str = "auto",
        pruning: str = "auto",
        dtype="float64",
        random_state=None,
        checkpoint=None,
        resume_from=None,
        callback=None,
        n_threads=None,
    ) -> None:
        self.cardinalities = check_cardinalities(cardinalities)
        self.aggregator = get_aggregator(aggregator)
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.max_steps = check_positive_int(max_steps, "max_steps")
        self.reassignment_tol = float(reassignment_tol)
        self.assignment = check_in(assignment, "assignment", ASSIGNMENT_MODES)
        self.update = check_in(update, "update", UPDATE_MODES)
        self.pruning = check_pruning(pruning)
        self.dtype = check_dtype(dtype)
        self.random_state = random_state
        self.checkpoint = resolve_checkpoint(checkpoint)
        self.resume_from = None if resume_from is None else Path(resume_from)
        if callback is not None and not callable(callback):
            raise ValidationError(f"callback must be callable, got {callback!r}")
        self.callback = callback
        self.n_threads = resolve_parallel(n_threads)

        self.protocentroids_: Optional[List[np.ndarray]] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_steps_: int = 0
        self.reassignment_fractions_: Optional[List[float]] = None
        self.last_batch_stats_: Optional[BatchStats] = None
        self.dtype_: Optional[np.dtype] = None
        self.converged_: bool = False
        self._counts: Optional[List[np.ndarray]] = None
        self._stream_state: Optional[StreamingBounds] = None

    @property
    def n_clusters(self) -> int:
        """Number of representable centroids, ``∏ h_q``."""
        return num_combinations(self.cardinalities)

    @property
    def uses_factored_assignment(self) -> bool:
        """Whether assignment runs through the factored Khatri-Rao kernel."""
        return resolve_assignment(self.assignment, self.aggregator)

    @property
    def uses_factored_update(self) -> bool:
        """Whether batch statistics run through the contingency kernel."""
        return resolve_update(self.update, self.aggregator)

    @property
    def uses_pruning(self) -> bool:
        """Whether :meth:`fit` tracks cross-step Hamerly bounds.

        Streaming bounds telescope drift through the aggregator's per-set
        ``factored_drift`` tables, so they require a decomposable aggregator
        (whatever the ``assignment`` knob says — re-scoring respects it);
        other aggregators fall back to the unpruned schedule transparently.
        """
        return self.pruning != "none" and self.aggregator.supports_factored_assignment

    # ------------------------------------------------------------------ API
    def fit(self, X, sample_weight=None) -> "MiniBatchKhatriRaoKMeans":
        """Run ``max_steps`` mini-batch steps over ``X``.

        ``sample_weight`` optionally weights each point, exactly as on the
        batch estimators: batch statistics use the weighted Proposition 6.1
        numerators, the learning-rate counts accumulate weighted *mass*
        instead of point counts, and the reported inertia is the weighted
        objective.  ``sample_weight=None`` reproduces the unweighted
        schedule bit for bit.
        """
        self.dtype_ = resolve_working_dtype(self.dtype, self.aggregator)
        X = check_array(
            X, min_samples=max(self.cardinalities), dtype=self.dtype_
        )
        # None stays None: the unweighted schedule must not pay (or round
        # through) a multiply by an all-ones weight column.
        weights = (
            None if sample_weight is None
            else _check_sample_weight(sample_weight, X.shape[0], dtype=X.dtype)
        )
        rng = check_random_state(self.random_state)
        # A fresh training run owns its own bounds over X's positional
        # indices; any point-identity stream state from earlier
        # partial_fit calls names a different universe.
        self._stream_state = None
        self.last_batch_stats_ = None
        with open_row_pool(self.n_threads) as pool:
            return self._fit(X, weights, rng, pool)

    def _fit(self, X, weights, rng, parallel) -> "MiniBatchKhatriRaoKMeans":
        x_squared_norms = row_norms_squared(X, parallel=parallel)
        # The full-pass sha256 fingerprint only feeds checkpoint headers;
        # plain fits (and streamed memmap fits) skip it entirely.
        fingerprint = (
            data_fingerprint(X, weights)
            if self.checkpoint is not None or self.resume_from is not None
            else None
        )
        smoothed_shift = np.inf
        start = 1
        if self.resume_from is not None:
            state, smoothed_shift, start = self._load_checkpoint(
                rng, fingerprint, x_squared_norms, X.shape[1]
            )
        else:
            self._initialize(X, rng)
            state = (
                StreamingBounds(x_squared_norms, X.shape[1], self.cardinalities)
                if self.uses_pruning else None
            )
            self.reassignment_fractions_ = [] if state is not None else None
        interrupted = False
        try:
            for step in range(start, self.max_steps + 1):
                indices = rng.choice(
                    X.shape[0], size=min(self.batch_size, X.shape[0]),
                    replace=False,
                )
                batch = X[indices]
                # Fancy-indexed batches (and weights) are gathered copies,
                # so a memory-mapped X is touched batch_size rows per step.
                wb = None if weights is None else weights[indices]
                if state is None:
                    shift = self.partial_fit_batch(
                        batch, rng, sample_weight=wb, parallel=parallel
                    )
                else:
                    labels, fraction = self._pruned_batch_labels(
                        batch, indices, state, parallel
                    )
                    shift = self._finish_step(
                        batch, labels, fraction, wb, parallel, state
                    )
                smoothed_shift = shift if not np.isfinite(smoothed_shift) else (
                    0.7 * smoothed_shift + 0.3 * shift
                )
                self.n_steps_ = step
                if self.callback is not None:
                    self.callback(0, step)
                if smoothed_shift < self.reassignment_tol:
                    break
                # Snapshot only on continuing steps: a resumed run always
                # has at least the terminal step left to do.
                self._write_checkpoint(
                    step, state, smoothed_shift, rng, fingerprint
                )
        except KeyboardInterrupt:
            # Keep the last-completed-step model; protocentroids/counts
            # advance in place per step, so whatever landed is consistent
            # enough to finalize (mid-step interrupts leave a partially
            # updated sweep — still a valid model to score).
            interrupted = True
        self.labels_, distances = self._assign(X, parallel=parallel)
        # float64 reduction for any working dtype (exact no-op at f64).
        self.inertia_ = float(
            distances.sum(dtype=np.float64) if weights is None
            else (distances * weights).sum(dtype=np.float64)
        )
        self.converged_ = not interrupted
        return self

    def partial_fit(
        self, batch, sample_weight=None, index=None
    ) -> "MiniBatchKhatriRaoKMeans":
        """Incrementally update the model with one batch (online use).

        ``sample_weight`` optionally weights this batch's points — same
        weighted schedule as :meth:`fit`.

        ``index`` opts into the point-identity protocol: a 1-D array of
        stable non-negative integer ids, one per batch row, where the same
        id always names the same immutable point across calls.  With
        identities, cross-batch Hamerly pruning engages (when
        ``uses_pruning``): re-presented points whose certified bounds
        still hold skip the argmin, and the stream is bit-identical —
        labels, inertia, updates — to the same stream without ``index``.
        An id re-presented with a different ``‖x‖²`` is treated as new
        (re-scored exactly), so contract violations degrade pruning
        instead of corrupting labels.  Anonymous batches (``index=None``)
        keep the historical fully-re-scored behavior.
        """
        if self.dtype_ is None:
            self.dtype_ = resolve_working_dtype(self.dtype, self.aggregator)
        batch = check_array(batch, dtype=self.dtype_)
        weights = (
            None if sample_weight is None
            else _check_sample_weight(
                sample_weight, batch.shape[0], dtype=batch.dtype
            )
        )
        index = self._check_stream_index(index, batch.shape[0])
        rng = check_random_state(self.random_state)
        if self.protocentroids_ is None:
            self._initialize(batch, rng)
        with open_row_pool(self.n_threads) as pool:
            if index is not None and self.uses_pruning:
                self._indexed_partial_fit_batch(batch, index, weights, pool)
            else:
                self.partial_fit_batch(
                    batch, rng, sample_weight=weights, parallel=pool
                )
        self.n_steps_ += 1
        return self

    def reinitialize(self, batch, random_state=None) -> "MiniBatchKhatriRaoKMeans":
        """Re-seed the protocentroids from ``batch`` and restart the
        learning-rate schedule — the drift-policy refit hook.

        The point-identity bounds cache is cleared (every known point
        re-scores exactly on its next appearance), while ``n_steps_``,
        the reassignment-fraction log and ``last_batch_stats_`` keep
        running: monitors see one continuous stream with a refit event
        inside it.  ``random_state=None`` reuses the estimator's own
        seed; pass a seeded generator for deterministic policy behavior.
        """
        if self.dtype_ is None:
            self.dtype_ = resolve_working_dtype(self.dtype, self.aggregator)
        batch = check_array(batch, dtype=self.dtype_)
        rng = check_random_state(
            self.random_state if random_state is None else random_state
        )
        self._initialize(batch, rng)
        self._stream_state = None
        return self

    def predict(self, X) -> np.ndarray:
        """Assign rows of ``X`` to their nearest reconstructed centroid."""
        if self.protocentroids_ is None:
            raise NotFittedError(
                "MiniBatchKhatriRaoKMeans is not fitted yet; call fit first"
            )
        X = check_array(X, dtype=self.protocentroids_[0].dtype)
        with open_row_pool(self.n_threads) as pool:
            labels, _ = self._assign(X, parallel=pool)
        return labels

    def centroids(self) -> np.ndarray:
        """Materialize the centroid matrix from the protocentroids."""
        if self.protocentroids_ is None:
            raise NotFittedError(
                "MiniBatchKhatriRaoKMeans is not fitted yet; call fit first"
            )
        return khatri_rao_combine(self.protocentroids_, self.aggregator)

    def parameter_count(self) -> int:
        """Scalars stored by the summary: ``(∑ h_q) · m``."""
        if self.protocentroids_ is None:
            raise NotFittedError(
                "MiniBatchKhatriRaoKMeans is not fitted yet; call fit first"
            )
        return int(sum(theta.size for theta in self.protocentroids_))

    # ------------------------------------------------------------ internals
    def _assign(self, X: np.ndarray, return_second: bool = False, parallel=None):
        if self.uses_factored_assignment:
            return assign_factored(
                X, self.protocentroids_, self.aggregator,
                return_second=return_second, parallel=parallel,
            )
        return assign_to_nearest(
            X, self.centroids(), return_second=return_second,
            parallel=parallel,
        )

    def _initialize(self, X: np.ndarray, rng: np.random.Generator) -> None:
        p = len(self.cardinalities)
        thetas = []
        for q, h in enumerate(self.cardinalities):
            samples = X[rng.choice(X.shape[0], size=h, replace=X.shape[0] < h)]
            block = np.empty((h, X.shape[1]), dtype=X.dtype)
            for j in range(h):
                block[j] = self.aggregator.split(samples[j], p)[q]
            thetas.append(block)
        self.protocentroids_ = thetas
        # Learning-rate bookkeeping stays float64 at any working dtype: the
        # counts only feed the scalar schedule eta = batch/total.
        self._counts = [np.zeros(h) for h in self.cardinalities]

    # --------------------------------------------------------- checkpointing
    def _param_header(self) -> dict:
        """Configuration fingerprint a checkpoint must match to resume."""
        return {
            "cardinalities": [int(h) for h in self.cardinalities],
            "aggregator": self.aggregator.name,
            "batch_size": self.batch_size,
            "max_steps": self.max_steps,
            "reassignment_tol": self.reassignment_tol,
            "assignment": self.assignment,
            "update": self.update,
            "pruning": self.pruning,
            "dtype": np.dtype(self.dtype_).name,
        }

    def _write_checkpoint(
        self, step, state, smoothed_shift, rng, fingerprint
    ) -> None:
        if self.checkpoint is None or not self.checkpoint.due(step):
            return
        header = {
            "estimator": type(self).__name__,
            "params": self._param_header(),
            "data": fingerprint,
            "step": step,
            "smoothed_shift": float(smoothed_shift),
            "rng_state": serialize_rng_state(rng),
            "has_bounds": state is not None,
            "cum_max": None if state is None else float(state.cum_max),
        }
        arrays = {}
        for q, theta in enumerate(self.protocentroids_):
            arrays[f"theta_{q}"] = theta
        for q, counts in enumerate(self._counts):
            arrays[f"counts_{q}"] = counts
        if state is not None:
            arrays["sb_known"] = state.known
            arrays["sb_labels"] = state.labels
            arrays["sb_upper"] = state.upper
            arrays["sb_lower"] = state.lower
            arrays["sb_u_anchor"] = state.u_anchor
            arrays["sb_m_anchor"] = state.m_anchor
            for q, cum in enumerate(state.cum):
                arrays[f"sb_cum_{q}"] = cum
            arrays["fractions"] = np.asarray(
                self.reassignment_fractions_, dtype=np.float64
            )
        write_checkpoint(self.checkpoint.path, header, arrays)

    def _load_checkpoint(self, rng, fingerprint, x_squared_norms, n_features):
        """Verify and unpack ``resume_from``; restores the streaming state
        (protocentroids, counts, bounds, fractions, RNG) in place.

        Returns ``(state, smoothed_shift, start_step)``.
        """
        header, arrays = read_checkpoint(self.resume_from)
        check_header_fields(
            header,
            {
                "estimator": type(self).__name__,
                "params": self._param_header(),
                "data": fingerprint,
            },
            path=self.resume_from,
        )
        restore_rng_state(rng, header["rng_state"])
        thetas = []
        counts = []
        for q in range(len(self.cardinalities)):
            for prefix, into, dtype in (
                ("theta_", thetas, self.dtype_), ("counts_", counts, np.float64),
            ):
                key = f"{prefix}{q}"
                if key not in arrays:
                    raise CheckpointError(
                        f"{self.resume_from} is missing state array {key!r}",
                        field=key,
                    )
                into.append(np.ascontiguousarray(arrays[key], dtype=dtype))
        self.protocentroids_ = thetas
        self._counts = counts
        state = None
        self.reassignment_fractions_ = None
        if self.uses_pruning:
            if not header.get("has_bounds"):
                raise CheckpointError(
                    f"{self.resume_from} carries no streaming bounds but the "
                    "resuming estimator prunes", field="sb_known",
                )
            state = StreamingBounds(
                x_squared_norms, n_features, self.cardinalities
            )
            state.known = np.ascontiguousarray(arrays["sb_known"], dtype=bool)
            state.labels = np.ascontiguousarray(
                arrays["sb_labels"], dtype=np.int64
            )
            for name in ("upper", "lower", "u_anchor", "m_anchor"):
                setattr(state, name, np.ascontiguousarray(
                    arrays[f"sb_{name}"], dtype=np.float64
                ))
            state.cum = [
                np.ascontiguousarray(arrays[f"sb_cum_{q}"], dtype=np.float64)
                for q in range(len(self.cardinalities))
            ]
            state.cum_max = float(header["cum_max"])
            self.reassignment_fractions_ = [
                float(f) for f in arrays["fractions"]
            ]
        step = int(header["step"])
        self.n_steps_ = step
        return state, float(header["smoothed_shift"]), step + 1

    # ------------------------------------------------- stream checkpointing
    def save_stream(self, path, extra_header: Optional[dict] = None):
        """Snapshot an online ``partial_fit`` stream atomically to ``path``.

        Captures everything a mid-sequence resume needs for bit-identical
        continuation: protocentroids, learning-rate masses, the step
        counter, the reassignment-fraction log, the point-identity bounds
        cache (trimmed to the ids actually seen, so the serialized state
        is independent of the growth pattern), and the last
        :class:`BatchStats` snapshot.  ``extra_header`` lets wrappers
        (:class:`repro.monitoring.MonitoredStream`) ride their own
        JSON-able state in the same artifact.  Returns the written path.
        """
        if self.protocentroids_ is None:
            raise NotFittedError(
                "MiniBatchKhatriRaoKMeans has no stream state to save; "
                "call fit or partial_fit first"
            )
        state = self._stream_state
        stats = self.last_batch_stats_
        header = {
            "estimator": type(self).__name__,
            "kind": "stream",
            "params": self._param_header(),
            "step": self.n_steps_,
            "has_fractions": self.reassignment_fractions_ is not None,
            "has_bounds": state is not None,
            "cum_max": None if state is None else float(state.cum_max),
            "stats": None if stats is None else stats.to_dict(),
        }
        if extra_header:
            for key in extra_header:
                if key in header:
                    raise ValidationError(
                        f"extra_header key {key!r} collides with the "
                        "stream checkpoint schema"
                    )
            header.update(extra_header)
        arrays = {}
        for q, theta in enumerate(self.protocentroids_):
            arrays[f"theta_{q}"] = theta
        for q, counts in enumerate(self._counts):
            arrays[f"counts_{q}"] = counts
        if self.reassignment_fractions_ is not None:
            arrays["fractions"] = np.asarray(
                self.reassignment_fractions_, dtype=np.float64
            )
        if state is not None:
            for name, value in state.state_arrays().items():
                arrays[f"sb_{name}"] = value
            for q, cum in enumerate(state.cum):
                arrays[f"sb_cum_{q}"] = cum
        if stats is not None:
            arrays["stats_labels"] = np.asarray(stats.labels, dtype=np.int64)
            for q, table in enumerate(stats.drift_norms):
                arrays[f"stats_drift_{q}"] = np.asarray(table)
        write_checkpoint(path, header, arrays)
        return Path(path)

    def load_stream(self, path) -> "MiniBatchKhatriRaoKMeans":
        """Restore a :meth:`save_stream` snapshot into this estimator.

        The estimator must be configured identically to the writer (same
        ``_param_header`` fingerprint — verified, mismatch is a typed
        :class:`~repro.exceptions.CheckpointError`); continuing the batch
        sequence afterwards is bit-identical to the uninterrupted stream,
        bounds decisions included.  Returns ``self``.
        """
        if self.dtype_ is None:
            self.dtype_ = resolve_working_dtype(self.dtype, self.aggregator)
        header, arrays = read_checkpoint(path)
        check_header_fields(
            header,
            {
                "estimator": type(self).__name__,
                "kind": "stream",
                "params": self._param_header(),
            },
            path=path,
        )
        thetas = []
        counts = []
        for q in range(len(self.cardinalities)):
            for prefix, into, dtype in (
                ("theta_", thetas, self.dtype_), ("counts_", counts, np.float64),
            ):
                key = f"{prefix}{q}"
                if key not in arrays:
                    raise CheckpointError(
                        f"{path} is missing state array {key!r}", field=key,
                    )
                into.append(np.ascontiguousarray(arrays[key], dtype=dtype))
        self.protocentroids_ = thetas
        self._counts = counts
        self.n_steps_ = int(header["step"])
        self.reassignment_fractions_ = (
            [float(f) for f in arrays["fractions"]]
            if header.get("has_fractions") else None
        )
        self._stream_state = None
        if header.get("has_bounds"):
            state = StreamingBounds.for_stream(
                thetas[0].shape[1], self.cardinalities, seed_dtype=self.dtype_
            )
            n = arrays["sb_known"].shape[0]
            state._grow_to(n)
            state.size = n
            state.known[:n] = np.ascontiguousarray(
                arrays["sb_known"], dtype=bool
            )
            state.labels[:n] = np.ascontiguousarray(
                arrays["sb_labels"], dtype=np.int64
            )
            for name, attr in (
                ("upper", "upper"), ("lower", "lower"),
                ("u_anchor", "u_anchor"), ("m_anchor", "m_anchor"),
                ("norms", "norms"), ("margin_base", "_margin_base"),
            ):
                key = f"sb_{name}"
                if key not in arrays:
                    raise CheckpointError(
                        f"{path} is missing state array {key!r}", field=key,
                    )
                getattr(state, attr)[:n] = np.ascontiguousarray(
                    arrays[key], dtype=np.float64
                )
            state.cum = [
                np.ascontiguousarray(arrays[f"sb_cum_{q}"], dtype=np.float64)
                for q in range(len(self.cardinalities))
            ]
            state.cum_max = float(header["cum_max"])
            self._stream_state = state
        self.last_batch_stats_ = None
        if header.get("stats") is not None:
            fields = dict(header["stats"])
            fields.pop("max_drift", None)
            labels = np.ascontiguousarray(
                arrays["stats_labels"], dtype=np.int64
            )
            labels.setflags(write=False)
            tables = []
            for q in range(len(self.cardinalities)):
                table = np.ascontiguousarray(
                    arrays[f"stats_drift_{q}"], dtype=np.float64
                )
                table.setflags(write=False)
                tables.append(table)
            self.last_batch_stats_ = BatchStats(
                labels=labels, drift_norms=tuple(tables), **fields
            )
        return self

    def partial_fit_batch(
        self,
        batch: np.ndarray,
        rng: np.random.Generator,
        sample_weight: Optional[np.ndarray] = None,
        parallel=None,
    ) -> float:
        """One fully-re-scored mini-batch step; returns the total squared
        protocentroid shift.

        Anonymous batches cannot prune, but when a point-identity stream
        is active its drift tables still advance here — otherwise a mixed
        indexed/anonymous stream would certify stale bounds.
        """
        labels, _ = self._assign(batch, parallel=parallel)
        return self._finish_step(
            batch, labels, 1.0, sample_weight, parallel, self._stream_state
        )

    @staticmethod
    def _check_stream_index(index, n_rows: int) -> Optional[np.ndarray]:
        """Validate a point-identity ``index`` array (or pass ``None``)."""
        if index is None:
            return None
        index = np.asarray(index)
        if index.ndim != 1 or index.shape[0] != n_rows:
            raise ValidationError(
                f"index must be a 1-D array with one id per batch row "
                f"({n_rows}), got shape {index.shape}"
            )
        if index.dtype.kind not in "iu":
            raise ValidationError(
                f"index must be an integer array, got dtype {index.dtype}"
            )
        index = index.astype(np.int64, copy=False)
        if index.size and int(index.min()) < 0:
            raise ValidationError("index ids must be non-negative")
        if np.unique(index).size != index.size:
            raise ValidationError("index ids must not repeat within a batch")
        return index

    def _indexed_partial_fit_batch(
        self, batch, index, sample_weight, parallel
    ) -> float:
        """One point-identity stream step: bounds-pruned labels, then the
        shared step tail.  Bit-identical to :meth:`partial_fit_batch` on
        the same batch sequence."""
        state = self._stream_state
        if state is None:
            state = self._stream_state = StreamingBounds.for_stream(
                batch.shape[1], self.cardinalities, seed_dtype=batch.dtype
            )
        state.observe(index, row_norms_squared(batch, parallel=parallel))
        labels, fraction = self._pruned_batch_labels(
            batch, index, state, parallel
        )
        return self._finish_step(
            batch, labels, fraction, sample_weight, parallel, state
        )

    def _pruned_batch_labels(
        self, batch: np.ndarray, indices: np.ndarray, state: StreamingBounds,
        parallel=None,
    ) -> Tuple[np.ndarray, float]:
        """Batch labels with cross-step pruning, plus the re-score fraction.

        Sampled points whose telescoped bounds certify the cached label keep
        it; never-seen or stale points run the exact factored top-2 argmin
        and re-anchor their bounds.  Identical labels to assigning the whole
        batch from scratch.
        """
        settled = state.settled(indices)
        labels = np.empty(indices.size, dtype=np.int64)
        labels[settled] = state.labels[indices[settled]]
        stale = ~settled
        if stale.any():
            sub = indices[stale]
            new_labels, d1, d2 = self._assign(
                batch[stale], return_second=True, parallel=parallel
            )
            labels[stale] = new_labels
            state.record(sub, new_labels, d1, d2)
        return labels, float(np.count_nonzero(stale)) / indices.size

    def _batch_inertia(
        self, batch: np.ndarray, labels: np.ndarray, sample_weight
    ) -> float:
        """Weighted batch inertia at fixed ``labels`` against the current
        (pre-update) protocentroids.

        Computed in direct form (``‖x − c‖²`` row by row, float64) rather
        than through the assignment kernels' expansion form, so the value
        is a pure function of ``(batch, labels, model state)`` — pruned
        and unpruned streams with identical labels publish identical
        inertia by construction.
        """
        set_indices = np.unravel_index(labels, self.cardinalities)
        rows = self.aggregator.combine([
            theta[idx]
            for theta, idx in zip(self.protocentroids_, set_indices)
        ])
        diff = batch.astype(np.float64, copy=False) - rows.astype(
            np.float64, copy=False
        )
        squared = np.einsum("ij,ij->i", diff, diff)
        if sample_weight is None:
            return float(squared.sum(dtype=np.float64))
        weights = np.asarray(sample_weight, dtype=np.float64)
        return float((squared * weights).sum(dtype=np.float64))

    def _note_fraction(self, fraction: float) -> None:
        """The single ``reassignment_fractions_`` bookkeeping path: one
        entry per completed step when pruning is enabled, ``None``
        untouched when it is not."""
        if not self.uses_pruning:
            return
        if self.reassignment_fractions_ is None:
            self.reassignment_fractions_ = []
        self.reassignment_fractions_.append(float(fraction))

    def _finish_step(
        self,
        batch: np.ndarray,
        labels: np.ndarray,
        fraction: float,
        sample_weight: Optional[np.ndarray],
        parallel,
        state: Optional[StreamingBounds] = None,
    ) -> float:
        """Shared tail of every mini-batch step, pruned or not: batch
        inertia against the pre-update protocentroids, the protocentroid
        update, drift accumulation into the active bounds, and the single
        bookkeeping path for ``reassignment_fractions_`` and
        ``last_batch_stats_``.  Returns the total squared shift."""
        inertia = self._batch_inertia(batch, labels, sample_weight)
        shift, drift_tables = self._apply_batch_update(
            batch, labels, collect_drift=True,
            sample_weight=sample_weight, parallel=parallel,
        )
        if state is not None:
            state.advance(drift_tables)
        self._note_fraction(fraction)
        mass = (
            float(batch.shape[0]) if sample_weight is None
            else float(np.sum(sample_weight, dtype=np.float64))
        )
        labels = labels.copy()
        labels.setflags(write=False)
        for table in drift_tables:
            table.setflags(write=False)
        self.last_batch_stats_ = BatchStats(
            step=self.n_steps_ + 1,
            batch_size=int(batch.shape[0]),
            mass=mass,
            inertia=inertia,
            mean_inertia=inertia / mass if mass > 0 else 0.0,
            shift=shift,
            reassignment_fraction=float(fraction),
            labels=labels,
            drift_norms=tuple(drift_tables),
        )
        return shift

    def _apply_batch_update(
        self,
        batch: np.ndarray,
        labels: np.ndarray,
        collect_drift: bool = False,
        sample_weight: Optional[np.ndarray] = None,
        parallel=None,
    ) -> Tuple[float, Optional[List[np.ndarray]]]:
        """Apply the mini-batch protocentroid updates for fixed ``labels``.

        Returns the total squared protocentroid shift and, with
        ``collect_drift``, per-set tables of each protocentroid's movement
        norm this step — the increments :class:`StreamingBounds` accumulates.

        ``sample_weight`` turns every batch statistic into its weighted
        form (weighted Proposition 6.1 numerators, weighted mass in place
        of point counts — the learning rate becomes the batch's share of
        the total *mass* a protocentroid has absorbed); ``None`` is the
        byte-identical unweighted schedule.  ``parallel`` row-blocks the
        grouped reductions, folded in fixed block order.
        """
        thetas = self.protocentroids_
        set_labels = np.stack(np.unravel_index(labels, self.cardinalities), axis=1)
        is_product = self.aggregator.name == "product"
        factored = self.uses_factored_update
        w_column = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=batch.dtype)[:, None]
        )
        # The contingency tables depend only on the batch assignments (and
        # weights), which are fixed for the whole sweep — one fused bincount
        # per set pair.
        tables = (
            pair_count_tables(
                set_labels, self.cardinalities, sample_weight, parallel
            )
            if factored else None
        )
        total_shift = 0.0
        drift_tables = (
            [np.zeros(h) for h in self.cardinalities] if collect_drift else None
        )
        for q, h in enumerate(self.cardinalities):
            assignments = set_labels[:, q]
            if factored:
                # Batch numerator without the (batch, m) rest gather; thetas
                # is partially updated (sets < q), matching the gather sweep.
                numerator = factored_sum_numerator(
                    q, thetas,
                    _weighted_grouped_row_sum(
                        assignments, batch, sample_weight, h, parallel
                    ),
                    tables,
                )
            else:
                rest = _rest_contribution(
                    self.aggregator, thetas, set_labels, q, batch.shape[1]
                )
                if is_product:
                    x_rest = (
                        batch * rest if w_column is None
                        else batch * rest * w_column
                    )
                    r_rest = (
                        rest * rest if w_column is None
                        else rest * rest * w_column
                    )
                    numerator = grouped_row_sum(assignments, x_rest, h, parallel)
                    denominator = grouped_row_sum(assignments, r_rest, h, parallel)
                else:
                    diff = (
                        batch - rest if w_column is None
                        else (batch - rest) * w_column
                    )
                    numerator = grouped_row_sum(assignments, diff, h, parallel)
            batch_counts = _group_mass(assignments, sample_weight, h, parallel)
            for j in np.flatnonzero(batch_counts > 0):
                if is_product:
                    safe = denominator[j] > _EPSILON
                    target = thetas[q][j].copy()
                    target[safe] = numerator[j][safe] / denominator[j][safe]
                else:
                    target = numerator[j] / batch_counts[j]
                # Mini-batch schedule: learning rate decays with the total
                # number of points this protocentroid has absorbed.
                self._counts[q][j] += batch_counts[j]
                eta = batch_counts[j] / self._counts[q][j]
                updated = (1.0 - eta) * thetas[q][j] + eta * target
                step_shift = float(np.sum(
                    (updated - thetas[q][j]) ** 2, dtype=np.float64
                ))
                total_shift += step_shift
                if collect_drift:
                    drift_tables[q][j] = np.sqrt(step_shift)
                thetas[q][j] = updated
        return total_shift, drift_tables
