"""Core clustering algorithms: the paper's primary contribution.

* :class:`KMeans` — standard Lloyd's algorithm with k-means++ (Section 3),
  the baseline the paper compares against;
* :class:`KhatriRaoKMeans` — Algorithm 1 with closed-form protocentroid
  updates (Proposition 6.1), sum/product aggregators and any number ``p``
  of protocentroid sets;
* :class:`NaiveKhatriRao` — the two-phase baseline of Section 5;
* design-choice helpers from Section 8 (:mod:`repro.core.design`);
* BIC-based model selection (:mod:`repro.core.model_selection`);
* :func:`assign_factored` — the factored assignment kernel that exploits
  Khatri-Rao structure to skip centroid materialization (Section 6,
  "Complexity");
* :func:`update_factored` / :func:`update_gather` — the closed-form
  protocentroid update kernels (:mod:`repro.core._update`): the
  contingency-table form that kills the per-set ``(n, m)`` rest gather for
  decomposable aggregators, and the reference gather arithmetic (the
  estimators' ``update`` knob);
* Hamerly bound pruning (:mod:`repro.core._bounds`) — cross-iteration
  distance bounds that restrict each Lloyd pass to the points whose labels
  could actually change (the estimators' ``pruning`` knob).
"""

from ._bounds import PRUNING_MODES, HamerlyBounds, StreamingBounds
from ._factored import assign_factored, grouped_row_sum
from ._update import (
    UPDATE_MODES,
    update_factored,
    update_gather,
    update_protocentroids,
)
from .design import (
    balanced_factor_pair,
    balanced_factorization,
    max_centroids_for_budget,
    optimal_num_sets,
    sets_bounds_for_k,
    suggest_aggregator,
)
from .gmeans import GMeans, anderson_darling_rejects_gaussian
from .kmeans import KMeans, kmeans_plus_plus_init
from .kr_kmeans import KhatriRaoKMeans
from .minibatch import BatchStats, MiniBatchKhatriRaoKMeans
from .model_selection import KhatriRaoXMeans, XMeans, bic_score
from .naive import NaiveKhatriRao, decompose_centroids

__all__ = [
    "KMeans",
    "kmeans_plus_plus_init",
    "assign_factored",
    "grouped_row_sum",
    "UPDATE_MODES",
    "update_factored",
    "update_gather",
    "update_protocentroids",
    "PRUNING_MODES",
    "HamerlyBounds",
    "StreamingBounds",
    "KhatriRaoKMeans",
    "BatchStats",
    "MiniBatchKhatriRaoKMeans",
    "NaiveKhatriRao",
    "decompose_centroids",
    "GMeans",
    "anderson_darling_rejects_gaussian",
    "balanced_factor_pair",
    "balanced_factorization",
    "optimal_num_sets",
    "max_centroids_for_budget",
    "sets_bounds_for_k",
    "suggest_aggregator",
    "XMeans",
    "KhatriRaoXMeans",
    "bic_score",
]
