"""G-Means: estimating k via Gaussianity testing (paper Section 8).

Section 8 lists G-Means [Hamerly & Elkan, 2003] alongside X-Means as an
established technique Khatri-Rao clustering composes with: "the number of
centroids is successively increased and the current parameterization is
evaluated ... by testing if certain distributional conditions are
fulfilled".  G-Means splits a cluster whenever its points, projected onto
the principal axis of a tentative 2-means split, fail an Anderson-Darling
normality test.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import ndtr

from .._validation import check_array, check_positive_int, check_random_state
from ._distances import assign_to_nearest
from .kmeans import KMeans

__all__ = ["GMeans", "anderson_darling_rejects_gaussian"]

#: Anderson-Darling critical value at the 1e-4 significance level
#: (the stringent level G-Means recommends to avoid over-splitting).
_CRITICAL_VALUE = 1.8692


def anderson_darling_rejects_gaussian(
    values: np.ndarray, *, critical_value: float = _CRITICAL_VALUE
) -> bool:
    """True when a 1-D sample is significantly non-Gaussian.

    Standardizes the sample and compares the Anderson-Darling statistic
    (corrected for estimated mean/variance, as scipy reports it) against the
    given critical value.
    """
    values = np.asarray(values, dtype=float).ravel()
    n = values.size
    if n < 8:
        return False  # too few points to reject anything
    std = values.std(ddof=1)
    if std == 0:
        return False
    z = np.sort((values - values.mean()) / std)
    cdf = np.clip(ndtr(z), 1e-300, 1.0 - 1e-16)
    i = np.arange(1, n + 1)
    a_squared = -n - np.mean((2 * i - 1) * (np.log(cdf) + np.log(1.0 - cdf[::-1])))
    # Small-sample correction for estimated mean and variance
    # [D'Agostino & Stephens, 1986], as used by G-Means.
    corrected = a_squared * (1.0 + 0.75 / n + 2.25 / n**2)
    return bool(corrected > critical_value)


class GMeans:
    """G-Means: grow k by splitting non-Gaussian clusters.

    Parameters
    ----------
    k_min, k_max : int
        Initial and maximum number of clusters.
    critical_value : float
        Anderson-Darling threshold; larger values split less eagerly.
    n_init, max_iter : int
        Settings of the inner k-means runs.
    random_state : None, int or Generator

    Attributes
    ----------
    n_clusters_ : int
    cluster_centers_ : array (n_clusters_, m)
    labels_ : int array (n,)
    """

    def __init__(
        self,
        *,
        k_min: int = 1,
        k_max: int = 20,
        critical_value: float = _CRITICAL_VALUE,
        n_init: int = 4,
        max_iter: int = 100,
        random_state=None,
    ) -> None:
        self.k_min = check_positive_int(k_min, "k_min")
        self.k_max = check_positive_int(k_max, "k_max", minimum=self.k_min)
        self.critical_value = float(critical_value)
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.random_state = random_state
        self.n_clusters_: Optional[int] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None

    def fit(self, X) -> "GMeans":
        """Grow the model by Gaussianity-rejected splits."""
        X = check_array(X, min_samples=self.k_min)
        rng = check_random_state(self.random_state)
        model = KMeans(self.k_min, n_init=self.n_init, max_iter=self.max_iter,
                       random_state=rng).fit(X)
        centers = model.cluster_centers_
        labels = model.labels_

        improved = True
        while improved and centers.shape[0] < self.k_max:
            improved = False
            next_centers = []
            for idx in range(centers.shape[0]):
                points = X[labels == idx]
                split = self._try_split(points, rng)
                if split is not None and centers.shape[0] + len(next_centers) < self.k_max:
                    next_centers.extend(split)
                    improved = True
                else:
                    next_centers.append(centers[idx])
            centers = np.vstack(next_centers)
            # Warm-started Lloyd refinement.
            labels, _ = assign_to_nearest(X, centers)
            for _ in range(self.max_iter):
                counts = np.bincount(labels, minlength=centers.shape[0])
                sums = np.zeros_like(centers)
                np.add.at(sums, labels, X)
                non_empty = counts > 0
                new_centers = centers.copy()
                new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
                if np.allclose(new_centers, centers, atol=1e-7):
                    centers = new_centers
                    break
                centers = new_centers
                labels, _ = assign_to_nearest(X, centers)

        self.cluster_centers_ = centers
        self.labels_, _ = assign_to_nearest(X, centers)
        self.n_clusters_ = centers.shape[0]
        return self

    def _try_split(self, points: np.ndarray, rng: np.random.Generator):
        if points.shape[0] < 16:
            return None
        child = KMeans(2, n_init=self.n_init, max_iter=self.max_iter,
                       random_state=rng).fit(points)
        direction = child.cluster_centers_[1] - child.cluster_centers_[0]
        norm = np.linalg.norm(direction)
        if norm == 0:
            return None
        projection = points @ (direction / norm)
        if anderson_darling_rejects_gaussian(
            projection, critical_value=self.critical_value
        ):
            return [child.cluster_centers_[0], child.cluster_centers_[1]]
        return None
