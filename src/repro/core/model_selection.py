"""Estimating the number of clusters (paper Section 8, "Choosing the number
of centroids").

The paper notes that Khatri-Rao clustering composes with established
techniques such as X-Means [Pelleg & Moore, 2000], where the number of
centroids is successively increased and each candidate parameterization is
scored with the Bayesian Information Criterion [Schwarz, 1978].  In
Khatri-Rao clustering, "increasing the number of clusters is equivalent to
either increasing the cardinality of one set of protocentroids or the number
of sets of protocentroids".

This module implements:

* :func:`bic_score` — BIC of a centroid model under the spherical
  equal-variance Gaussian assumption X-Means uses;
* :class:`XMeans` — top-down cluster splitting accepted by local BIC;
* :class:`KhatriRaoXMeans` — greedy growth of protocentroid-set
  cardinalities accepted by global BIC.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_array, check_positive_int, check_random_state
from ..exceptions import NotFittedError, ValidationError
from ._distances import assign_to_nearest
from .kmeans import KMeans
from .kr_kmeans import KhatriRaoKMeans

__all__ = ["bic_score", "XMeans", "KhatriRaoXMeans"]


def bic_score(
    X: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    *,
    n_parameters: Optional[int] = None,
) -> float:
    """BIC of a centroid model (higher is better).

    Uses the X-Means formulation: a spherical Gaussian per cluster with a
    shared maximum-likelihood variance.  ``n_parameters`` defaults to the
    unconstrained count ``k·m + 1`` (centroid coordinates plus the shared
    variance); Khatri-Rao models pass their smaller protocentroid count,
    which is exactly how the paradigm helps model selection: the same
    likelihood is taxed less.
    """
    X = np.asarray(X, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.asarray(labels).ravel().astype(int)
    n, m = X.shape
    k = centroids.shape[0]
    if n <= k:
        return -np.inf
    residual = X - centroids[labels]
    rss = float(np.sum(residual**2))
    variance = rss / (m * (n - k))
    if variance <= 0:
        variance = np.finfo(float).tiny
    counts = np.bincount(labels, minlength=k).astype(float)
    occupied = counts > 0
    # Log-likelihood of the spherical mixture with hard assignments.
    log_likelihood = float(
        np.sum(counts[occupied] * np.log(counts[occupied] / n))
        - 0.5 * n * m * np.log(2.0 * np.pi * variance)
        - 0.5 * m * (n - k)
    )
    if n_parameters is None:
        n_parameters = k * m + 1
    return log_likelihood - 0.5 * n_parameters * np.log(n)


class XMeans:
    """X-Means: k-Means with BIC-driven cluster splitting.

    Starting from ``k_min`` clusters, each cluster is tentatively split in
    two by a local 2-means; the split is kept when the two-cluster BIC of
    the cluster's points beats the one-cluster BIC.  The process repeats
    until no split is accepted or ``k_max`` is reached.

    Attributes
    ----------
    n_clusters_ : int
    cluster_centers_ : array of shape (n_clusters_, m)
    labels_ : int array of shape (n,)
    bic_ : float — global BIC of the final model.
    """

    def __init__(
        self,
        *,
        k_min: int = 2,
        k_max: int = 20,
        n_init: int = 4,
        max_iter: int = 100,
        random_state=None,
    ) -> None:
        self.k_min = check_positive_int(k_min, "k_min")
        self.k_max = check_positive_int(k_max, "k_max", minimum=self.k_min)
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.random_state = random_state
        self.n_clusters_: Optional[int] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.bic_: float = -np.inf

    def fit(self, X) -> "XMeans":
        """Grow the model by BIC-accepted splits and refit globally."""
        X = check_array(X, min_samples=self.k_min)
        rng = check_random_state(self.random_state)
        model = KMeans(
            self.k_min, n_init=self.n_init, max_iter=self.max_iter, random_state=rng
        ).fit(X)
        centers = model.cluster_centers_
        labels = model.labels_

        improved = True
        while improved and centers.shape[0] < self.k_max:
            improved = False
            new_centers: List[np.ndarray] = []
            for idx in range(centers.shape[0]):
                points = X[labels == idx]
                split = self._try_split(points, centers[idx], rng)
                if split is not None and centers.shape[0] + len(new_centers) < self.k_max:
                    new_centers.extend(split)
                    improved = True
                else:
                    new_centers.append(centers[idx])
            centers = np.vstack(new_centers)
            # Lloyd refinement (warm-started) after the batch of splits.
            centers, labels = self._lloyd(X, centers)

        self.cluster_centers_ = centers
        self.labels_ = labels
        self.n_clusters_ = centers.shape[0]
        self.bic_ = bic_score(X, labels, centers)
        return self

    def _lloyd(self, X: np.ndarray, centers: np.ndarray):
        labels = None
        for _ in range(self.max_iter):
            labels, _ = assign_to_nearest(X, centers)
            new_centers = centers.copy()
            counts = np.bincount(labels, minlength=centers.shape[0])
            sums = np.zeros_like(centers)
            np.add.at(sums, labels, X)
            non_empty = counts > 0
            new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
            if np.allclose(new_centers, centers, atol=1e-6):
                centers = new_centers
                break
            centers = new_centers
        labels, _ = assign_to_nearest(X, centers)
        return centers, labels

    def _try_split(
        self, points: np.ndarray, center: np.ndarray, rng: np.random.Generator
    ) -> Optional[List[np.ndarray]]:
        if points.shape[0] < 4:
            return None
        parent_labels = np.zeros(points.shape[0], dtype=np.int64)
        parent_bic = bic_score(points, parent_labels, center[None, :])
        child = KMeans(2, n_init=self.n_init, max_iter=self.max_iter, random_state=rng)
        child.fit(points)
        child_bic = bic_score(points, child.labels_, child.cluster_centers_)
        if child_bic > parent_bic:
            return [child.cluster_centers_[0], child.cluster_centers_[1]]
        return None


class KhatriRaoXMeans:
    """BIC-driven growth of Khatri-Rao protocentroid sets (Section 8).

    Starts from ``initial_cardinalities`` and greedily applies the move that
    most improves the global BIC among: incrementing the cardinality of one
    existing set, or (optionally) appending a new set of size 2.  The BIC is
    taxed by the *protocentroid* parameter count, so growth is cheaper than
    for unconstrained k-Means — the concrete benefit of the paradigm for
    model selection.

    Attributes
    ----------
    cardinalities_ : tuple of int
    model_ : fitted :class:`~repro.core.KhatriRaoKMeans`
    bic_ : float
    history_ : list of (cardinalities, bic) explored along the greedy path.
    """

    def __init__(
        self,
        *,
        initial_cardinalities: Sequence[int] = (2, 2),
        max_vectors: int = 24,
        allow_new_sets: bool = False,
        aggregator="sum",
        n_init: int = 4,
        max_iter: int = 100,
        random_state=None,
    ) -> None:
        self.initial_cardinalities = tuple(
            check_positive_int(h, "cardinality", minimum=1) for h in initial_cardinalities
        )
        if not self.initial_cardinalities:
            raise ValidationError("initial_cardinalities must be non-empty")
        self.max_vectors = check_positive_int(max_vectors, "max_vectors")
        self.allow_new_sets = bool(allow_new_sets)
        self.aggregator = aggregator
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.random_state = random_state

        self.cardinalities_: Optional[Tuple[int, ...]] = None
        self.model_: Optional[KhatriRaoKMeans] = None
        self.bic_: float = -np.inf
        self.history_: List[Tuple[Tuple[int, ...], float]] = []

    def fit(self, X) -> "KhatriRaoXMeans":
        """Greedily grow cardinalities while the global BIC improves."""
        X = check_array(X)
        rng = check_random_state(self.random_state)
        current = self.initial_cardinalities
        model, bic = self._evaluate(X, current, rng)
        self.history_ = [(current, bic)]

        while sum(current) < self.max_vectors:
            candidates = self._moves(current)
            best_candidate = None
            best_model = None
            best_bic = bic
            for candidate in candidates:
                if sum(candidate) > self.max_vectors:
                    continue
                cand_model, cand_bic = self._evaluate(X, candidate, rng)
                self.history_.append((candidate, cand_bic))
                if cand_bic > best_bic:
                    best_candidate, best_model, best_bic = candidate, cand_model, cand_bic
            if best_candidate is None:
                break
            current, model, bic = best_candidate, best_model, best_bic

        self.cardinalities_ = current
        self.model_ = model
        self.bic_ = bic
        return self

    def predict(self, X) -> np.ndarray:
        """Assign rows of ``X`` with the selected model."""
        if self.model_ is None:
            raise NotFittedError("KhatriRaoXMeans is not fitted yet; call fit first")
        return self.model_.predict(X)

    def _moves(self, cards: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        moves = []
        for q in range(len(cards)):
            grown = list(cards)
            grown[q] += 1
            moves.append(tuple(grown))
        if self.allow_new_sets:
            moves.append(tuple(list(cards) + [2]))
        # Deduplicate symmetric moves such as (3,2) vs (2,3).
        unique = []
        seen = set()
        for move in moves:
            key = tuple(sorted(move, reverse=True))
            if key not in seen:
                seen.add(key)
                unique.append(move)
        return unique

    def _evaluate(self, X, cards: Tuple[int, ...], rng) -> Tuple[KhatriRaoKMeans, float]:
        model = KhatriRaoKMeans(
            cards,
            aggregator=self.aggregator,
            n_init=self.n_init,
            max_iter=self.max_iter,
            random_state=rng,
        ).fit(X)
        centroids = model.centroids()
        n_parameters = model.parameter_count() + 1
        bic = bic_score(X, model.labels_, centroids, n_parameters=n_parameters)
        return model, bic
