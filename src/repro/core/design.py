"""Design choices in Khatri-Rao clustering (paper Section 8).

Utilities answering the practical questions the paper addresses before
running any Khatri-Rao algorithm:

* how to split a target number of clusters ``k`` into balanced factors
  (:func:`balanced_factor_pair`, :func:`balanced_factorization`) — the
  evaluation picks "the two factors of the total number of clusters that are
  closest in value so that h1·h2 = k";
* how many protocentroid sets maximize representable centroids for a fixed
  vector budget ``b`` (:func:`optimal_num_sets`, Proposition 8.1: one of the
  two divisors of ``b`` closest to ``b/e``);
* bounds on the number of sets guaranteed to represent ``k`` centroids
  (:func:`sets_bounds_for_k`, Proposition 8.2);
* a heuristic choosing between the sum and product aggregators from an
  initial set of unconstrained centroids (:func:`suggest_aggregator`):
  in the additive model, centroid differences across one index are invariant
  in the other, and the multiplicative model shows the same invariance after
  taking logarithms.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from .._validation import check_cardinalities, check_positive_int, int_prod
from ..exceptions import ValidationError

__all__ = [
    "balanced_factor_pair",
    "balanced_factorization",
    "max_centroids_for_budget",
    "optimal_num_sets",
    "sets_bounds_for_k",
    "suggest_aggregator",
]


def balanced_factor_pair(k: int) -> Tuple[int, int]:
    """The two factors of ``k`` closest in value with ``h1 · h2 = k``.

    This is the rule used throughout the paper's evaluation (Section 9.1),
    e.g. ``k=40 -> (8, 5)``.  For prime ``k`` the only factorization is
    ``(k, 1)``.

    Examples
    --------
    >>> balanced_factor_pair(40)
    (8, 5)
    >>> balanced_factor_pair(9)
    (3, 3)
    """
    k = check_positive_int(k, "k")
    for h1 in range(int(math.isqrt(k)), 0, -1):
        if k % h1 == 0:
            h2 = k // h1
            return (max(h1, h2), min(h1, h2))
    raise AssertionError("unreachable: 1 always divides k")  # pragma: no cover


def balanced_factorization(k: int, p: int) -> Tuple[int, ...]:
    """Factor ``k`` into ``p`` integers as balanced as possible.

    Greedily extracts, at each step, the divisor of the remaining product
    closest to its ``(remaining sets)``-th root.  Returns a tuple sorted in
    non-increasing order whose product is exactly ``k``.

    Examples
    --------
    >>> balanced_factorization(36, 2)
    (6, 6)
    >>> balanced_factorization(64, 3)
    (4, 4, 4)
    """
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    factors: List[int] = []
    remaining = k
    for sets_left in range(p, 0, -1):
        if sets_left == 1:
            factors.append(remaining)
            break
        target = remaining ** (1.0 / sets_left)
        best = 1
        best_gap = float("inf")
        for d in range(1, remaining + 1):
            if remaining % d:
                continue
            gap = abs(d - target)
            if gap < best_gap:
                best, best_gap = d, gap
        factors.append(best)
        remaining //= best
    return tuple(sorted(factors, reverse=True))


def max_centroids_for_budget(budget: int, p: int) -> int:
    """Centroids representable by ``p`` equal sets under a vector budget.

    With ``b`` vectors split into ``p`` sets of ``b/p`` protocentroids each,
    ``(b/p)^p`` centroids can be represented (Section 8).

    Examples
    --------
    >>> max_centroids_for_budget(12, 2)
    36
    >>> max_centroids_for_budget(12, 3)
    64
    """
    budget = check_positive_int(budget, "budget")
    p = check_positive_int(p, "p")
    if budget % p:
        raise ValidationError(f"budget {budget} is not divisible into {p} equal sets")
    return (budget // p) ** p


def optimal_num_sets(budget: int) -> int:
    """Number of equal-size sets maximizing representable centroids.

    Proposition 8.1: among divisors of the budget ``b``, the maximizer of
    ``(b/p)^p`` is one of the two divisors closest to ``b / e``.  This
    function evaluates both candidates and returns the better one (the
    smaller ``p`` on ties, favouring easier optimization — Section 8).

    Examples
    --------
    >>> optimal_num_sets(12)
    4
    >>> optimal_num_sets(6)
    2
    """
    budget = check_positive_int(budget, "budget")
    divisors = [d for d in range(1, budget + 1) if budget % d == 0]
    target = budget / math.e
    below = max((d for d in divisors if d <= target), default=None)
    above = min((d for d in divisors if d >= target), default=None)
    candidates = {d for d in (below, above) if d is not None}
    best_p = min(candidates)
    best_value = max_centroids_for_budget(budget, best_p)
    for p in sorted(candidates):
        value = max_centroids_for_budget(budget, p)
        if value > best_value:
            best_p, best_value = p, value
    return best_p


def sets_bounds_for_k(k: int, h_min: int) -> Tuple[int, int]:
    """Bounds of Proposition 8.2 on the number of sets representing ``k``.

    ``log_{h_min} k <= p* <= ceil(k / (h_min - 1))`` where every set has at
    least ``h_min`` protocentroids.

    Examples
    --------
    >>> sets_bounds_for_k(100, 10)
    (2, 12)
    """
    k = check_positive_int(k, "k")
    h_min = check_positive_int(h_min, "h_min", minimum=2)
    lower = math.ceil(math.log(k, h_min) - 1e-12)
    lower = max(lower, 1)
    upper = math.ceil(k / (h_min - 1))
    return (lower, upper)


def _difference_invariance(grid: np.ndarray) -> float:
    """Mean variance of centroid differences across each grid axis.

    For an exactly additive grid ``μ[i, j] = θ1[i] + θ2[j]``, the difference
    ``μ[i, j] − μ[i', j]`` does not depend on ``j``, so the variance over
    ``j`` is zero.  Smaller is more consistent with the additive model.
    """
    total = 0.0
    count = 0
    p = grid.ndim - 1
    for axis in range(p):
        moved = np.moveaxis(grid, axis, 0)
        h = moved.shape[0]
        if h < 2:
            continue
        diffs = moved[1:] - moved[:-1]  # (h-1, ..., m)
        flattened = diffs.reshape(h - 1, -1, grid.shape[-1])
        if flattened.shape[1] < 2:
            continue
        total += float(np.mean(np.var(flattened, axis=1)))
        count += 1
    return total / count if count else 0.0


def suggest_aggregator(
    centroids: np.ndarray, cardinalities: Sequence[int]
) -> str:
    """Heuristic aggregator choice from unconstrained centroids (Section 8).

    Measures how invariant centroid differences are across each protocentroid
    index, both in the raw space (additive model) and after a log transform
    of magnitudes (multiplicative model), and returns the better-fitting
    aggregator name (``"sum"`` or ``"product"``).

    Examples
    --------
    >>> import numpy as np
    >>> t1 = np.array([[0.0, 1.0], [5.0, 2.0]])
    >>> t2 = np.array([[1.0, 0.0], [0.0, 3.0], [2.0, 2.0]])
    >>> from repro.linalg import khatri_rao_combine
    >>> grid = khatri_rao_combine([t1, t2], "sum")
    >>> suggest_aggregator(grid, (2, 3))
    'sum'
    """
    cards = check_cardinalities(cardinalities)
    centroids = np.asarray(centroids, dtype=float)
    k = int_prod(cards)
    if centroids.ndim != 2 or centroids.shape[0] != k:
        raise ValidationError(
            f"centroids must have shape ({k}, m) for cardinalities {cards}"
        )
    grid = centroids.reshape(*cards, centroids.shape[1])
    additive_score = _difference_invariance(grid)

    log_grid = np.log(np.abs(grid) + 1e-12)
    multiplicative_score = _difference_invariance(log_grid)

    # Normalize by the overall variance so scores are scale-free.
    additive_scale = float(np.var(grid)) or 1.0
    multiplicative_scale = float(np.var(log_grid)) or 1.0
    additive_score /= additive_scale
    multiplicative_score /= multiplicative_scale
    return "sum" if additive_score <= multiplicative_score else "product"
