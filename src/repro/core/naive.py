"""Naïve two-phase Khatri-Rao clustering (paper Section 5).

Phase 1 runs an unconstrained clustering algorithm (k-Means) to obtain
``h_1 · h_2`` centroids.  Phase 2 post-processes those centroids with
coordinate descent, alternating the closed-form updates of Eq. 8 to find the
protocentroid sets whose Khatri-Rao aggregation best approximates them.

The paper uses this baseline to demonstrate *why* the joint optimization of
Khatri-Rao-k-Means is needed: centroids found without the Khatri-Rao
constraint "may accurately describe the dataset, yet be arbitrarily far from
a Khatri-Rao structure", so imposing the structure afterwards can destroy
the summary's accuracy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_array,
    check_cardinalities,
    check_positive_int,
    check_random_state,
)
from ..exceptions import NotFittedError, ValidationError
from ..linalg import get_aggregator, khatri_rao_combine, num_combinations
from ._distances import assign_to_nearest
from .kmeans import KMeans

__all__ = ["decompose_centroids", "NaiveKhatriRao"]

_EPSILON = 1e-12


def _update_set(
    centroids_grid: np.ndarray,
    thetas: List[np.ndarray],
    set_index: int,
    aggregator,
) -> np.ndarray:
    """Closed-form coordinate-descent update of one protocentroid set (Eq. 8).

    ``centroids_grid`` has shape ``(h_1, ..., h_p, m)``; the update for the
    ``j``-th protocentroid of set ``q`` aggregates all centroids whose ``q``-th
    tuple index equals ``j`` against the other sets' current protocentroids.
    """
    p = len(thetas)
    m = centroids_grid.shape[-1]
    h_q = thetas[set_index].shape[0]
    # rest[j_1, ..., j_p, :] = aggregation of every set except set_index.
    grids = []
    for l in range(p):
        if l == set_index:
            continue
        shape = [1] * p + [m]
        shape[l] = thetas[l].shape[0]
        grids.append(thetas[l].reshape(shape))
    if grids:
        rest = grids[0]
        for grid in grids[1:]:
            rest = aggregator.pair(rest, grid)
        rest = np.broadcast_to(rest, centroids_grid.shape)
    else:
        rest = aggregator.identity(centroids_grid.shape)

    axes = tuple(l for l in range(p) if l != set_index)
    updated = thetas[set_index].copy()
    if aggregator.name == "product":
        numerator = np.sum(centroids_grid * rest, axis=axes)
        denominator = np.sum(rest * rest, axis=axes)
        safe = denominator > _EPSILON
        updated[safe] = numerator[safe] / denominator[safe]
    else:
        count = centroids_grid.size // (h_q * m)
        numerator = np.sum(centroids_grid - rest, axis=axes)
        updated = numerator / float(count)
    return updated


def decompose_centroids(
    centroids: np.ndarray,
    cardinalities: Sequence[int],
    *,
    aggregator="product",
    max_iter: int = 5000,
    tol: float = 1e-4,
    random_state=None,
) -> Tuple[List[np.ndarray], float]:
    """Approximate ``centroids`` by a Khatri-Rao aggregation of protocentroids.

    Alternates the closed-form updates of Eq. 8 over the protocentroid sets
    until the total squared approximation error improves by less than ``tol``
    or ``max_iter`` sweeps are reached (defaults follow Appendix B).

    Parameters
    ----------
    centroids : array of shape (∏ h_q, m)
        Flat centroid matrix in C-order over the tuple indices.
    cardinalities : sequence of int
        Target set sizes ``(h_1, ..., h_p)``.

    Returns
    -------
    (thetas, error)
        Protocentroid sets and the final sum of squared differences.
    """
    cards = check_cardinalities(cardinalities)
    agg = get_aggregator(aggregator)
    centroids = check_array(centroids, name="centroids")
    k = num_combinations(cards)
    if centroids.shape[0] != k:
        raise ValidationError(
            f"centroids has {centroids.shape[0]} rows but cardinalities {cards} "
            f"imply {k}"
        )
    m = centroids.shape[1]
    rng = check_random_state(random_state)
    grid = centroids.reshape(*cards, m)

    # Initialize protocentroids by splitting slice-averages of the grid, so
    # the starting point is already adapted to the target centroids.
    thetas: List[np.ndarray] = []
    for q, h in enumerate(cards):
        axes = tuple(l for l in range(len(cards)) if l != q)
        slice_means = grid.mean(axis=axes)
        block = np.empty((h, m), dtype=float)
        for j in range(h):
            block[j] = agg.split(slice_means[j], len(cards))[q]
        # Break ties between identical slices.
        block += 1e-3 * rng.normal(size=block.shape) * (np.std(centroids) or 1.0)
        thetas.append(block)

    previous_error = np.inf
    for _ in range(check_positive_int(max_iter, "max_iter")):
        for q in range(len(cards)):
            thetas[q] = _update_set(grid, thetas, q, agg)
        approx = khatri_rao_combine(thetas, agg)
        error = float(np.sum((approx - centroids) ** 2))
        if previous_error - error <= tol:
            break
        previous_error = error
    approx = khatri_rao_combine(thetas, agg)
    error = float(np.sum((approx - centroids) ** 2))
    return thetas, error


class NaiveKhatriRao:
    """Two-phase naïve Khatri-Rao clustering baseline (Section 5).

    Parameters mirror :class:`~repro.core.KhatriRaoKMeans` where applicable;
    ``decomposition_max_iter`` / ``decomposition_tol`` control the phase-2
    coordinate descent (Appendix B defaults: 5000 iterations, 1e-4).

    Attributes
    ----------
    initial_centroids_ : array of shape (∏ h_q, m)
        Unconstrained k-Means centroids from phase 1.
    protocentroids_ : list of arrays
        Phase-2 decomposition.
    decomposition_error_ : float
        Squared error between phase-1 centroids and their KR approximation.
    labels_, inertia_ : final assignment to the *reconstructed* centroids.
    """

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        aggregator="product",
        n_init: int = 10,
        max_iter: int = 200,
        tol: float = 1e-4,
        decomposition_max_iter: int = 5000,
        decomposition_tol: float = 1e-4,
        random_state=None,
    ) -> None:
        self.cardinalities = check_cardinalities(cardinalities)
        self.aggregator = get_aggregator(aggregator)
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.decomposition_max_iter = check_positive_int(
            decomposition_max_iter, "decomposition_max_iter"
        )
        self.decomposition_tol = float(decomposition_tol)
        self.random_state = random_state

        self.initial_centroids_: Optional[np.ndarray] = None
        self.protocentroids_: Optional[List[np.ndarray]] = None
        self.decomposition_error_: float = np.inf
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf

    @property
    def n_clusters(self) -> int:
        """Number of centroids targeted in phase 1, ``∏ h_q``."""
        return num_combinations(self.cardinalities)

    def fit(self, X) -> "NaiveKhatriRao":
        """Run both phases: k-Means, then coordinate-descent decomposition."""
        X = check_array(X, min_samples=self.n_clusters)
        rng = check_random_state(self.random_state)
        kmeans = KMeans(
            self.n_clusters,
            n_init=self.n_init,
            max_iter=self.max_iter,
            tol=self.tol,
            random_state=rng,
        ).fit(X)
        self.initial_centroids_ = kmeans.cluster_centers_
        self.protocentroids_, self.decomposition_error_ = decompose_centroids(
            self.initial_centroids_,
            self.cardinalities,
            aggregator=self.aggregator,
            max_iter=self.decomposition_max_iter,
            tol=self.decomposition_tol,
            random_state=rng,
        )
        centroids = self.centroids()
        self.labels_, distances = assign_to_nearest(X, centroids)
        self.inertia_ = float(distances.sum())
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return labels under the reconstructed centroids."""
        return self.fit(X).labels_

    def centroids(self) -> np.ndarray:
        """Materialize the reconstructed (KR-structured) centroids."""
        if self.protocentroids_ is None:
            raise NotFittedError("NaiveKhatriRao is not fitted yet; call fit first")
        return khatri_rao_combine(self.protocentroids_, self.aggregator)

    def parameter_count(self) -> int:
        """Scalars stored by the final summary: ``(∑ h_q) · m``."""
        if self.protocentroids_ is None:
            raise NotFittedError("NaiveKhatriRao is not fitted yet; call fit first")
        return int(sum(theta.size for theta in self.protocentroids_))
