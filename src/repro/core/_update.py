r"""Contingency-table protocentroid updates (Proposition 6.1, factored form).

With factored assignment (:mod:`repro.core._factored`) and Hamerly pruning
(:mod:`repro.core._bounds`) in place, the closed-form protocentroid update is
the per-iteration floor of Khatri-Rao k-Means: the textbook implementation of
Proposition 6.1 gathers, for every set ``q``, the per-point *rest*
contribution ``rest_i = ⊕_{r≠q} θ_r[a_r(i)]`` — an ``(n, m)`` materialization
per set, ``O(p·n·m)`` per iteration with several full-size temporaries.

For the decomposable (**sum**) aggregator that gather factors through
per-set-pair *contingency tables*.  The grouped rest contribution is

.. math::

    Σ_{i : a_q(i)=j} w_i · θ_r[a_r(i)] = (C_{qr} @ θ_r)[j],
    \qquad C_{qr}[j, l] = Σ_{i : a_q(i)=j, a_r(i)=l} w_i

so the weighted numerator of the update for set ``q`` becomes

.. math::

    N_q = \mathrm{grouped\_row\_sum}(a_q, w·X) − Σ_{r≠q} C_{qr} @ θ_r

with each ``C_qr`` obtained from a single ``bincount`` on the fused index
``a_q·h_r + a_r`` — ``O(n)`` per pair — and each matmul costing
``O(h_q·h_r·m)``.  Both forms remain ``Θ(p·n·m)`` asymptotically (the
factored numerator still takes one ``grouped_row_sum`` pass over the data
per set), but the factored per-set pass is a single fused ``bincount`` —
index arithmetic plus one add per element, memory-bandwidth-bound —
whereas the gather form materializes and walks several ``(n, m)`` float
temporaries per set (the gathered rest, its combine, the subtraction, the
optional weight product).  The only full-size allocation per factored pass
is the fused ``(n, m)`` int64 index inside ``grouped_row_sum`` (plus
``w·X`` once when weighted), which is where the measured ~3–10×
constant-factor win comes from.

The factored form *reorders* floating-point arithmetic relative to the
gather form (grouped sums of ``x − rest`` versus grouped sums of ``x`` minus
table-factored sums of ``θ``), so results agree only to last-ulp drift —
:mod:`tests.test_update_equivalence` certifies the agreement with an
explicit error envelope.  Which aggregators decompose is an aggregator
capability (``supports_factored_update`` in
:mod:`repro.linalg.aggregators`, mirroring the assignment protocol); the
product aggregator does not (``x·∏ θ`` is not linear in any ``θ_r``) and
transparently falls back to the gather path.

Both kernels reseed empty protocentroids identically (same weighted-mass
test, same ``rng`` draws, in the same order), so the reseed trajectories of
the two arithmetic forms coincide bit for bit.

Dtype policy (the estimators' ``dtype`` knob)
---------------------------------------------
Inputs keep their float32/float64 dtype through the per-point arithmetic
(gathers, ``w·X``, ``x − rest``), but **all grouped accumulation runs in
float64**: :func:`repro.core._factored.grouped_row_sum` and
``np.bincount`` return float64 sums, and the ``C_qr @ θ_r`` rest terms are
computed as float64-``C_qr`` matmuls.  The float64 numerator/denominator
quotient is rounded **once** when stored into the (working-dtype)
protocentroid array, so the per-update error at float32 is ``O(eps32·|θ|)``
per coordinate instead of the ``O(eps32·n_j·|Σ|)`` a float32 accumulator
would pay over a bucket of ``n_j`` points (see ``docs/numerics.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import as_float_array
from ..exceptions import ValidationError
from ..linalg import get_aggregator
from ._factored import grouped_row_sum

__all__ = [
    "UPDATE_MODES",
    "resolve_update",
    "pair_count_tables",
    "factored_sum_numerator",
    "sum_sufficient_statistics",
    "update_factored",
    "update_gather",
    "update_protocentroids",
]

#: valid values of the estimators' ``update`` knob
UPDATE_MODES = ("auto", "factored", "gather")

# Entries of the product-aggregator denominator below this threshold keep the
# previous protocentroid value instead of dividing by ~0.
_EPSILON = 1e-12


def resolve_update(update: str, aggregator) -> bool:
    """Return True when the contingency-table kernel should run the update.

    ``"auto"`` and ``"factored"`` both resolve to the factored kernel only
    when the aggregator advertises ``supports_factored_update``; other
    aggregators transparently fall back to the gather path.
    """
    if update not in UPDATE_MODES:
        raise ValidationError(
            f"update must be one of {UPDATE_MODES}, got {update!r}"
        )
    if update == "gather":
        return False
    return bool(get_aggregator(aggregator).supports_factored_update)


def _pair_table(
    a_q: np.ndarray,
    a_r: np.ndarray,
    h_q: int,
    h_r: int,
    weights: Optional[np.ndarray],
) -> np.ndarray:
    """One ``(h_q, h_r)`` contingency table of weighted co-assignment counts,
    from a single ``bincount`` on the fused index ``a_q·h_r + a_r``."""
    fused = a_q.astype(np.int64, copy=False) * h_r + a_r
    counts = np.bincount(fused, weights=weights, minlength=h_q * h_r)
    return counts.reshape(h_q, h_r).astype(float, copy=False)


def pair_count_tables(
    set_labels: np.ndarray,
    cardinalities: Sequence[int],
    weights: Optional[np.ndarray] = None,
    parallel=None,
) -> List[List[Optional[np.ndarray]]]:
    """All pairwise contingency tables of weighted co-assignment counts.

    ``tables[q][r][j, l] = Σ_{i : a_q(i)=j, a_r(i)=l} w_i`` for ``q ≠ r``
    (``w_i = 1`` without weights), each unordered pair computed with one
    fused ``bincount``; ``tables[r][q]`` shares the transpose rather than
    recounting.  Diagonal entries are ``None``.

    With ``parallel`` (a :class:`~repro.runtime.parallel.RowBlockPool`),
    each fixed row block counts its own tables and the partials are
    summed in ascending block order — bit-identical at every pool width.
    ``tables[r][q]`` stays a live transpose view of ``tables[q][r]``
    through the in-place fold.
    """
    p = len(cardinalities)
    n = set_labels.shape[0]
    if parallel is not None and n > 0:
        parts = parallel.map(
            lambda start, stop: pair_count_tables(
                set_labels[start:stop], cardinalities,
                None if weights is None else weights[start:stop],
            ),
            n,
        )
        tables = parts[0]
        for part in parts[1:]:
            for q in range(p):
                for r in range(q + 1, p):
                    tables[q][r] += part[q][r]
        return tables
    tables: List[List[Optional[np.ndarray]]] = [[None] * p for _ in range(p)]
    for q in range(p):
        for r in range(q + 1, p):
            table = _pair_table(
                set_labels[:, q], set_labels[:, r],
                int(cardinalities[q]), int(cardinalities[r]), weights,
            )
            tables[q][r] = table
            tables[r][q] = table.T
    return tables


def factored_sum_numerator(
    q: int,
    thetas: Sequence[np.ndarray],
    grouped_x: np.ndarray,
    tables: Sequence[Sequence[Optional[np.ndarray]]],
) -> np.ndarray:
    """Numerator of the sum-aggregator update for set ``q``.

    ``grouped_x`` is ``grouped_row_sum(a_q, w·X)``; the rest contribution is
    subtracted through the contingency tables against the *current* thetas
    (Gauss-Seidel callers pass the partially updated list).
    """
    numerator = grouped_x.copy()
    for r, theta in enumerate(thetas):
        if r == q:
            continue
        numerator -= tables[q][r] @ theta
    return numerator


def sum_sufficient_statistics(
    X: np.ndarray,
    thetas: Sequence[np.ndarray],
    set_labels: np.ndarray,
    q: int,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(numerator, mass)`` of the weighted sum update for a single set.

    The standalone entry point for callers that merge statistics across data
    shards (federated learning): each shard reports its contingency-factored
    numerator ``grouped_row_sum(a_q, w·X) − Σ_{r≠q} C_qr @ θ_r`` and weighted
    mass; the server sums them and divides, which is exactly the global
    closed-form update of Proposition 6.1.
    """
    X = as_float_array(X)
    cardinalities = tuple(theta.shape[0] for theta in thetas)
    h = cardinalities[q]
    a_q = set_labels[:, q]
    Xw = X if weights is None else X * np.asarray(weights, dtype=X.dtype)[:, None]
    numerator = grouped_row_sum(a_q, Xw, h)
    for r, theta in enumerate(thetas):
        if r == q:
            continue
        table = _pair_table(a_q, set_labels[:, r], h, cardinalities[r], weights)
        # float64 C_qr against the working-dtype θ_r promotes to a float64
        # matmul — the second documented float64 accumulation island.
        numerator -= table @ np.asarray(theta, dtype=np.float64)
    mass = np.bincount(a_q, weights=weights, minlength=h).astype(float, copy=False)
    return numerator, mass


def _group_mass(
    assignments: np.ndarray, weights: Optional[np.ndarray], num_groups: int,
    parallel=None,
) -> np.ndarray:
    """Weighted point mass per protocentroid — one ``bincount``, shared by
    the update denominator and the empty-cluster reseed.

    Blocked (``parallel``): per-block partial masses summed in block
    order.  Unweighted masses are integer-valued, so they fold exactly
    at every split; weighted masses follow the standard blocked-sum
    contract (bit-identical across pool widths).
    """
    if parallel is not None and assignments.shape[0] > 0:
        parts = parallel.map(
            lambda start, stop: _group_mass(
                assignments[start:stop],
                None if weights is None else weights[start:stop],
                num_groups,
            ),
            assignments.shape[0],
        )
        out = parts[0]
        for part in parts[1:]:
            out += part
        return out
    return np.bincount(
        assignments, weights=weights, minlength=num_groups
    ).astype(float, copy=False)


def _weighted_grouped_row_sum(
    assignments: np.ndarray,
    X: np.ndarray,
    weights: Optional[np.ndarray],
    num_groups: int,
    parallel,
) -> np.ndarray:
    """``grouped_row_sum(a, w·X)`` without ever materializing all of ``w·X``.

    The blocked path weights one row block at a time before its fused
    bincount — so a memory-mapped ``X`` streams through the update and the
    only full-width temporaries are per-block.  The ``X[s:e] * w[s:e]``
    products are elementwise (identical values under any partition) and the
    partials fold in block order, preserving the pool-width bit-identity
    contract.
    """
    if parallel is None or X.shape[0] == 0:
        Xw = (
            X if weights is None
            else X * np.asarray(weights, dtype=X.dtype)[:, None]
        )
        return grouped_row_sum(assignments, Xw, num_groups)

    def _block(start, stop):
        Xb = X[start:stop]
        if weights is not None:
            Xb = Xb * np.asarray(weights[start:stop], dtype=X.dtype)[:, None]
        return grouped_row_sum(assignments[start:stop], Xb, num_groups)

    parts = parallel.map(_block, X.shape[0])
    out = parts[0]
    for part in parts[1:]:
        out += part
    return out


def _reseed_empty(
    updated: np.ndarray,
    mass: np.ndarray,
    X: np.ndarray,
    aggregator,
    rng: Optional[np.random.Generator],
    num_sets: int,
    q: int,
) -> None:
    """Re-seed protocentroids with no assigned mass (Appendix B)."""
    empty = np.flatnonzero(mass == 0)
    if empty.size and rng is None:
        raise ValidationError(
            f"protocentroid set {q} has {empty.size} member(s) with no "
            "assigned mass; pass rng= to enable empty-cluster reseeding"
        )
    for j in empty:
        parts = aggregator.split(X[rng.integers(X.shape[0])], num_sets)
        updated[j] = parts[q]


def update_factored(
    X: np.ndarray,
    thetas: Sequence[np.ndarray],
    set_labels: np.ndarray,
    aggregator="sum",
    rng: Optional[np.random.Generator] = None,
    weights: Optional[np.ndarray] = None,
    parallel=None,
) -> List[np.ndarray]:
    """Closed-form protocentroid update via contingency tables.

    Produces the Gauss-Seidel sweep of Proposition 6.1 — set ``q`` updated
    against the already-updated sets ``r < q`` and the old sets ``r > q``,
    empty protocentroids reseeded from ``rng`` between sets — exactly as
    :func:`update_gather` does, but assembles each numerator as
    ``grouped_row_sum(a_q, w·X) − Σ_{r≠q} C_qr @ θ_r`` instead of gathering
    an ``(n, m)`` rest matrix per set.  Same values up to last-ulp
    reordering drift (certified in ``tests/test_update_equivalence.py``);
    identical reseed draws.

    Parameters
    ----------
    X : array of shape (n, m)
    thetas : sequence of arrays, set ``q`` of shape ``(h_q, m)``
    set_labels : int array of shape (n, p)
        Per-set protocentroid assignment of each point.
    aggregator : str or Aggregator
        Must advertise ``supports_factored_update`` (the sum aggregator).
    rng : numpy Generator, optional
        Source of reseed draws; only required when a protocentroid can end
        up empty.
    weights : array of shape (n,), optional
        Per-point weights of the weighted Proposition 6.1.
    parallel : RowBlockPool, optional
        Row-parallel execution: contingency tables, grouped sums and
        masses are computed as per-block partials folded in fixed block
        order (bit-identical at every pool width); the Gauss-Seidel set
        order is untouched.  Also the memmap seam — a mapped ``X`` is
        weighted and reduced one block at a time.

    Returns
    -------
    list of arrays — the updated protocentroid sets (inputs untouched).
    """
    agg = get_aggregator(aggregator)
    if not agg.supports_factored_update:
        raise ValidationError(
            f"aggregator {agg.name!r} does not support the contingency-table "
            "update; use the gather path instead"
        )
    X = as_float_array(X)
    cardinalities = tuple(theta.shape[0] for theta in thetas)
    # The legacy path hoists w·X once for all p grouped sums; the blocked
    # path instead re-weights per block inside _weighted_grouped_row_sum so
    # no (n, m) temporary exists (the memmap contract).
    Xw = None if parallel is not None else (
        X if weights is None else X * np.asarray(weights, dtype=X.dtype)[:, None]
    )
    tables = pair_count_tables(set_labels, cardinalities, weights, parallel)
    new_thetas = [as_float_array(theta).copy() for theta in thetas]
    for q, h in enumerate(cardinalities):
        assignments = set_labels[:, q]
        mass = _group_mass(assignments, weights, h, parallel)
        if parallel is None:
            grouped_x = grouped_row_sum(assignments, Xw, h)
        else:
            grouped_x = _weighted_grouped_row_sum(
                assignments, X, weights, h, parallel
            )
        numerator = factored_sum_numerator(q, new_thetas, grouped_x, tables)
        updated = new_thetas[q]
        non_empty = mass > 0
        updated[non_empty] = numerator[non_empty] / mass[non_empty, None]
        _reseed_empty(updated, mass, X, agg, rng, len(thetas), q)
    return new_thetas


def update_gather(
    X: np.ndarray,
    thetas: Sequence[np.ndarray],
    set_labels: np.ndarray,
    aggregator="sum",
    rng: Optional[np.random.Generator] = None,
    weights: Optional[np.ndarray] = None,
    parallel=None,
) -> List[np.ndarray]:
    """Closed-form protocentroid update with per-point rest gathers.

    The reference arithmetic of Proposition 6.1 (any aggregator): for each
    set, the rest contribution ``⊕_{r≠q} θ_r[a_r]`` is materialized per
    point and reduced with :func:`repro.core._factored.grouped_row_sum` —
    ``O(p·n·m)`` per call.  The factored kernel reproduces it to last-ulp
    drift for decomposable aggregators.

    Blocked (``parallel``): each row block gathers its own rest slice and
    reduces it, partials folded in block order — the ``(n, m)`` rest
    temporaries shrink to per-block size (the memmap seam) and results are
    bit-identical at every pool width.
    """
    agg = get_aggregator(aggregator)
    X = as_float_array(X)
    m = X.shape[1]
    cardinalities = tuple(theta.shape[0] for theta in thetas)
    w_column = (
        None if weights is None
        else np.asarray(weights, dtype=X.dtype)[:, None]
    )
    is_product = agg.name == "product"
    new_thetas = [as_float_array(theta).copy() for theta in thetas]
    for q, h in enumerate(cardinalities):
        assignments = set_labels[:, q]
        mass = _group_mass(assignments, weights, h, parallel)
        updated = new_thetas[q]
        if parallel is not None and X.shape[0] > 0:

            def _block(start, stop):
                rest_b = _rest_contribution(
                    agg, new_thetas, set_labels[start:stop], q, m
                )
                Xb = X[start:stop]
                a_b = assignments[start:stop]
                wc_b = None if w_column is None else w_column[start:stop]
                if is_product:
                    x_rest = Xb * rest_b if wc_b is None else Xb * rest_b * wc_b
                    r_rest = (
                        rest_b * rest_b if wc_b is None
                        else rest_b * rest_b * wc_b
                    )
                    return (
                        grouped_row_sum(a_b, x_rest, h),
                        grouped_row_sum(a_b, r_rest, h),
                    )
                diff = Xb - rest_b if wc_b is None else (Xb - rest_b) * wc_b
                return grouped_row_sum(a_b, diff, h)

            parts = parallel.map(_block, X.shape[0])
            if is_product:
                numerator = parts[0][0]
                denominator = parts[0][1]
                for part in parts[1:]:
                    numerator += part[0]
                    denominator += part[1]
                safe = denominator > _EPSILON
                updated[safe] = numerator[safe] / denominator[safe]
            else:
                numerator = parts[0]
                for part in parts[1:]:
                    numerator += part
                non_empty = mass > 0
                updated[non_empty] = (
                    numerator[non_empty] / mass[non_empty, None]
                )
        else:
            rest = _rest_contribution(agg, new_thetas, set_labels, q, m)
            if is_product:
                # θ_q^j = Σ w·x ⊙ rest / Σ w·rest ⊙ rest over points with
                # a_q = j (weighted Proposition 6.1).
                x_rest = X * rest if w_column is None else X * rest * w_column
                r_rest = (
                    rest * rest if w_column is None
                    else rest * rest * w_column
                )
                numerator = grouped_row_sum(assignments, x_rest, h)
                denominator = grouped_row_sum(assignments, r_rest, h)
                safe = denominator > _EPSILON
                updated[safe] = numerator[safe] / denominator[safe]
            else:
                # θ_q^j = Σ w·(x − rest) / Σ w over points with a_q = j.
                diff = X - rest if w_column is None else (X - rest) * w_column
                numerator = grouped_row_sum(assignments, diff, h)
                non_empty = mass > 0
                updated[non_empty] = (
                    numerator[non_empty] / mass[non_empty, None]
                )
        _reseed_empty(updated, mass, X, agg, rng, len(thetas), q)
    return new_thetas


def update_protocentroids(
    X: np.ndarray,
    thetas: Sequence[np.ndarray],
    set_labels: np.ndarray,
    aggregator,
    rng: Optional[np.random.Generator] = None,
    weights: Optional[np.ndarray] = None,
    factored: Optional[bool] = None,
    parallel=None,
) -> List[np.ndarray]:
    """Dispatch one closed-form update to the factored or gather kernel.

    ``factored=None`` resolves from the aggregator capability (the ``auto``
    behavior); ``factored=True`` with a non-decomposable aggregator falls
    back to the gather path transparently, mirroring the assignment knob.
    """
    agg = get_aggregator(aggregator)
    use_factored = agg.supports_factored_update if factored is None else (
        factored and agg.supports_factored_update
    )
    if use_factored:
        return update_factored(
            X, thetas, set_labels, agg, rng, weights, parallel
        )
    return update_gather(X, thetas, set_labels, agg, rng, weights, parallel)


def _rest_contribution(
    aggregator,
    thetas: Sequence[np.ndarray],
    set_labels: np.ndarray,
    excluded_set: int,
    feature_dim: int,
) -> np.ndarray:
    """Aggregate, per point, the protocentroids of every set but one."""
    parts = [
        thetas[l][set_labels[:, l]]
        for l in range(len(thetas))
        if l != excluded_set
    ]
    if not parts:
        shape = (set_labels.shape[0], feature_dim)
        try:
            return aggregator.identity(shape, dtype=thetas[0].dtype)
        except TypeError:
            # Pre-dtype third-party aggregators implement identity(shape)
            # only; their float64 neutral element merely promotes the p=1
            # rest arithmetic, which grouped accumulation re-rounds anyway.
            return aggregator.identity(shape)
    return aggregator.combine(parts)
