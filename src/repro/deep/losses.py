"""Differentiable clustering losses: DKM (Eq. 3) and IDEC (Eq. 4).

Both losses operate on a latent batch ``Z`` and a centroid tensor ``M``;
the Khatri-Rao variants simply pass a centroid tensor *materialized
differentiably from protocentroids* (:func:`materialize_centroid_tensor`),
so gradients flow back into the protocentroid sets — exactly the
reparameterization the paper describes in Section 7.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, softmax
from ..exceptions import ValidationError
from ..linalg import Aggregator, get_aggregator

__all__ = [
    "pairwise_sq_distances",
    "materialize_centroid_tensor",
    "dkm_loss",
    "idec_loss",
    "idec_target_distribution",
]


def pairwise_sq_distances(Z: Tensor, M: Tensor) -> Tensor:
    """Differentiable squared distances ``(n, k)`` between rows of Z and M."""
    if Z.ndim != 2 or M.ndim != 2:
        raise ValidationError("Z and M must be 2-D tensors")
    difference = Z.expand_dims(1) - M.expand_dims(0)  # (n, k, d)
    return (difference * difference).sum(axis=2)


def materialize_centroid_tensor(
    thetas: Sequence[Tensor], aggregator="sum"
) -> Tensor:
    """Differentiably combine protocentroid tensors into a centroid tensor.

    Mirrors :func:`repro.linalg.khatri_rao_combine` but on the autodiff tape:
    the output row ordering is C-order over the tuple indices, so flat labels
    are interchangeable between the numpy and autodiff code paths.
    """
    agg: Aggregator = get_aggregator(aggregator)
    if not thetas:
        raise ValidationError("at least one protocentroid tensor is required")
    result = thetas[0]
    feature_dim = thetas[0].shape[1]
    for theta in thetas[1:]:
        left = result.expand_dims(1)  # (k, 1, d)
        right = theta.expand_dims(0)  # (1, h, d)
        if agg.name == "product":
            combined = left * right
        else:
            combined = left + right
        result = combined.reshape(-1, feature_dim)
    return result


def dkm_loss(Z: Tensor, M: Tensor, *, alpha: float = 1000.0) -> Tensor:
    """Deep-k-Means clustering loss (paper Eq. 3).

    ``L = 1/n Σ_z Σ_i ||z - μ_i||² softmax_i(-α ||z - μ_i||²)`` — a softly
    assigned k-means objective whose temperature ``α`` (paper default 1000)
    approaches hard assignments.
    """
    distances = pairwise_sq_distances(Z, M)
    weights = softmax(distances * (-float(alpha)), axis=1)
    return (distances * weights).sum(axis=1).mean()


def _student_t_q(distances: Tensor, *, alpha: float = 1.0) -> Tensor:
    """Student's-t soft assignment ``q`` of DEC/IDEC from squared distances."""
    base = (distances * (1.0 / alpha) + 1.0) ** (-(alpha + 1.0) / 2.0)
    return base / base.sum(axis=1, keepdims=True)


def idec_target_distribution(q: np.ndarray) -> np.ndarray:
    """IDEC/DEC target distribution ``p`` from soft assignments ``q``.

    ``p_li = (q_li² / Σ_t q_ti) / Σ_j (q_lj² / Σ_t q_tj)`` — sharpens
    assignments while normalizing by soft cluster frequencies.  Treated as a
    constant during backpropagation (computed from detached ``q``).
    """
    q = np.asarray(q, dtype=float)
    weight = q**2 / np.maximum(q.sum(axis=0, keepdims=True), 1e-12)
    return weight / weight.sum(axis=1, keepdims=True)


def idec_loss(Z: Tensor, M: Tensor, *, alpha: float = 1.0) -> Tensor:
    """IDEC clustering loss (paper Eq. 4): ``KL(p || q)``.

    ``q`` is the Student's-t soft assignment; the target ``p`` is computed
    from the current (detached) ``q`` as in the IDEC algorithm.
    """
    distances = pairwise_sq_distances(Z, M)
    q = _student_t_q(distances, alpha=alpha)
    p = idec_target_distribution(q.numpy())
    # KL(p || q) = Σ p (log p - log q); p is a constant w.r.t. the tape.
    p_tensor = Tensor(p)
    log_p = Tensor(np.log(np.maximum(p, 1e-12)))
    kl = (p_tensor * (log_p - q.clip_min(1e-12).log())).sum(axis=1)
    return kl.mean()
