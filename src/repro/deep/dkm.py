"""Deep-k-Means (DKM) [Fard et al., 2020] and its Khatri-Rao variant.

DKM softly assigns latent points to centroids through a softmax over
negative squared distances (paper Eq. 3, temperature ``a = 1000``).
``KhatriRaoDKM`` constrains the latent centroids to a Khatri-Rao aggregation
of protocentroids and Hadamard-compresses the autoencoder (Section 7).
"""

from __future__ import annotations

from typing import Sequence

from ..autodiff import Tensor
from .base import BaseDeepClustering
from .losses import dkm_loss

__all__ = ["DKM", "KhatriRaoDKM"]


class DKM(BaseDeepClustering):
    """Deep-k-Means with an unconstrained latent centroid matrix.

    See :class:`~repro.deep.base.BaseDeepClustering` for the shared
    parameters; ``alpha`` is the softmax temperature (paper default 1000).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import make_blobs
    >>> X, _ = make_blobs(200, n_features=8, n_clusters=4, random_state=0)
    >>> model = DKM(4, hidden_dims=(16, 4), pretrain_epochs=2,
    ...             clustering_epochs=2, random_state=0).fit(X)
    >>> model.labels_.shape
    (200,)
    """

    loss_name = "dkm"

    def __init__(self, n_clusters: int, *, alpha: float = 1000.0, **kwargs) -> None:
        super().__init__(n_clusters=n_clusters, **kwargs)
        self.alpha = float(alpha)

    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        return dkm_loss(Z, M, alpha=self.alpha)


class KhatriRaoDKM(BaseDeepClustering):
    """Khatri-Rao DKM: protocentroid centroids + compressed autoencoder.

    Parameters
    ----------
    cardinalities : sequence of int
        Protocentroid set sizes ``(h_1, ..., h_p)``.
    aggregator : {"sum", "product"}
        Paper default for deep clustering: sum.
    compress_autoencoder : bool
        Default True (Section 7 compresses both Θ_μ and Θ_α); set False to
        ablate centroid-only compression.
    """

    loss_name = "dkm"

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        alpha: float = 1000.0,
        aggregator="sum",
        compress_autoencoder: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(
            cardinalities=cardinalities,
            aggregator=aggregator,
            compress_autoencoder=compress_autoencoder,
            **kwargs,
        )
        self.alpha = float(alpha)

    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        return dkm_loss(Z, M, alpha=self.alpha)
