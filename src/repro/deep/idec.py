"""Improved Deep Embedded Clustering (IDEC) [Guo et al., 2017] and its
Khatri-Rao variant.

IDEC aligns a Student's-t model of the latent distribution with a sharpened
target distribution through a KL divergence (paper Eq. 4, ``a = 1``), while
keeping the reconstruction loss as a structure-preserving regularizer.
``KhatriRaoIDEC`` applies the Section 7 reparameterizations: Khatri-Rao
latent centroids and a Hadamard-compressed autoencoder.
"""

from __future__ import annotations

from typing import Sequence

from ..autodiff import Tensor
from .base import BaseDeepClustering
from .losses import idec_loss

__all__ = ["IDEC", "KhatriRaoIDEC"]


class IDEC(BaseDeepClustering):
    """IDEC with an unconstrained latent centroid matrix.

    ``alpha`` is the Student's-t degree-of-freedom parameter (paper: 1).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import make_blobs
    >>> X, _ = make_blobs(200, n_features=8, n_clusters=4, random_state=0)
    >>> model = IDEC(4, hidden_dims=(16, 4), pretrain_epochs=2,
    ...              clustering_epochs=2, random_state=0).fit(X)
    >>> model.centroids().shape
    (4, 4)
    """

    loss_name = "idec"

    def __init__(self, n_clusters: int, *, alpha: float = 1.0, **kwargs) -> None:
        super().__init__(n_clusters=n_clusters, **kwargs)
        self.alpha = float(alpha)

    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        return idec_loss(Z, M, alpha=self.alpha)


class KhatriRaoIDEC(BaseDeepClustering):
    """Khatri-Rao IDEC: protocentroid centroids + compressed autoencoder."""

    loss_name = "idec"

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        alpha: float = 1.0,
        aggregator="sum",
        compress_autoencoder: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(
            cardinalities=cardinalities,
            aggregator=aggregator,
            compress_autoencoder=compress_autoencoder,
            **kwargs,
        )
        self.alpha = float(alpha)

    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        return idec_loss(Z, M, alpha=self.alpha)
