"""Deep Embedded Clustering (DEC) [Xie et al., 2016] and its Khatri-Rao
variant.

DEC is IDEC's predecessor (paper Section 2): the same KL-divergence
clustering loss, but *without* the reconstruction term — after pretraining,
the decoder is discarded and only the encoder and centroids are optimized.
The paper extends IDEC; DEC is included here as the natural additional
baseline (``w_rec = 0`` in Eq. 2) and to ablate the role of the
reconstruction regularizer in the Khatri-Rao setting.
"""

from __future__ import annotations

from typing import Sequence

from ..autodiff import Tensor
from .base import BaseDeepClustering
from .losses import idec_loss

__all__ = ["DEC", "KhatriRaoDEC"]


class DEC(BaseDeepClustering):
    """DEC: KL-divergence deep clustering without reconstruction loss.

    Identical to :class:`~repro.deep.IDEC` with ``w_rec = 0`` — the encoder
    is free to distort the latent space in favour of cluster separation.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import make_blobs
    >>> X, _ = make_blobs(200, n_features=8, n_clusters=4, random_state=0)
    >>> model = DEC(4, hidden_dims=(16, 4), pretrain_epochs=2,
    ...             clustering_epochs=2, random_state=0).fit(X)
    >>> model.labels_.shape
    (200,)
    """

    loss_name = "dec"

    def __init__(self, n_clusters: int, *, alpha: float = 1.0, **kwargs) -> None:
        kwargs["w_rec"] = 0.0
        super().__init__(n_clusters=n_clusters, **kwargs)
        self.alpha = float(alpha)

    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        return idec_loss(Z, M, alpha=self.alpha)


class KhatriRaoDEC(BaseDeepClustering):
    """Khatri-Rao DEC: protocentroid centroids, compressed autoencoder,
    no reconstruction loss during the clustering phase."""

    loss_name = "dec"

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        alpha: float = 1.0,
        aggregator="sum",
        compress_autoencoder: bool = True,
        **kwargs,
    ) -> None:
        kwargs["w_rec"] = 0.0
        super().__init__(
            cardinalities=cardinalities,
            aggregator=aggregator,
            compress_autoencoder=compress_autoencoder,
            **kwargs,
        )
        self.alpha = float(alpha)

    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        return idec_loss(Z, M, alpha=self.alpha)
