"""Deep clustering and its Khatri-Rao extensions (paper Sections 3, 4.2, 7).

* :class:`DKM` / :class:`IDEC` — the autoencoder-based baselines
  [Fard et al., 2020; Guo et al., 2017] reimplemented on the
  :mod:`repro.autodiff` substrate;
* :class:`KhatriRaoDKM` / :class:`KhatriRaoIDEC` — their Khatri-Rao
  variants: latent centroids constrained to a Khatri-Rao aggregation of
  protocentroids, autoencoder weights Hadamard-compressed (Eq. 6),
  initialization via :class:`~repro.core.KhatriRaoKMeans` (Section 7);
* :func:`fit_compressed_autoencoder` — the rank-doubling pretraining
  schedule of Section 9.1.
"""

from .base import DeepClusteringResult
from .compression import fit_compressed_autoencoder
from .dec import DEC, KhatriRaoDEC
from .dkm import DKM, KhatriRaoDKM
from .idec import IDEC, KhatriRaoIDEC
from .losses import dkm_loss, idec_loss, materialize_centroid_tensor, pairwise_sq_distances

__all__ = [
    "DKM",
    "KhatriRaoDKM",
    "IDEC",
    "KhatriRaoIDEC",
    "DEC",
    "KhatriRaoDEC",
    "DeepClusteringResult",
    "fit_compressed_autoencoder",
    "dkm_loss",
    "idec_loss",
    "pairwise_sq_distances",
    "materialize_centroid_tensor",
]
