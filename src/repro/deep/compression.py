"""Compressed-autoencoder pretraining with the rank schedule of Section 9.1.

The paper's procedure: start each Hadamard factor at rank
``max(10, min(d_l, m_l))``-style defaults, pretrain the compressed
autoencoder, and if its reconstruction loss exceeds the dense autoencoder's,
"iteratively multiply the rank by 2, 3, ..." — retraining with additional
epochs after each increase — until the compressed loss falls under the dense
one (or a cap is reached, since a laptop-scale budget must terminate).
Input and output layers stay dense, which "improves performance".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..nn import Autoencoder, build_autoencoder

__all__ = ["fit_compressed_autoencoder", "default_ranks"]


def default_ranks(
    input_dim: int,
    hidden_dims: Sequence[int],
    *,
    base_rank: int = 10,
    n_hadamard_factors: int = 2,
) -> List[int]:
    """Initial per-layer ranks for the compressed autoencoder.

    The paper starts from rank-10-style defaults on its large
    ``m-1024-512-256-10`` architecture.  For arbitrary (possibly tiny)
    presets we additionally cap each rank so the factorization is *strictly
    smaller* than the dense layer it replaces: a ``q``-factor Hadamard layer
    stores ``q·r·(d + m)`` scalars versus ``d·m`` dense, so the rank is
    clipped below ``d·m / (q·(d + m))``.
    """
    dims = [int(input_dim)] + [int(d) for d in hidden_dims]
    q = max(1, int(n_hadamard_factors))
    ranks = []
    for i in range(len(dims) - 1):
        d, m = dims[i], dims[i + 1]
        compression_cap = max(1, (d * m) // (q * (d + m)))
        ranks.append(max(1, min(base_rank, min(d, m), compression_cap)))
    return ranks


def fit_compressed_autoencoder(
    X: np.ndarray,
    *,
    hidden_dims: Sequence[int],
    epochs: int = 30,
    batch_size: int = 256,
    learning_rate: float = 1e-3,
    n_hadamard_factors: int = 2,
    base_rank: int = 10,
    max_rank_multiplier: int = 4,
    extra_epoch_factor: float = 0.5,
    loss_tolerance: float = 1.05,
    dense_reference: Optional[Autoencoder] = None,
    random_state=None,
) -> Tuple[Autoencoder, List[float]]:
    """Pretrain a Hadamard-compressed autoencoder via the rank schedule.

    Parameters
    ----------
    X : array of shape (n, m)
    hidden_dims : encoder widths (latent last).
    epochs, batch_size, learning_rate : pretraining configuration.
    n_hadamard_factors : ``q`` of Eq. 6 (paper default 2).
    base_rank : starting rank for every compressed layer.
    max_rank_multiplier : cap on the rank multiplier (ensures termination).
    extra_epoch_factor : fraction of ``epochs`` added after each rank bump
        (the paper adds 500 epochs to its 1000-epoch budget per bump).
    loss_tolerance : accept the compressed model once its loss is within
        this factor of the dense reference loss.
    dense_reference : optional pre-trained dense autoencoder whose
        reconstruction loss acts as the acceptance threshold; trained here
        if omitted.

    Returns
    -------
    (autoencoder, loss_history)
        The accepted compressed autoencoder and its concatenated pretraining
        loss history across rank attempts.
    """
    X = np.asarray(X, dtype=float)
    epochs = check_positive_int(epochs, "epochs")
    rng = check_random_state(random_state)

    if dense_reference is None:
        dense_reference = build_autoencoder(
            X.shape[1], hidden_dims, random_state=rng
        )
        dense_reference.pretrain(
            X,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            random_state=rng,
        )
    dense_loss = dense_reference.reconstruction_loss(X)

    base = default_ranks(
        X.shape[1], hidden_dims, base_rank=base_rank,
        n_hadamard_factors=n_hadamard_factors,
    )
    # Never let a rank bump push a layer past its dense parameter count.
    dims = [X.shape[1]] + [int(d) for d in hidden_dims]
    caps = [
        max(1, (dims[i] * dims[i + 1]) // (n_hadamard_factors * (dims[i] + dims[i + 1])))
        for i in range(len(dims) - 1)
    ]
    history: List[float] = []
    best: Optional[Autoencoder] = None
    best_loss = np.inf
    for multiplier in range(1, max_rank_multiplier + 1):
        ranks = [min(r * multiplier, cap) for r, cap in zip(base, caps)]
        candidate = build_autoencoder(
            X.shape[1],
            hidden_dims,
            compressed=True,
            ranks=ranks,
            n_hadamard_factors=n_hadamard_factors,
            random_state=rng,
        )
        run_epochs = epochs if multiplier == 1 else max(1, int(extra_epoch_factor * epochs))
        history.extend(
            candidate.pretrain(
                X,
                epochs=run_epochs,
                batch_size=batch_size,
                learning_rate=learning_rate,
                random_state=rng,
            )
        )
        candidate_loss = candidate.reconstruction_loss(X)
        if candidate_loss < best_loss:
            best, best_loss = candidate, candidate_loss
        if candidate_loss <= loss_tolerance * dense_loss:
            return candidate, history
    # Cap reached: return the best compressed model found.
    return best, history
