"""Shared scaffolding for (Khatri-Rao) deep clustering algorithms.

The training recipe follows the paper (Sections 3, 7, 9.1):

1. **Pretrain** an autoencoder on reconstruction loss — dense for the
   baselines, Hadamard-compressed with the rank schedule of Section 9.1 for
   the Khatri-Rao variants;
2. **Initialize** latent centroids with k-Means (baselines) or latent
   protocentroids with Khatri-Rao-k-Means (KR variants — Section 7,
   "Initialization");
3. **Jointly optimize** ``L_cluster + w_rec · L_rec`` over autoencoder and
   centroid/protocentroid parameters with batch-wise ADAM.

Subclasses only provide the clustering loss (DKM or IDEC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_array,
    check_cardinalities,
    check_positive_int,
    check_random_state,
    int_prod,
)
from ..autodiff import Tensor, no_grad
from ..core import KhatriRaoKMeans, KMeans
from ..core._distances import assign_to_nearest
from ..exceptions import NotFittedError, ValidationError
from ..linalg import get_aggregator
from ..nn import Adam, Autoencoder, Trainer, build_autoencoder
from ..nn.autoencoder import SMALL_HIDDEN_DIMS
from .compression import fit_compressed_autoencoder
from .losses import materialize_centroid_tensor

__all__ = ["BaseDeepClustering", "DeepClusteringResult"]


@dataclass
class DeepClusteringResult:
    """Summary of a deep-clustering run (for reports and benchmarks)."""

    labels: np.ndarray
    inertia: float
    parameter_count: int
    dense_parameter_count: int
    pretrain_loss: List[float] = field(default_factory=list)
    clustering_loss: List[float] = field(default_factory=list)

    @property
    def parameter_ratio(self) -> float:
        """Parameters stored relative to the dense baseline architecture."""
        return self.parameter_count / max(self.dense_parameter_count, 1)


class BaseDeepClustering:
    """Common machinery for DKM/IDEC and their Khatri-Rao variants.

    Parameters
    ----------
    n_clusters : int, optional
        Number of latent centroids (baselines).  Mutually exclusive with
        ``cardinalities``.
    cardinalities : sequence of int, optional
        Protocentroid set sizes (Khatri-Rao variants); the model represents
        ``∏ h_q`` clusters with ``∑ h_q`` latent protocentroids.
    aggregator : {"sum", "product"}
        Protocentroid aggregator (paper: sum for deep clustering).
    hidden_dims : sequence of int
        Encoder widths; defaults to a small CPU-friendly preset, the paper's
        ``(1024, 512, 256, 10)`` is available via
        ``repro.nn.autoencoder.PAPER_HIDDEN_DIMS``.
    w_rec : float
        Reconstruction-loss weight (paper: 1.0).
    pretrain_epochs, clustering_epochs : int
        Paper: 150 each (1000+ for compressed pretraining); defaults are
        reduced for CPU.
    batch_size : int (paper: 512)
    pretrain_lr, clustering_lr : float (paper: 1e-3, 1e-4)
    compress_autoencoder : bool
        Hadamard-compress the autoencoder (set by the KR subclasses).
    random_state : None, int or Generator
    """

    #: subclasses set this to "dkm" or "idec" for reporting.
    loss_name: str = ""

    def __init__(
        self,
        n_clusters: Optional[int] = None,
        *,
        cardinalities: Optional[Sequence[int]] = None,
        aggregator="sum",
        hidden_dims: Sequence[int] = SMALL_HIDDEN_DIMS,
        w_rec: float = 1.0,
        pretrain_epochs: int = 30,
        clustering_epochs: int = 30,
        batch_size: int = 256,
        pretrain_lr: float = 1e-3,
        clustering_lr: float = 1e-4,
        compress_autoencoder: bool = False,
        compressed_pretrain_factor: float = 7.0,
        kmeans_n_init: int = 5,
        random_state=None,
    ) -> None:
        if (n_clusters is None) == (cardinalities is None):
            raise ValidationError(
                "provide exactly one of n_clusters or cardinalities"
            )
        self.cardinalities = (
            check_cardinalities(cardinalities) if cardinalities is not None else None
        )
        self.n_clusters = (
            check_positive_int(n_clusters, "n_clusters")
            if n_clusters is not None
            else int_prod(self.cardinalities)
        )
        self.aggregator = get_aggregator(aggregator)
        self.hidden_dims = tuple(int(d) for d in hidden_dims)
        self.w_rec = float(w_rec)
        self.pretrain_epochs = check_positive_int(pretrain_epochs, "pretrain_epochs")
        self.clustering_epochs = check_positive_int(clustering_epochs, "clustering_epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.pretrain_lr = float(pretrain_lr)
        self.clustering_lr = float(clustering_lr)
        self.compress_autoencoder = bool(compress_autoencoder)
        # The paper pretrains compressed autoencoders much longer than dense
        # ones (1000 vs 150 epochs ≈ 6.7x, Section 9.1); the default factor
        # mirrors that ratio on our reduced budgets.
        self.compressed_pretrain_factor = max(1.0, float(compressed_pretrain_factor))
        self.kmeans_n_init = check_positive_int(kmeans_n_init, "kmeans_n_init")
        self.random_state = random_state

        self.autoencoder_: Optional[Autoencoder] = None
        self.centroid_params_: Optional[List[Tensor]] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.pretrain_loss_: List[float] = []
        self.clustering_loss_: List[float] = []

    # ------------------------------------------------------------ subclass
    def _clustering_loss(self, Z: Tensor, M: Tensor) -> Tensor:
        raise NotImplementedError  # pragma: no cover - interface

    # ------------------------------------------------------------------ API
    @property
    def is_khatri_rao(self) -> bool:
        """Whether this model constrains centroids to a KR structure."""
        return self.cardinalities is not None

    def fit(self, X) -> "BaseDeepClustering":
        """Pretrain, initialize centroids and jointly optimize (Section 7)."""
        X = check_array(X, min_samples=self.n_clusters)
        rng = check_random_state(self.random_state)

        self.autoencoder_, self.pretrain_loss_ = self._build_and_pretrain(X, rng)
        Z = self.autoencoder_.transform(X)
        self.centroid_params_ = self._init_centroid_params(Z, rng)
        self._joint_training(X, rng)

        Z = self.autoencoder_.transform(X)
        centroids = self._centroid_matrix()
        self.labels_, distances = assign_to_nearest(Z, centroids)
        self.inertia_ = float(distances.sum())
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return cluster labels for the training data."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Encode ``X`` and assign to the nearest latent centroid."""
        self._check_fitted()
        X = check_array(X)
        Z = self.autoencoder_.transform(X)
        labels, _ = assign_to_nearest(Z, self._centroid_matrix())
        return labels

    def transform(self, X) -> np.ndarray:
        """Latent representations of ``X``."""
        self._check_fitted()
        return self.autoencoder_.transform(check_array(X))

    def centroids(self) -> np.ndarray:
        """Latent centroid matrix (materialized for KR variants)."""
        self._check_fitted()
        return self._centroid_matrix()

    def parameter_count(self) -> int:
        """Scalars stored by the summary: autoencoder + centroid params."""
        self._check_fitted()
        centroid_params = sum(t.size for t in self.centroid_params_)
        return int(self.autoencoder_.parameter_count() + centroid_params)

    def dense_parameter_count(self) -> int:
        """Parameters of the uncompressed counterpart (for ratios).

        Dense autoencoder of the same architecture plus ``k`` full centroids.
        """
        self._check_fitted()
        latent_dim = self.hidden_dims[-1]
        dense_ae = self.autoencoder_.dense_parameter_count()
        return int(dense_ae + self.n_clusters * latent_dim)

    def result(self) -> DeepClusteringResult:
        """Bundle the fitted state for benchmarking/reporting."""
        self._check_fitted()
        return DeepClusteringResult(
            labels=self.labels_,
            inertia=self.inertia_,
            parameter_count=self.parameter_count(),
            dense_parameter_count=self.dense_parameter_count(),
            pretrain_loss=self.pretrain_loss_,
            clustering_loss=self.clustering_loss_,
        )

    # ------------------------------------------------------------ internals
    def _check_fitted(self) -> None:
        if self.autoencoder_ is None or self.centroid_params_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet; call fit first")

    def _build_and_pretrain(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> Tuple[Autoencoder, List[float]]:
        if self.compress_autoencoder:
            autoencoder, history = fit_compressed_autoencoder(
                X,
                hidden_dims=self.hidden_dims,
                epochs=max(1, int(self.pretrain_epochs * self.compressed_pretrain_factor)),
                batch_size=self.batch_size,
                learning_rate=self.pretrain_lr,
                random_state=rng,
            )
            return autoencoder, history
        autoencoder = build_autoencoder(X.shape[1], self.hidden_dims, random_state=rng)
        history = autoencoder.pretrain(
            X,
            epochs=self.pretrain_epochs,
            batch_size=self.batch_size,
            learning_rate=self.pretrain_lr,
            random_state=rng,
        )
        return autoencoder, history

    def _init_centroid_params(
        self, Z: np.ndarray, rng: np.random.Generator
    ) -> List[Tensor]:
        if self.is_khatri_rao:
            model = KhatriRaoKMeans(
                self.cardinalities,
                aggregator=self.aggregator,
                n_init=self.kmeans_n_init,
                random_state=rng,
            ).fit(Z)
            return [Tensor(theta, requires_grad=True) for theta in model.protocentroids_]
        model = KMeans(
            self.n_clusters, n_init=self.kmeans_n_init, random_state=rng
        ).fit(Z)
        return [Tensor(model.cluster_centers_, requires_grad=True)]

    def _centroid_tensor(self) -> Tensor:
        if self.is_khatri_rao:
            return materialize_centroid_tensor(self.centroid_params_, self.aggregator)
        return self.centroid_params_[0]

    def _centroid_matrix(self) -> np.ndarray:
        with no_grad():
            return self._centroid_tensor().numpy().copy()

    def _joint_training(self, X: np.ndarray, rng: np.random.Generator) -> None:
        parameters = self.autoencoder_.parameters() + list(self.centroid_params_)
        optimizer = Adam(parameters, self.clustering_lr)
        trainer = Trainer(optimizer, batch_size=self.batch_size, random_state=rng)

        def loss_fn(batch_indices: np.ndarray) -> Tensor:
            batch = Tensor(X[batch_indices])
            Z = self.autoencoder_.encode(batch)
            reconstruction = self.autoencoder_.decode(Z)
            difference = reconstruction - batch
            reconstruction_loss = (difference * difference).mean()
            cluster_loss = self._clustering_loss(Z, self._centroid_tensor())
            return cluster_loss + self.w_rec * reconstruction_loss

        self.clustering_loss_ = trainer.run(
            X.shape[0], loss_fn, epochs=self.clustering_epochs
        )
