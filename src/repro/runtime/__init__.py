"""Fault-tolerant training runtime.

The execution layer under every estimator's ``fit``: atomic
checkpoint/resume with bit-identical continuation
(:mod:`~repro.runtime.checkpoint`) and supervised parallel ``n_init``
restarts with retries, timeouts and deterministic selection
(:mod:`~repro.runtime.executor`).  See ``docs/reliability.md`` for the
operator-facing story.
"""

from .checkpoint import (
    CheckpointConfig,
    array_digest,
    data_fingerprint,
    read_checkpoint,
    resolve_checkpoint,
    restore_rng_state,
    serialize_rng_state,
    write_checkpoint,
)
from .executor import (
    ExecutorConfig,
    RestartFailure,
    RestartOutcome,
    RestartReport,
    resolve_executor,
    run_restarts,
)

__all__ = [
    "CheckpointConfig",
    "ExecutorConfig",
    "RestartFailure",
    "RestartOutcome",
    "RestartReport",
    "array_digest",
    "data_fingerprint",
    "read_checkpoint",
    "resolve_checkpoint",
    "resolve_executor",
    "restore_rng_state",
    "run_restarts",
    "serialize_rng_state",
    "write_checkpoint",
]
