"""Fault-tolerant training runtime.

The execution layer under every estimator's ``fit``: atomic
checkpoint/resume with bit-identical continuation
(:mod:`~repro.runtime.checkpoint`), supervised parallel ``n_init``
restarts with retries, timeouts and deterministic selection
(:mod:`~repro.runtime.executor`), and the deterministic row-block layer
that parallelizes the per-iteration kernels and streams memory-mapped
inputs (:mod:`~repro.runtime.parallel`).  See ``docs/reliability.md``
for the operator-facing story.
"""

from .checkpoint import (
    CheckpointConfig,
    array_digest,
    data_fingerprint,
    read_checkpoint,
    resolve_checkpoint,
    restore_rng_state,
    serialize_rng_state,
    write_checkpoint,
)
from .executor import (
    ExecutorConfig,
    RestartFailure,
    RestartOutcome,
    RestartReport,
    resolve_executor,
    run_restarts,
)
from .parallel import (
    DEFAULT_BLOCK_ROWS,
    ParallelConfig,
    RowBlockPool,
    fold_blocks,
    open_row_pool,
    resolve_parallel,
    row_blocks,
)

__all__ = [
    "CheckpointConfig",
    "DEFAULT_BLOCK_ROWS",
    "ExecutorConfig",
    "ParallelConfig",
    "RestartFailure",
    "RestartOutcome",
    "RestartReport",
    "RowBlockPool",
    "array_digest",
    "data_fingerprint",
    "fold_blocks",
    "open_row_pool",
    "read_checkpoint",
    "resolve_checkpoint",
    "resolve_executor",
    "resolve_parallel",
    "restore_rng_state",
    "row_blocks",
    "run_restarts",
    "serialize_rng_state",
    "write_checkpoint",
]
