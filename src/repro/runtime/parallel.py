"""Deterministic row-block execution layer.

The second and third legs of the ROADMAP's multi-core execution layer:
the chunked sweeps from PR 2 already partition assignment and update
work into independent *row blocks*, so a supervised thread pool over
those blocks parallelizes every hot loop (the GIL is released inside
BLAS and ``bincount``) — and the same seam streams a memory-mapped ``X``
through ``fit`` one block at a time, opening larger-than-RAM datasets.

The determinism contract
------------------------
Floating-point sums are not associative, so a reduction split into
partial per-block sums is only reproducible if the *partition* is
reproducible.  The contract, enforced structurally:

* **Block boundaries are a pure function of** ``(n_rows, block_rows)``
  — :func:`row_blocks` never looks at the live thread count.  Raising
  ``n_threads`` adds workers; it never moves a boundary.
* **Merges happen in ascending block order.**  Per-row outputs (labels,
  distances) are concatenated — each row lives in exactly one block, so
  order is trivially preserved.  Sum-style outputs (grouped row sums,
  weighted masses, contingency tables) are folded block 0, block 1, …
  regardless of which worker finished first.

Together these make ``n_threads=1`` and ``n_threads=8`` **bit-identical
by construction** — same partition, same per-block arithmetic, same
merge order.  (The *blocked* path may differ from the legacy unblocked
path in the last ulp once ``n_rows > block_rows`` — a documented
accumulation-order change, exactly like the ``update=`` knob — which is
why ``n_threads=None`` keeps the pre-PR-9 single-sweep kernels and all
their goldens byte-for-byte.)

Supervision reuses the :mod:`~repro.runtime.executor` idioms: a named
``ThreadPoolExecutor``, deterministic error propagation (the lowest
failing *block index* wins, never the first to cross the finish line),
``cancel_futures`` shutdown, context-manager lifecycle.  There are no
retries — the kernels are deterministic, so a failing block fails again.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "ParallelConfig",
    "RowBlockPool",
    "fold_blocks",
    "open_row_pool",
    "resolve_parallel",
    "row_blocks",
]

#: Rows per block.  Fixed (not derived from ``n_threads``) so the
#: partition — and therefore every blocked reduction — is identical at
#: every pool width.  4096 rows x 64 float64 features is ~2 MB per
#: block: small enough to stream a memmap, large enough that BLAS
#: dominates dispatch overhead.
DEFAULT_BLOCK_ROWS = 4096

_ENV_N_THREADS = "REPRO_N_THREADS"


def row_blocks(n_rows: int, block_rows: int = DEFAULT_BLOCK_ROWS) -> Tuple[Tuple[int, int], ...]:
    """Fixed ``(start, stop)`` boundaries covering ``range(n_rows)``.

    A pure function of its arguments — never of the thread count — so
    the same data yields the same partition under any pool width.  The
    determinism contract of the whole layer rests on this.
    """
    n_rows = int(n_rows)
    block_rows = int(block_rows)
    if block_rows < 1:
        raise ValidationError(f"block_rows must be >= 1, got {block_rows}")
    if n_rows <= 0:
        return ()
    return tuple(
        (start, min(start + block_rows, n_rows))
        for start in range(0, n_rows, block_rows)
    )


class ParallelConfig:
    """Row-parallel policy for an estimator's ``n_threads`` knob.

    Parameters
    ----------
    n_threads : int
        Worker threads.  ``1`` still runs through the pool and the
        blocked kernels, so results are bit-identical at every width.
    block_rows : int
        Rows per block.  Part of the result for multi-block reductions
        (it fixes the accumulation split), so it is a config value, not
        a tuning detail the pool may adjust.  Default
        :data:`DEFAULT_BLOCK_ROWS`.
    """

    def __init__(self, n_threads: int = 1, *, block_rows: int = DEFAULT_BLOCK_ROWS):
        n_threads = int(n_threads)
        if n_threads < 1:
            raise ValidationError(f"n_threads must be >= 1, got {n_threads}")
        block_rows = int(block_rows)
        if block_rows < 1:
            raise ValidationError(f"block_rows must be >= 1, got {block_rows}")
        self.n_threads = n_threads
        self.block_rows = block_rows

    def __repr__(self) -> str:
        return (
            f"ParallelConfig(n_threads={self.n_threads}, "
            f"block_rows={self.block_rows})"
        )


def resolve_parallel(value) -> Optional[ParallelConfig]:
    """Normalize an estimator's ``n_threads`` knob.

    ``None`` consults the ``REPRO_N_THREADS`` environment variable (so
    CI can run the whole suite threaded without touching call sites);
    unset, empty, or ``<= 0`` stays ``None`` — the legacy single-sweep
    kernels, bit-compatible with every pre-runtime release.  An int
    becomes ``ParallelConfig(n_threads)``; a config passes through.
    """
    if value is None:
        env = os.environ.get(_ENV_N_THREADS, "").strip()
        if not env:
            return None
        try:
            n_threads = int(env)
        except ValueError:
            raise ValidationError(
                f"{_ENV_N_THREADS} must be an integer, got {env!r}"
            ) from None
        if n_threads <= 0:
            return None
        return ParallelConfig(n_threads)
    if isinstance(value, ParallelConfig):
        return value
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return ParallelConfig(int(value))
    raise ValidationError(
        f"n_threads must be None, an int, or a ParallelConfig, got {value!r}"
    )


class RowBlockPool:
    """A supervised thread pool that maps kernels over fixed row blocks.

    ``map(block_fn, n_rows)`` calls ``block_fn(start, stop)`` once per
    :func:`row_blocks` boundary and returns the results **in block
    order**, whatever order the workers finished in.  Every call — even
    a single-block one — dispatches through the pool, so a threaded CI
    run exercises the worker path on small fixtures too.

    Error handling is deterministic: when blocks fail, the exception
    from the *lowest failing block index* propagates (completion order
    never picks the error), remaining futures are cancelled, and the
    pool stays usable for the next call.  The pool is safe to share
    across ``n_jobs`` restart workers — ``submit`` is thread-safe and
    block workers never re-enter the pool.
    """

    def __init__(self, config: ParallelConfig):
        if not isinstance(config, ParallelConfig):
            raise ValidationError(
                f"RowBlockPool needs a ParallelConfig, got {config!r}"
            )
        self.config = config
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def n_threads(self) -> int:
        return self.config.n_threads

    @property
    def block_rows(self) -> int:
        return self.config.block_rows

    def blocks(self, n_rows: int) -> Tuple[Tuple[int, int], ...]:
        """The fixed partition this pool uses for ``n_rows`` rows."""
        return row_blocks(n_rows, self.config.block_rows)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.n_threads,
                thread_name_prefix="repro-rowblock",
            )
        return self._executor

    def map(self, block_fn: Callable[[int, int], object], n_rows: int) -> List[object]:
        """Run ``block_fn(start, stop)`` per block; results in block order."""
        blocks = self.blocks(n_rows)
        if not blocks:
            return []
        executor = self._ensure_executor()
        futures = [executor.submit(block_fn, start, stop) for start, stop in blocks]
        results: List[object] = []
        error: Optional[BaseException] = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:
                # Walking futures in block order means the first failure
                # we see IS the lowest failing block index — every
                # earlier block already returned.
                error = exc
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "RowBlockPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "open" if self._executor is not None else "idle"
        return f"RowBlockPool({self.config!r}, {state})"


class _NullPool:
    """Context manager yielding ``None``: the legacy unblocked path."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


def open_row_pool(config: Optional[ParallelConfig]):
    """Context manager for an estimator's fit/predict-scoped pool.

    ``None`` config yields ``None`` (kernels take their legacy
    single-sweep path); otherwise yields a live :class:`RowBlockPool`
    and shuts it down on exit.
    """
    if config is None:
        return _NullPool()
    return RowBlockPool(config)


def fold_blocks(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Sum per-block partials **in ascending block order**.

    The one sanctioned way to merge sum-style blocked reductions: the
    fold order is the block order, so the result is independent of which
    worker finished first.  ``parts[0]`` must be freshly allocated by
    the block kernel (it is accumulated into).
    """
    out = parts[0]
    for part in parts[1:]:
        out += part
    return out
