"""Atomic training checkpoints with bit-identical resume.

A checkpoint is a snapshot of *everything a Lloyd-style training loop
needs to continue exactly where it stopped*: model state (protocentroids
or centroids), the labels and Hamerly-bound caches the pruned assignment
path carries across iterations, the iteration/restart counters, the
best-restart-so-far, and the serialized RNG state.  Because every array
round-trips losslessly through ``.npz`` and the RNG state round-trips
exactly, a run resumed from a checkpoint produces **bit-identical**
labels, inertia and iteration counts to the uninterrupted run — the
property :mod:`tests.test_runtime_checkpoint` certifies over the
(estimator × assignment × pruning × dtype) grid.

File format
-----------
One ``.npz`` archive, written atomically (``.tmp`` sibling +
:func:`os.replace`, so a crash mid-write never clobbers the previous
snapshot) containing:

* ``header`` — a JSON blob: format version, the owning estimator's
  configuration fingerprint (resuming under different knobs would not
  reproduce the run, so mismatches are typed errors), a dataset
  fingerprint (shape/dtype/SHA-256 of the cast training array), the
  iteration/restart counters, the serialized RNG state, and SHA-256
  content digests of every stored array;
* the state arrays themselves, keyed by the estimator.

:meth:`read_checkpoint` verifies the digests and every structural
invariant before anything reaches an estimator; all failures are
:class:`~repro.exceptions.CheckpointError` naming the offending field.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import CheckpointError, ValidationError

__all__ = [
    "CheckpointConfig",
    "array_digest",
    "data_fingerprint",
    "read_checkpoint",
    "resolve_checkpoint",
    "restore_rng_state",
    "serialize_rng_state",
    "write_checkpoint",
]

_FORMAT_VERSION = 1


class CheckpointConfig:
    """Where and how often a training loop snapshots itself.

    Parameters
    ----------
    path : str or Path
        Snapshot file (``.npz``); each write atomically replaces the
        previous one.
    every : int
        Snapshot cadence in completed iterations (mini-batch: steps).
        ``every=1`` (default) checkpoints after every iteration — the
        strongest crash guarantee; larger values trade recovery
        granularity for less write traffic.
    """

    def __init__(self, path: Union[str, Path], *, every: int = 1):
        self.path = Path(path)
        every = int(every)
        if every < 1:
            raise ValidationError(f"checkpoint every must be >= 1, got {every}")
        self.every = every

    def due(self, iteration: int) -> bool:
        """Whether a snapshot is due after completed iteration ``iteration``."""
        return iteration % self.every == 0

    def __repr__(self) -> str:
        return f"CheckpointConfig({str(self.path)!r}, every={self.every})"


def resolve_checkpoint(value) -> Optional[CheckpointConfig]:
    """Normalize an estimator's ``checkpoint`` knob.

    ``None`` stays ``None``; a path becomes ``CheckpointConfig(path)``
    (cadence 1); a config passes through.
    """
    if value is None:
        return None
    if isinstance(value, CheckpointConfig):
        return value
    if isinstance(value, (str, Path)):
        return CheckpointConfig(value)
    raise ValidationError(
        f"checkpoint must be None, a path, or a CheckpointConfig, got {value!r}"
    )


# ---------------------------------------------------------------- digests
def array_digest(a: np.ndarray) -> str:
    """SHA-256 content digest of an array's raw bytes (C-order)."""
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


def data_fingerprint(X: np.ndarray, weights: Optional[np.ndarray] = None) -> Dict:
    """Identity of the training inputs a checkpoint belongs to.

    Resuming against different data would silently produce a different
    model, so the fingerprint — shape, dtype and content digest of the
    *cast* training array (and sample weights, when given) — is stored in
    the header and re-checked at resume time.
    """
    fp = {
        "shape": list(X.shape),
        "dtype": X.dtype.name,
        "sha256": array_digest(X),
    }
    if weights is not None:
        fp["weights_sha256"] = array_digest(weights)
    return fp


# -------------------------------------------------------------- rng state
def _encode_state(value):
    if isinstance(value, dict):
        return {k: _encode_state(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": value.dtype.name}
    if isinstance(value, np.integer):
        return int(value)
    return value


def _decode_state(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        return {k: _decode_state(v) for k, v in value.items()}
    return value


def serialize_rng_state(rng: np.random.Generator) -> Dict:
    """JSON-safe snapshot of a Generator's bit-generator state.

    PCG64 state is plain (big) integers; MT19937-style states carry a
    uint32 key array, encoded losslessly as a tagged list.  Restoring the
    snapshot puts the generator in *exactly* the state it was saved in,
    so the resumed run consumes the identical random stream.
    """
    return _encode_state(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: Dict) -> None:
    """Restore a state captured by :func:`serialize_rng_state`.

    The generator's bit-generator type must match the snapshot's — a
    PCG64 state cannot resume an MT19937 stream — else a typed
    :class:`~repro.exceptions.CheckpointError`.
    """
    decoded = _decode_state(state)
    expected = type(rng.bit_generator).__name__
    recorded = decoded.get("bit_generator") if isinstance(decoded, dict) else None
    if recorded != expected:
        raise CheckpointError(
            f"checkpoint records RNG state for {recorded!r} but the resuming "
            f"run uses {expected!r}; pass the same random_state kind",
            field="rng_state",
        )
    rng.bit_generator.state = decoded


# ------------------------------------------------------------ write / read
def write_checkpoint(
    path: Union[str, Path],
    header: Dict,
    arrays: Dict[str, np.ndarray],
    *,
    fault_hook=None,
) -> Path:
    """Atomically write one snapshot; returns the final path.

    The archive lands as a ``.tmp`` sibling first and is renamed over
    ``path`` with :func:`os.replace` only once fully written, so a crash
    at any point leaves either the previous snapshot or the new one —
    never a torn file.  ``header`` is augmented with the format version
    and per-array SHA-256 digests.  ``fault_hook(stage)``, when given, is
    invoked at ``"write"`` (before any bytes) and ``"replace"`` (tmp
    fully written, final rename pending) — the torn-write drill seam.
    """
    path = Path(path)
    full = {
        **header,
        "format_version": _FORMAT_VERSION,
        "checksums": {key: array_digest(a) for key, a in arrays.items()},
    }
    payload = {
        key: np.ascontiguousarray(a) for key, a in arrays.items()
    }
    payload["header"] = np.frombuffer(
        json.dumps(full).encode("utf-8"), dtype=np.uint8
    )
    if fault_hook is not None:
        fault_hook("write")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        if fault_hook is not None:
            fault_hook("replace")
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def read_checkpoint(path: Union[str, Path]) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Load and verify a snapshot written by :func:`write_checkpoint`.

    Every malformed-archive shape — unreadable zip, missing/unparseable
    header, unsupported version, missing arrays, content-digest mismatch
    — raises :class:`~repro.exceptions.CheckpointError` naming the
    offending field.  Returns ``(header, arrays)`` with arrays fully
    materialized (the archive handle is closed on return).
    """
    path = Path(path)
    try:
        archive_ctx = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise CheckpointError(
            f"{path} is not a readable checkpoint archive: {exc}"
        ) from exc
    with archive_ctx as archive:
        if "header" not in archive.files:
            raise CheckpointError(
                f"{path} is not a training checkpoint", field="header"
            )
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{path} has an unparseable header: {exc}", field="header"
            ) from exc
        if not isinstance(header, dict):
            raise CheckpointError(
                f"{path} header must be a JSON object, got "
                f"{type(header).__name__}", field="header",
            )
        if header.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format "
                f"{header.get('format_version')!r}", field="format_version",
            )
        checksums = header.get("checksums")
        if not isinstance(checksums, dict):
            raise CheckpointError(
                f"{path} header carries no content digests", field="checksums"
            )
        arrays: Dict[str, np.ndarray] = {}
        for key, digest in checksums.items():
            if key not in archive.files:
                raise CheckpointError(
                    f"{path} is missing state array {key!r} named by the "
                    f"header", field=key,
                )
            a = archive[key]
            if array_digest(a) != digest:
                raise CheckpointError(
                    f"{path}: state array {key!r} fails its SHA-256 content "
                    "digest — the snapshot is corrupt; delete it and resume "
                    "from an older one", field="checksum",
                )
            arrays[key] = a
        return header, arrays


def check_header_fields(header: Dict, expected: Dict, *, path) -> None:
    """Raise :class:`CheckpointError` where ``header`` contradicts ``expected``.

    ``expected`` maps field name → the resuming estimator's value; every
    present-but-different field is a typed mismatch (resuming under
    different knobs, or against different data, would not reproduce the
    uninterrupted run).
    """
    for field, want in expected.items():
        have = header.get(field)
        if have != want:
            raise CheckpointError(
                f"{path} was written by a run with {field}={have!r}; the "
                f"resuming estimator has {field}={want!r}", field=field,
            )
