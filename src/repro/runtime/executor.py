"""Supervised parallel ``n_init`` restarts.

The first leg of the ROADMAP's multi-core execution layer: the
``n_init`` restart sweep every estimator runs sequentially today becomes
a supervised pool of independent attempts — and because robustness is
the whole point of supervision, failure handling is built in from day
one rather than bolted on:

* **independent streams** — each restart draws from its own
  :meth:`rng.spawn <numpy.random.Generator.spawn>` child, so restarts
  are order-independent and ``n_jobs=1`` and ``n_jobs=8`` consume
  *identical* randomness (the parallel sweep is bit-identical to the
  serial one by construction);
* **bounded retries** — a restart that dies (any ``Exception``, or a
  :class:`~repro.faults.WorkerKill` escaping ``except Exception``) is
  retried up to ``max_retries`` times on a *fresh* spawned stream
  (spawning reads the seed sequence, not the consumed stream, so retry
  streams are deterministic no matter where the failure struck);
* **per-restart timeouts** — a straggling attempt past ``timeout``
  seconds is abandoned (threads cannot be killed; the stuck worker is
  simply never awaited) and counted as a retryable failure;
* **failure tolerance** — up to ``max_failures`` restarts may fail
  permanently; one more raises a typed
  :class:`~repro.exceptions.RestartFailedError` recording the dead seed
  indices and their final causes;
* **deterministic selection** — the winner is the minimum by
  ``(inertia, seed_index)``, so the chosen model never depends on
  completion order.

Threads, not processes: every training kernel bottoms out in BLAS calls
that release the GIL, and thread workers share ``X`` without pickling.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..exceptions import RestartFailedError, ValidationError

__all__ = [
    "ExecutorConfig",
    "RestartFailure",
    "RestartOutcome",
    "RestartReport",
    "resolve_executor",
    "run_restarts",
]


class ExecutorConfig:
    """Supervision policy for a restart sweep.

    Parameters
    ----------
    n_jobs : int
        Worker threads.  ``1`` still runs through the pool so timeout
        and retry semantics are identical at every width.
    timeout : float, optional
        Per-attempt wall-clock budget in seconds; an attempt past it is
        abandoned and counted as a retryable failure.  ``None`` (default)
        never times out.
    max_retries : int
        Retries per restart after its first attempt, each on a fresh
        spawned stream.  Default 1.
    max_failures : int
        Restarts allowed to fail *permanently* (retries exhausted)
        before the sweep itself fails typed.  Default 0 — any permanent
        failure aborts.
    fault_hook : callable, optional
        ``fault_hook(seed_index, attempt)`` invoked on the worker at the
        top of every attempt — the chaos seam
        (:class:`~repro.faults.RestartFaultPlan`).
    """

    def __init__(
        self,
        n_jobs: int = 1,
        *,
        timeout: Optional[float] = None,
        max_retries: int = 1,
        max_failures: int = 0,
        fault_hook: Optional[Callable[[int, int], None]] = None,
    ):
        n_jobs = int(n_jobs)
        if n_jobs < 1:
            raise ValidationError(f"n_jobs must be >= 1, got {n_jobs}")
        if timeout is not None and float(timeout) <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        if int(max_retries) < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if int(max_failures) < 0:
            raise ValidationError(f"max_failures must be >= 0, got {max_failures}")
        self.n_jobs = n_jobs
        self.timeout = None if timeout is None else float(timeout)
        self.max_retries = int(max_retries)
        self.max_failures = int(max_failures)
        self.fault_hook = fault_hook

    def __repr__(self) -> str:
        return (
            f"ExecutorConfig(n_jobs={self.n_jobs}, timeout={self.timeout}, "
            f"max_retries={self.max_retries}, max_failures={self.max_failures})"
        )


def resolve_executor(value) -> Optional[ExecutorConfig]:
    """Normalize an estimator's ``n_jobs`` knob.

    ``None`` stays ``None`` (the legacy sequential path, bit-compatible
    with every pre-runtime release); an int becomes
    ``ExecutorConfig(n_jobs)``; a config passes through.
    """
    if value is None:
        return None
    if isinstance(value, ExecutorConfig):
        return value
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return ExecutorConfig(int(value))
    raise ValidationError(
        f"n_jobs must be None, an int, or an ExecutorConfig, got {value!r}"
    )


class RestartOutcome:
    """One restart that finished: its score, payload, and how it got there."""

    __slots__ = ("seed_index", "inertia", "payload", "attempts", "elapsed")

    def __init__(self, seed_index, inertia, payload, attempts, elapsed):
        self.seed_index = int(seed_index)
        self.inertia = float(inertia)
        self.payload = payload
        self.attempts = int(attempts)
        self.elapsed = float(elapsed)

    def __repr__(self) -> str:
        return (
            f"RestartOutcome(seed_index={self.seed_index}, "
            f"inertia={self.inertia:.6g}, attempts={self.attempts})"
        )


class RestartFailure:
    """One restart that died permanently: which seed, after how many tries, why."""

    __slots__ = ("seed_index", "attempts", "cause")

    def __init__(self, seed_index, attempts, cause):
        self.seed_index = int(seed_index)
        self.attempts = int(attempts)
        self.cause = cause

    def __repr__(self) -> str:
        return (
            f"RestartFailure(seed_index={self.seed_index}, "
            f"attempts={self.attempts}, cause={self.cause!r})"
        )


class RestartReport:
    """Everything a sweep produced: outcomes, permanent failures, the winner.

    :attr:`interrupted` is set when a ``KeyboardInterrupt`` stopped the
    sweep early — completed outcomes are retained so the caller can keep
    the best model found so far instead of losing the run.
    """

    def __init__(self, n_restarts: int):
        self.n_restarts = int(n_restarts)
        self.outcomes: List[RestartOutcome] = []
        self.failures: List[RestartFailure] = []
        self.interrupted = False

    def best(self) -> RestartOutcome:
        """The winning outcome: minimum ``(inertia, seed_index)``."""
        if not self.outcomes:
            raise RestartFailedError(
                "no restart completed; nothing to select",
                seeds=[f.seed_index for f in self.failures],
                causes=[f.cause for f in self.failures],
            )
        return min(self.outcomes, key=lambda o: (o.inertia, o.seed_index))

    def __repr__(self) -> str:
        return (
            f"RestartReport(n_restarts={self.n_restarts}, "
            f"completed={len(self.outcomes)}, failed={len(self.failures)}, "
            f"interrupted={self.interrupted})"
        )


class _Attempt:
    """Bookkeeping for one in-flight attempt.

    ``started``/``deadline`` are stamped by the *worker* when execution
    actually begins, not at submission: the per-attempt budget covers
    execution time only, so an attempt queued behind a straggler (whose
    abandoned thread still occupies a worker slot) is not charged for the
    wait.  Until the attempt starts, ``deadline`` is ``None`` and cannot
    expire.
    """

    __slots__ = ("seed_index", "attempt", "gen", "timeout", "deadline",
                 "started")

    def __init__(self, seed_index, attempt, gen, timeout):
        self.seed_index = seed_index
        self.attempt = attempt
        self.gen = gen
        self.timeout = timeout
        self.started = None
        self.deadline = None

    def mark_started(self) -> None:
        self.started = time.monotonic()
        if self.timeout is not None:
            self.deadline = self.started + self.timeout


def run_restarts(
    run_one: Callable[[np.random.Generator, int], Tuple[float, object]],
    n_restarts: int,
    rng: np.random.Generator,
    config: Optional[ExecutorConfig] = None,
) -> RestartReport:
    """Run ``n_restarts`` supervised attempts of ``run_one``; return the report.

    ``run_one(gen, seed_index)`` must return ``(inertia, payload)`` and
    draw all randomness from ``gen``.  Restart ``i`` runs on
    ``rng.spawn(n_restarts)[i]``; a retry runs on the failed stream's
    own spawned child — both deterministic functions of ``rng`` alone,
    so the sweep's result is independent of ``n_jobs`` and completion
    order.  Raises :class:`~repro.exceptions.RestartFailedError` when
    permanent failures exceed ``config.max_failures``.

    On ``KeyboardInterrupt`` the sweep stops scheduling, cancels pending
    work, and returns the report with ``interrupted=True`` and every
    already-completed outcome intact (abandoned worker threads are left
    to finish on their own — threads cannot be killed).
    """
    if config is None:
        config = ExecutorConfig()
    n_restarts = int(n_restarts)
    if n_restarts < 1:
        raise ValidationError(f"n_restarts must be >= 1, got {n_restarts}")
    report = RestartReport(n_restarts)
    streams = rng.spawn(n_restarts)

    def _attempt_body(info: _Attempt):
        info.mark_started()
        if config.fault_hook is not None:
            config.fault_hook(info.seed_index, info.attempt)
        return run_one(info.gen, info.seed_index)

    pool = ThreadPoolExecutor(
        max_workers=config.n_jobs, thread_name_prefix="repro-restart"
    )
    pending = {}  # future -> _Attempt
    abandoned = set()  # timed-out futures we no longer await
    interrupted = False
    try:
        queue = list(range(n_restarts))

        def _launch(seed_index, attempt, gen):
            info = _Attempt(seed_index, attempt, gen, config.timeout)
            pending[pool.submit(_attempt_body, info)] = info

        while queue and len(pending) < config.n_jobs:
            i = queue.pop(0)
            _launch(i, 0, streams[i])

        while pending:
            if config.timeout is None:
                poll = None
            else:
                now = time.monotonic()
                deadlines = [
                    info.deadline for info in pending.values()
                    if info.deadline is not None
                ]
                # No attempt running yet (all queued behind busy workers):
                # poll briefly so freshly-started attempts pick up a real
                # deadline on the next pass.
                poll = (
                    max(0.001, min(deadlines) - now) if deadlines else 0.05
                )
            done, _ = wait(list(pending), timeout=poll,
                           return_when=FIRST_COMPLETED)

            # Expired deadlines: abandon the stuck future (it keeps its
            # worker thread until it returns on its own) and treat the
            # attempt as a retryable failure.
            now = time.monotonic()
            expired = [
                f for f, info in pending.items()
                if f not in done
                and info.deadline is not None and now >= info.deadline
            ]
            results = []
            for f in done:
                info = pending.pop(f)
                try:
                    results.append((info, f.result(), None))
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:  # includes WorkerKill
                    results.append((info, None, exc))
            for f in expired:
                info = pending.pop(f)
                abandoned.add(f)
                results.append((
                    info, None,
                    TimeoutError(
                        f"restart {info.seed_index} attempt {info.attempt} "
                        f"exceeded its {config.timeout:g}s budget"
                    ),
                ))

            # Deterministic handling order regardless of completion order.
            results.sort(key=lambda r: (r[0].seed_index, r[0].attempt))
            for info, value, exc in results:
                if exc is None:
                    inertia, payload = value
                    report.outcomes.append(RestartOutcome(
                        info.seed_index, inertia, payload,
                        info.attempt + 1, time.monotonic() - info.started,
                    ))
                elif info.attempt < config.max_retries:
                    _launch(info.seed_index, info.attempt + 1,
                            info.gen.spawn(1)[0])
                else:
                    report.failures.append(RestartFailure(
                        info.seed_index, info.attempt + 1, exc))

            while queue and len(pending) < config.n_jobs:
                i = queue.pop(0)
                _launch(i, 0, streams[i])
    except KeyboardInterrupt:
        interrupted = True
        for f in pending:
            f.cancel()
        # Harvest any attempt that finished before the interrupt landed.
        for f, info in pending.items():
            if f.done() and not f.cancelled():
                try:
                    inertia, payload = f.result()
                except BaseException:
                    continue
                report.outcomes.append(RestartOutcome(
                    info.seed_index, inertia, payload,
                    info.attempt + 1, time.monotonic() - info.started,
                ))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    report.interrupted = interrupted
    report.outcomes.sort(key=lambda o: o.seed_index)
    report.failures.sort(key=lambda f: f.seed_index)
    if not interrupted and len(report.failures) > config.max_failures:
        raise RestartFailedError(
            f"{len(report.failures)} of {n_restarts} restarts failed "
            f"permanently (tolerance max_failures={config.max_failures}); "
            f"dead seed indices: "
            f"{[f.seed_index for f in report.failures]}",
            seeds=[f.seed_index for f in report.failures],
            causes=[f.cause for f in report.failures],
        )
    if not interrupted and not report.outcomes:
        raise RestartFailedError(
            "no restart completed",
            seeds=[f.seed_index for f in report.failures],
            causes=[f.cause for f in report.failures],
        )
    return report
