"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish configuration problems from numerical
ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input (array, parameter, configuration) failed validation."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before calling ``fit``."""


class ConvergenceWarning(UserWarning):
    """An iterative procedure stopped before reaching its tolerance."""


class DtypeFallbackWarning(UserWarning):
    """A requested working dtype is not supported by the selected aggregator.

    Raised as a *warning*, not an error: the estimator falls back to
    ``float64`` (always supported) so the fit still runs, but the caller is
    told loudly that the serving-shaped configuration they asked for is not
    what executed.
    """


class DatasetError(ReproError, KeyError):
    """A dataset name was not found in the registry or is misconfigured."""
