"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish configuration problems from numerical
ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input (array, parameter, configuration) failed validation."""


class SummaryFormatError(ValidationError):
    """A serialized :class:`~repro.summary.DataSummary` archive is malformed.

    Raised by :meth:`DataSummary.load` when an ``.npz`` file is truncated,
    is missing required keys, stores a protocentroid set with the wrong
    dtype or shape, or carries a header that contradicts the stored arrays.
    The :attr:`field` attribute names the offending archive field so a
    serving operator can tell *which* part of the artifact is broken, not
    just that loading failed.  Subclasses :class:`ValidationError` so
    pre-existing ``except ValidationError`` call sites keep working.
    """

    def __init__(self, message: str, *, field: str = None):
        if field is not None:
            message = f"{message} (field: {field!r})"
        super().__init__(message)
        self.field = field


class CheckpointError(ValidationError):
    """A training checkpoint is malformed or inconsistent with the run.

    Raised by :mod:`repro.runtime.checkpoint` when a snapshot archive is
    truncated, fails its content digest, or records a configuration or
    dataset fingerprint that contradicts the resuming estimator — resuming
    from it would *not* reproduce the uninterrupted run, so the mismatch is
    a typed error naming the offending :attr:`field`, never a silently
    different model.  Subclasses :class:`ValidationError` so blanket
    ``except ValidationError`` call sites keep working.
    """

    def __init__(self, message: str, *, field: str = None):
        if field is not None:
            message = f"{message} (field: {field!r})"
        super().__init__(message)
        self.field = field


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before calling ``fit``."""


class RestartFailedError(ReproError, RuntimeError):
    """Too many ``n_init`` restarts died for the sweep to stand.

    The restart executor (:mod:`repro.runtime.executor`) tolerates up to
    ``max_failures`` restarts failing permanently (each after its bounded
    retries); one failure beyond that raises this error.  :attr:`seeds`
    records which restart seed indices died and :attr:`causes` the final
    exception of each, so an operator can tell *which* streams are
    poisoned rather than just that the sweep aborted.
    """

    def __init__(self, message: str, *, seeds=(), causes=()):
        super().__init__(message)
        self.seeds = tuple(seeds)
        self.causes = tuple(causes)


class QuorumError(ReproError, RuntimeError):
    """A federated round fell below its ``min_clients`` participation quorum.

    Raised by the federated ``fit`` loops when the round's participation
    policy leaves fewer than ``min_clients`` survivors: aggregating over
    too few shards would silently bias the global model, so the round
    fails typed instead.  :attr:`round_index`, :attr:`participating` and
    :attr:`required` carry the numbers.
    """

    def __init__(self, message: str, *, round_index: int = 0,
                 participating: int = 0, required: int = 0):
        super().__init__(message)
        self.round_index = int(round_index)
        self.participating = int(participating)
        self.required = int(required)


class MonitoringError(ReproError):
    """Base class for errors raised by the :mod:`repro.monitoring` subsystem."""


class GoldenMismatchError(MonitoringError):
    """A golden drift scenario replayed with a behavioral delta.

    Raised by the golden-dataset regression harness
    (:mod:`repro.monitoring.evaluation`) when replaying a committed
    scenario produces an alert/action timeline, reassignment-fraction log
    or final model state that differs from the pinned expectation —
    monitoring behavior changed, which is exactly what the harness exists
    to catch.  :attr:`mismatches` carries one human-readable line per
    divergence (first divergence per scenario section).
    """

    def __init__(self, message: str, *, mismatches=()):
        super().__init__(message)
        self.mismatches = tuple(mismatches)


class ConvergenceWarning(UserWarning):
    """An iterative procedure stopped before reaching its tolerance."""


class DtypeFallbackWarning(UserWarning):
    """A requested working dtype is not supported by the selected aggregator.

    Raised as a *warning*, not an error: the estimator falls back to
    ``float64`` (always supported) so the fit still runs, but the caller is
    told loudly that the serving-shaped configuration they asked for is not
    what executed.
    """


class DatasetError(ReproError, KeyError):
    """A dataset name was not found in the registry or is misconfigured."""


class ServingError(ReproError):
    """Base class for errors raised by the :mod:`repro.serving` subsystem.

    The HTTP front end maps each concrete subclass to a status code
    (:data:`repro.serving.http.STATUS_BY_EXCEPTION`); anything outside this
    hierarchy — and outside :class:`ValidationError` — surfaces as a 500.
    """


class ModelNotFoundError(ServingError, KeyError):
    """A model name was not found in the serving registry.

    Mapped to HTTP 404 by the serving front end.  Subclasses ``KeyError``
    because the registry is dict-shaped.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return self.args[0] if self.args else ""


class RateLimitError(ServingError):
    """The server's token-bucket rate limiter rejected a request.

    Mapped to HTTP 429 with a ``Retry-After`` hint by the serving front
    end.  :attr:`retry_after` is the bucket's estimate, in seconds, of when
    capacity frees up.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class BatcherStoppedError(ServingError, RuntimeError):
    """A request was submitted to (or stranded in) a stopped micro-batcher."""


class DeadlineExceededError(ServingError, TimeoutError):
    """A request's deadline (or its caller's wait budget) expired.

    Raised by :meth:`Ticket.result <repro.serving.batcher.Ticket.result>`
    when the wait times out or the ticket's deadline passes, and attached
    to tickets the batcher sheds at coalesce time because their deadline
    already expired (running the kernel would produce a result nobody is
    waiting for).  Mapped to HTTP 504 by the serving front end — a typed,
    retriable signal instead of a masked 500.
    """


class RetriableServingError(ServingError):
    """A request the server refused *now* but will likely accept later.

    Carries :attr:`retry_after`, the server's estimate in seconds of when
    retrying is worthwhile; the HTTP front end forwards it as a
    ``Retry-After`` header alongside the 503.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class OverloadedError(RetriableServingError):
    """Backpressure: a queue-depth or pending-rows cap rejected a request.

    Raised at submit time when a batch key's queue is at
    ``max_queue_requests`` or the batcher-wide pending-row total is at
    ``max_pending_rows`` — shedding load instead of growing queues (and
    memory) without bound.  Mapped to HTTP 503 with ``Retry-After``.
    """


class CircuitOpenError(RetriableServingError):
    """A ``(model, op)`` circuit breaker is open; the request fast-failed.

    After ``failure_threshold`` consecutive kernel failures the breaker
    opens and requests for that key are rejected *before* queuing, so a
    poisoned model cannot monopolize the worker thread while healthy
    models keep serving.  Mapped to HTTP 503 with ``Retry-After`` (the
    time until the breaker admits a half-open probe).
    """


class WorkerCrashedError(ServingError, RuntimeError):
    """The batcher worker died (or hung) while this request was in flight.

    The watchdog fails stranded in-flight tickets with this error when it
    detects a dead or hung worker, then restarts the worker — the request
    itself is safe to retry.  Mapped to HTTP 503.
    """
