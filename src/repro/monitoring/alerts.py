"""Typed alert and action records for the streaming drift monitor.

Everything the monitoring layer emits is a frozen dataclass with a
lossless ``to_dict``/``from_dict`` round trip: the golden-dataset
regression harness (:mod:`repro.monitoring.evaluation`) pins timelines of
these records in committed scenario files and fails on any delta, so the
records must serialize deterministically and compare field by field.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError

__all__ = [
    "ALERT_KINDS",
    "SEVERITIES",
    "DriftAlert",
    "PolicyAction",
    "severity_at_least",
]

#: the drift statistics the engine watches, in emission order per step
ALERT_KINDS = (
    "inertia_regression",
    "reassignment_surge",
    "protocentroid_drift",
)

#: escalation ladder, least to most severe
SEVERITIES = ("info", "warning", "critical")


def severity_at_least(severity: str, floor: str) -> bool:
    """True when ``severity`` ranks at or above ``floor`` on the ladder."""
    for name in (severity, floor):
        if name not in SEVERITIES:
            raise ValidationError(
                f"severity must be one of {SEVERITIES}, got {name!r}"
            )
    return SEVERITIES.index(severity) >= SEVERITIES.index(floor)


@dataclass(frozen=True)
class DriftAlert:
    """One threshold crossing observed by the :class:`~repro.monitoring.DriftEngine`.

    ``value`` is the offending statistic, ``baseline`` the engine's
    exponentially-weighted reference at decision time, and ``threshold``
    the *effective* trigger level the value exceeded — so an alert record
    alone explains why it fired.
    """

    kind: str
    severity: str
    step: int
    value: float
    baseline: float
    threshold: float
    message: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "step": self.step,
            "value": self.value,
            "baseline": self.baseline,
            "threshold": self.threshold,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, fields: dict) -> "DriftAlert":
        return cls(
            kind=str(fields["kind"]),
            severity=str(fields["severity"]),
            step=int(fields["step"]),
            value=float(fields["value"]),
            baseline=float(fields["baseline"]),
            threshold=float(fields["threshold"]),
            message=str(fields["message"]),
        )


@dataclass(frozen=True)
class PolicyAction:
    """One intervention a drift policy took on the monitored model."""

    kind: str  # "refine" | "refit"
    step: int
    reason: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "step": self.step, "reason": self.reason}

    @classmethod
    def from_dict(cls, fields: dict) -> "PolicyAction":
        return cls(
            kind=str(fields["kind"]),
            step=int(fields["step"]),
            reason=str(fields["reason"]),
        )
