"""The continuous monitoring pipeline: estimator + engine + policy.

:class:`MonitoredStream` is the operational wrapper a production stream
runs through: every :meth:`~MonitoredStream.process` call advances the
model one ``partial_fit`` step (with or without point identities), feeds
the published :class:`~repro.core.minibatch.BatchStats` snapshot to the
:class:`~repro.monitoring.DriftEngine`, lets the policy intervene, and
appends everything to one ordered timeline — the artifact the
golden-dataset regression harness pins.

The whole pipeline checkpoints into a single atomic archive
(:meth:`MonitoredStream.save` / :meth:`MonitoredStream.load`): the
estimator's stream state rides in the array payload, the engine/policy
state and the timeline ride in the JSON header, and a stream interrupted
and resumed mid-sequence is bit-identical to the uninterrupted one —
bounds decisions and monitor state included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..exceptions import MonitoringError
from ..runtime.checkpoint import read_checkpoint
from .alerts import DriftAlert, PolicyAction
from .engine import DriftEngine
from .policies import DriftPolicy, resolve_policy

__all__ = ["MonitoredStream", "StreamReport"]


@dataclass(frozen=True)
class StreamReport:
    """What one :meth:`MonitoredStream.process` call observed and did."""

    step: int
    stats: object  # BatchStats
    alerts: Tuple[DriftAlert, ...]
    action: Optional[PolicyAction]

    @property
    def triggered(self) -> bool:
        return self.action is not None


class MonitoredStream:
    """Drive a streaming estimator under drift monitoring.

    Parameters
    ----------
    model : MiniBatchKhatriRaoKMeans
        The streaming estimator (anything exposing ``partial_fit`` with
        the ``index`` protocol and a ``last_batch_stats_`` snapshot).
    engine : DriftEngine, optional
        Defaults to a fresh engine with default thresholds.
    policy : str, dict or DriftPolicy
        Policy spec, resolved through
        :func:`~repro.monitoring.policies.resolve_policy`
        (default ``"alert_only"``).
    """

    def __init__(self, model, *, engine: Optional[DriftEngine] = None,
                 policy="alert_only") -> None:
        self.model = model
        self.engine = engine if engine is not None else DriftEngine()
        self.policy: DriftPolicy = resolve_policy(policy)
        self.reports: List[StreamReport] = []
        self._timeline: List[dict] = []

    def process(self, batch, sample_weight=None, index=None) -> StreamReport:
        """One monitored stream step; returns the step's report."""
        self.model.partial_fit(batch, sample_weight=sample_weight, index=index)
        stats = self.model.last_batch_stats_
        alerts = self.engine.observe(stats)
        for alert in alerts:
            self._timeline.append({"event": "alert", **alert.to_dict()})
        action = self.policy.consider(
            self.model, batch, sample_weight, stats, alerts
        )
        if action is not None:
            if action.kind == "refit":
                # The baselines described a model that no longer exists.
                self.engine.reset()
            self._timeline.append({"event": "action", **action.to_dict()})
        report = StreamReport(
            step=stats.step, stats=stats, alerts=tuple(alerts), action=action
        )
        self.reports.append(report)
        return report

    def timeline(self) -> List[dict]:
        """The ordered alert/action timeline (copies, JSON-able)."""
        return [dict(entry) for entry in self._timeline]

    # --------------------------------------------------------- checkpointing
    def save(self, path):
        """Snapshot the whole pipeline atomically to ``path``.

        One archive: the estimator's stream checkpoint with the monitor
        state (engine, policy, timeline) riding in the header.  Returns
        the written path.
        """
        return self.model.save_stream(path, extra_header={
            "monitor": {
                "engine": self.engine.state_dict(),
                "policy": self.policy.state_dict(),
                "timeline": self.timeline(),
            },
        })

    def load(self, path) -> "MonitoredStream":
        """Restore a :meth:`save` snapshot into this pipeline.

        The model, engine and policy must be configured identically to
        the writer (each verifies its own fingerprint); continuing the
        batch sequence is then bit-identical to never having stopped.
        """
        self.model.load_stream(path)
        header, _ = read_checkpoint(path)
        monitor = header.get("monitor")
        if monitor is None:
            raise MonitoringError(
                f"{path} is a stream checkpoint without monitor state; "
                "it was not written by MonitoredStream.save"
            )
        self.engine.restore(monitor["engine"])
        self.policy.restore(monitor["policy"])
        self._timeline = [dict(entry) for entry in monitor["timeline"]]
        self.reports = []
        return self
