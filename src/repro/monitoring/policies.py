"""Drift policies: what a monitored stream *does* about alerts.

A policy inspects each step's alerts and, with deterministic seeded
behavior, optionally intervenes on the model:

* :class:`AlertOnlyPolicy` (``"alert_only"``) — record and never touch
  the model; the default, and the only policy golden scenarios need to
  characterize the engine in isolation;
* :class:`TriggerRefinePolicy` (``"trigger_refine"``) — push the model
  toward the new distribution by replaying the triggering batch through
  extra ``partial_fit`` steps (anonymous, so they fully re-score and
  advance the identity stream's drift tables);
* :class:`TriggerRefitPolicy` (``"trigger_refit"``) — give up on the
  current summary: re-seed the protocentroids from the triggering batch
  via :meth:`~repro.core.minibatch.MiniBatchKhatriRaoKMeans.reinitialize`
  with an rng derived from ``(seed, step)``, so the refit is a pure
  function of the stream.  The pipeline resets the engine's baselines
  after a refit.

Triggering is uniform across policies: any alert at or above
``min_severity``, outside the ``cooldown`` window since the last
intervention.  All policies expose ``state_dict``/``restore`` so a
checkpointed stream resumes with its cooldown intact.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import MonitoringError, ValidationError
from .alerts import DriftAlert, PolicyAction, severity_at_least

__all__ = [
    "POLICY_NAMES",
    "AlertOnlyPolicy",
    "DriftPolicy",
    "TriggerRefinePolicy",
    "TriggerRefitPolicy",
    "resolve_policy",
]


class DriftPolicy:
    """Base class: trigger bookkeeping shared by every policy.

    Subclasses implement :meth:`_act`; ``consider`` decides *whether* to
    act (severity floor + cooldown) and records the trigger step.
    """

    name = "base"

    def __init__(self, *, min_severity: str = "critical", cooldown: int = 10):
        severity_at_least(min_severity, "info")  # validates the name
        if cooldown < 0:
            raise ValidationError(f"cooldown must be >= 0, got {cooldown}")
        self.min_severity = min_severity
        self.cooldown = int(cooldown)
        self.last_trigger_step: Optional[int] = None

    def consider(
        self, model, batch, sample_weight, stats, alerts: List[DriftAlert]
    ) -> Optional[PolicyAction]:
        """Apply the policy for one step; returns the action taken, if any."""
        triggers = [
            alert for alert in alerts
            if severity_at_least(alert.severity, self.min_severity)
        ]
        if not triggers:
            return None
        if (
            self.last_trigger_step is not None
            and stats.step - self.last_trigger_step < self.cooldown
        ):
            return None
        action = self._act(model, batch, sample_weight, stats, triggers)
        if action is not None:
            self.last_trigger_step = int(stats.step)
        return action

    def _act(self, model, batch, sample_weight, stats, triggers):
        return None

    # ----------------------------------------------------------- lifecycle
    def config(self) -> dict:
        """Constructor parameters plus the registry name, JSON-able."""
        return {
            "name": self.name,
            "min_severity": self.min_severity,
            "cooldown": self.cooldown,
        }

    def state_dict(self) -> dict:
        return {
            "config": self.config(),
            "last_trigger_step": self.last_trigger_step,
        }

    def restore(self, state: dict) -> "DriftPolicy":
        if state.get("config") != self.config():
            raise MonitoringError(
                "policy state was written under a different configuration: "
                f"{state.get('config')!r} != {self.config()!r}"
            )
        step = state["last_trigger_step"]
        self.last_trigger_step = None if step is None else int(step)
        return self


class AlertOnlyPolicy(DriftPolicy):
    """Record alerts; never touch the model."""

    name = "alert_only"

    def consider(self, model, batch, sample_weight, stats, alerts):
        return None


class TriggerRefinePolicy(DriftPolicy):
    """Replay the triggering batch through extra ``partial_fit`` steps.

    The extra steps run anonymously (full re-score) with the step's own
    sample weights, so they are deterministic, respect the weighted
    schedule, and keep any point-identity bounds valid by advancing the
    drift tables like every other update.
    """

    name = "trigger_refine"

    def __init__(self, *, min_severity="critical", cooldown=10,
                 refine_steps: int = 2):
        super().__init__(min_severity=min_severity, cooldown=cooldown)
        if refine_steps < 1:
            raise ValidationError(
                f"refine_steps must be >= 1, got {refine_steps}"
            )
        self.refine_steps = int(refine_steps)

    def config(self) -> dict:
        config = super().config()
        config["refine_steps"] = self.refine_steps
        return config

    def _act(self, model, batch, sample_weight, stats, triggers):
        for _ in range(self.refine_steps):
            model.partial_fit(batch, sample_weight=sample_weight)
        return PolicyAction(
            kind="refine", step=int(stats.step),
            reason=_trigger_reason(triggers, self.refine_steps, "refine"),
        )


class TriggerRefitPolicy(DriftPolicy):
    """Re-seed the model from the triggering batch (seeded, deterministic).

    The refit rng is ``default_rng([seed, step])``: a pure function of
    the policy seed and the stream position, so replays are bit-identical
    and two refits in one stream use distinct, reproducible draws.
    """

    name = "trigger_refit"

    def __init__(self, *, min_severity="critical", cooldown=10,
                 seed: int = 0):
        super().__init__(min_severity=min_severity, cooldown=cooldown)
        self.seed = int(seed)

    def config(self) -> dict:
        config = super().config()
        config["seed"] = self.seed
        return config

    def _act(self, model, batch, sample_weight, stats, triggers):
        rng = np.random.default_rng([self.seed, int(stats.step)])
        model.reinitialize(batch, random_state=rng)
        return PolicyAction(
            kind="refit", step=int(stats.step),
            reason=_trigger_reason(triggers, 1, "refit"),
        )


def _trigger_reason(triggers: List[DriftAlert], count: int, verb: str) -> str:
    kinds = ",".join(alert.kind for alert in triggers)
    return f"{verb} x{count} on {len(triggers)} alert(s): {kinds}"


_POLICIES = {
    policy.name: policy
    for policy in (AlertOnlyPolicy, TriggerRefinePolicy, TriggerRefitPolicy)
}

#: valid policy names, in registry order
POLICY_NAMES = tuple(_POLICIES)


def resolve_policy(policy, **params) -> DriftPolicy:
    """Turn a policy spec into an instance.

    Accepts a :class:`DriftPolicy` instance (passed through; ``params``
    must then be empty), a registry name with keyword parameters, or a
    config dict as produced by :meth:`DriftPolicy.config`.
    """
    if isinstance(policy, DriftPolicy):
        if params:
            raise ValidationError(
                "cannot pass parameters alongside a policy instance"
            )
        return policy
    if isinstance(policy, dict):
        if params:
            raise ValidationError(
                "cannot pass parameters alongside a policy config dict"
            )
        params = {k: v for k, v in policy.items() if k != "name"}
        policy = policy.get("name")
    if policy not in _POLICIES:
        raise ValidationError(
            f"policy must be one of {POLICY_NAMES} (or a DriftPolicy), "
            f"got {policy!r}"
        )
    return _POLICIES[policy](**params)
