"""Golden-dataset regression harness for the drift monitor.

A *golden scenario* is one committed ``.npz`` archive holding a complete
monitored-stream experiment: the raw batch stream (data, batch offsets,
optional point identities and sample weights), the full model / engine /
policy configuration, and the **pinned expectation** — the alert/action
timeline, the reassignment-fraction log, the step count and the final
protocentroids the stream produced when the scenario was recorded.

:func:`run_suite` replays every scenario from scratch and compares
**exactly** (timelines field by field, floats bit for bit, protocentroid
arrays byte for byte): the whole pipeline is deterministic by contract,
so *any* delta means monitoring behavior changed, and the harness fails
with a typed :class:`~repro.exceptions.GoldenMismatchError` naming the
first divergence per section.  CI runs it as its own hard-timeout step
(``repro.cli monitor``) and uploads the JSON report as an artifact.

Scenario archives are written by :func:`record_scenario` through the
checkpoint writer, so they carry per-array SHA-256 digests and are
verified on load; ``tests/goldens/make_goldens.py`` is the committed
generator that (re)builds every shipped scenario deterministically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import MiniBatchKhatriRaoKMeans
from ..exceptions import GoldenMismatchError, ValidationError
from ..runtime.checkpoint import read_checkpoint, write_checkpoint
from .engine import DriftEngine
from .pipeline import MonitoredStream
from .policies import resolve_policy

__all__ = [
    "Scenario",
    "load_scenario",
    "record_scenario",
    "replay_scenario",
    "run_scenario",
    "run_suite",
]

_SCENARIO_KIND = "monitoring-golden-scenario"


@dataclass(frozen=True)
class Scenario:
    """One loaded golden scenario: inputs, configuration, expectation."""

    name: str
    description: str
    model_config: dict
    engine_config: dict
    policy_config: dict
    X: np.ndarray
    offsets: np.ndarray
    index: Optional[np.ndarray]
    weights: Optional[np.ndarray]
    expected: dict  # timeline, fractions (or None), n_steps
    expected_thetas: Tuple[np.ndarray, ...]

    @property
    def n_batches(self) -> int:
        return self.offsets.size - 1

    def batches(self):
        """Yield ``(batch, weights, index)`` triples in stream order."""
        for i in range(self.n_batches):
            lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
            yield (
                self.X[lo:hi],
                None if self.weights is None else self.weights[lo:hi],
                None if self.index is None else self.index[lo:hi],
            )


def _build_stream(scenario: Scenario) -> MonitoredStream:
    config = dict(scenario.model_config)
    cardinalities = config.pop("cardinalities")
    model = MiniBatchKhatriRaoKMeans(cardinalities, **config)
    engine = DriftEngine(**scenario.engine_config)
    policy = resolve_policy(dict(scenario.policy_config))
    return MonitoredStream(model, engine=engine, policy=policy)


def replay_scenario(scenario: Scenario) -> MonitoredStream:
    """Re-run the scenario's batch stream from scratch; returns the pipeline."""
    stream = _build_stream(scenario)
    for batch, weights, index in scenario.batches():
        stream.process(batch, sample_weight=weights, index=index)
    return stream


# -------------------------------------------------------------- comparison
def _first_delta(section: str, expected, actual) -> List[str]:
    """Exact comparison of two JSON-able values; at most one message."""
    if expected == actual:
        return []
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [
                f"{section}: length {len(actual)} != expected {len(expected)}"
            ]
        for i, (want, have) in enumerate(zip(expected, actual)):
            if want != have:
                return [
                    f"{section}[{i}]: {_summarize(have)} != expected "
                    f"{_summarize(want)}"
                ]
    return [f"{section}: {_summarize(actual)} != expected {_summarize(expected)}"]


def _summarize(value) -> str:
    text = repr(value)
    return text if len(text) <= 200 else text[:197] + "..."


def compare_scenario(scenario: Scenario, stream: MonitoredStream) -> List[str]:
    """Every divergence between the replay and the pinned expectation.

    Exact everywhere: timelines compare field by field (floats bit for
    bit through their JSON round trip), the fraction log elementwise, the
    final protocentroids byte for byte per set.  Empty list == pass.
    """
    mismatches: List[str] = []
    mismatches += _first_delta(
        "timeline", scenario.expected["timeline"], stream.timeline()
    )
    fractions = stream.model.reassignment_fractions_
    mismatches += _first_delta(
        "fractions", scenario.expected["fractions"],
        None if fractions is None else [float(f) for f in fractions],
    )
    mismatches += _first_delta(
        "n_steps", scenario.expected["n_steps"], int(stream.model.n_steps_)
    )
    for q, want in enumerate(scenario.expected_thetas):
        have = stream.model.protocentroids_[q]
        if have.dtype != want.dtype or have.shape != want.shape:
            mismatches.append(
                f"theta_{q}: dtype/shape {have.dtype}{have.shape} != "
                f"expected {want.dtype}{want.shape}"
            )
        elif have.tobytes() != want.tobytes():
            delta = np.max(np.abs(
                have.astype(np.float64) - want.astype(np.float64)
            ))
            mismatches.append(
                f"theta_{q}: protocentroids differ from the recorded stream "
                f"(max |delta| = {delta:.3e})"
            )
    return mismatches


# -------------------------------------------------------------- file format
def record_scenario(
    path,
    *,
    name: str,
    description: str,
    model_config: dict,
    engine_config: dict,
    policy_config: dict,
    X: np.ndarray,
    offsets,
    index=None,
    weights=None,
) -> Path:
    """Replay the stream once and pin its behavior into a scenario archive.

    This is how goldens are (re)generated — deliberately the same replay
    path :func:`run_scenario` uses, so a recorded scenario passes its own
    regression check by construction.  Returns the written path.
    """
    X = np.ascontiguousarray(X)
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 2 or offsets[0] != 0 \
            or offsets[-1] != X.shape[0] or np.any(np.diff(offsets) <= 0):
        raise ValidationError(
            "offsets must be a 1-D cumulative batch boundary array "
            f"starting at 0 and ending at {X.shape[0]}, got {offsets!r}"
        )
    scenario = Scenario(
        name=name, description=description,
        model_config=dict(model_config), engine_config=dict(engine_config),
        policy_config=dict(policy_config),
        X=X, offsets=offsets,
        index=None if index is None else np.ascontiguousarray(
            index, dtype=np.int64
        ),
        weights=None if weights is None else np.ascontiguousarray(weights),
        expected={}, expected_thetas=(),
    )
    stream = replay_scenario(scenario)
    fractions = stream.model.reassignment_fractions_
    header = {
        "kind": _SCENARIO_KIND,
        "name": name,
        "description": description,
        "model": scenario.model_config,
        "engine": scenario.engine_config,
        "policy": scenario.policy_config,
        "has_index": scenario.index is not None,
        "has_weights": scenario.weights is not None,
        "expected": {
            "timeline": stream.timeline(),
            "fractions": (
                None if fractions is None else [float(f) for f in fractions]
            ),
            "n_steps": int(stream.model.n_steps_),
        },
    }
    arrays = {"X": X, "offsets": offsets}
    if scenario.index is not None:
        arrays["index"] = scenario.index
    if scenario.weights is not None:
        arrays["weights"] = scenario.weights
    for q, theta in enumerate(stream.model.protocentroids_):
        arrays[f"expected_theta_{q}"] = theta
    return write_checkpoint(path, header, arrays)


def load_scenario(path) -> Scenario:
    """Load and digest-verify one scenario archive."""
    header, arrays = read_checkpoint(path)
    if header.get("kind") != _SCENARIO_KIND:
        raise GoldenMismatchError(
            f"{path} is not a monitoring golden scenario "
            f"(kind={header.get('kind')!r})"
        )
    n_sets = len(header["model"]["cardinalities"])
    return Scenario(
        name=str(header["name"]),
        description=str(header.get("description", "")),
        model_config=dict(header["model"]),
        engine_config=dict(header["engine"]),
        policy_config=dict(header["policy"]),
        X=arrays["X"],
        offsets=np.ascontiguousarray(arrays["offsets"], dtype=np.int64),
        index=arrays["index"] if header.get("has_index") else None,
        weights=arrays["weights"] if header.get("has_weights") else None,
        expected=dict(header["expected"]),
        expected_thetas=tuple(
            arrays[f"expected_theta_{q}"] for q in range(n_sets)
        ),
    )


# ---------------------------------------------------------------- the runner
def run_scenario(path) -> Dict:
    """Replay one scenario file; returns its report entry (never raises
    on mismatch — :func:`run_suite` aggregates and raises)."""
    scenario = load_scenario(path)
    stream = replay_scenario(scenario)
    mismatches = compare_scenario(scenario, stream)
    return {
        "scenario": scenario.name,
        "path": str(path),
        "n_batches": scenario.n_batches,
        "n_alerts": len(stream.engine.alerts),
        "n_actions": sum(
            1 for entry in stream.timeline() if entry["event"] == "action"
        ),
        "status": "pass" if not mismatches else "fail",
        "mismatches": mismatches,
    }


def run_suite(goldens, *, report_path=None) -> Dict:
    """Replay every ``*.npz`` scenario under ``goldens`` (a directory or an
    explicit list of paths), write the JSON report, and fail typed.

    Returns the report dict ``{"status", "scenarios": [...]}`` on a clean
    pass; raises :class:`~repro.exceptions.GoldenMismatchError` carrying
    every divergence when any scenario fails (the report is still written
    first, so CI uploads it either way).
    """
    if isinstance(goldens, (str, Path)):
        paths = sorted(Path(goldens).glob("*.npz"))
        if not paths:
            raise ValidationError(
                f"no golden scenarios (*.npz) found under {goldens}"
            )
    else:
        paths = [Path(p) for p in goldens]
    scenarios = [run_scenario(path) for path in paths]
    failed = [entry for entry in scenarios if entry["status"] == "fail"]
    report = {
        "status": "fail" if failed else "pass",
        "n_scenarios": len(scenarios),
        "n_failed": len(failed),
        "scenarios": scenarios,
    }
    if report_path is not None:
        report_path = Path(report_path)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(report, indent=2) + "\n")
    if failed:
        mismatches = [
            f"{entry['scenario']}: {line}"
            for entry in failed for line in entry["mismatches"]
        ]
        raise GoldenMismatchError(
            f"{len(failed)}/{len(scenarios)} golden scenario(s) replayed "
            "with behavioral deltas:\n  " + "\n  ".join(mismatches),
            mismatches=mismatches,
        )
    return report


def main(argv=None) -> int:
    """``python -m repro.monitoring.evaluation`` — the CI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.monitoring.evaluation",
        description="Replay committed golden drift scenarios and fail on "
        "any behavioral delta.",
    )
    parser.add_argument(
        "--goldens", default="tests/goldens",
        help="directory of scenario .npz files (default: tests/goldens)",
    )
    parser.add_argument(
        "--report", default=None,
        help="write the JSON alert-timeline report to this path",
    )
    args = parser.parse_args(argv)
    try:
        report = run_suite(args.goldens, report_path=args.report)
    except GoldenMismatchError as exc:
        print(exc)
        return 1
    for entry in report["scenarios"]:
        print(
            f"PASS {entry['scenario']}: {entry['n_batches']} batches, "
            f"{entry['n_alerts']} alerts, {entry['n_actions']} actions"
        )
    print(f"{report['n_scenarios']} golden scenario(s) replayed exactly")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    raise SystemExit(main())
