"""The drift-detection engine: typed alerts over per-batch statistics.

:class:`DriftEngine` consumes the read-only
:class:`~repro.core.minibatch.BatchStats` snapshots a streaming estimator
publishes after every ``partial_fit`` step and watches three signals:

* **inertia trajectory** — the scale-free per-point batch inertia
  (``mean_inertia``) against an exponentially-weighted baseline; a
  sustained distribution shift inflates it long before accuracy metrics
  exist;
* **reassignment fraction** — the share of the batch the bounds-pruned
  assignment had to re-score exactly (PR 3's per-step signal): on a
  stationary identified stream it decays with the learning rate, so a
  surge back toward 1.0 means points stopped looking like their cached
  labels;
* **protocentroid drift norms** — the per-set ``‖Δθ_q[j]‖`` tables from
  the factored-drift machinery, summarized as ``max_drift``; a spike
  against its decaying baseline means the batch-optimal targets jumped.

Decision rule, per signal: *alert when the value exceeds its reference by
more than the tolerance* — ``value > baseline·(1 + tol) + atol`` for the
baselined signals, ``value > threshold`` for the absolute reassignment
fraction — escalating from ``warning`` to ``critical`` at
``critical_factor`` times the tolerance.  Baselines fold the observed
value in *after* the comparison, so the decision at step ``t`` never
depends on the value it judges, and raising any tolerance can only
shrink the set of (step, kind) alerts — the monotonicity the property
suite certifies.

The engine is pure bookkeeping: deterministic, no randomness, no model
access.  Interventions live in :mod:`repro.monitoring.policies`.
"""

from __future__ import annotations

from typing import List, Optional

from ..exceptions import MonitoringError, ValidationError
from .alerts import DriftAlert

__all__ = ["DriftEngine"]


class DriftEngine:
    """Streaming drift detector over :class:`~repro.core.minibatch.BatchStats`.

    Parameters
    ----------
    warmup_steps : int
        Observations that only feed the baselines before any alert may
        fire (the first batches of a fresh model are legitimately
        chaotic).  Also re-applied after :meth:`reset` — a refit re-warms.
    ewma_alpha : float
        Weight of the newest observation in the exponentially-weighted
        baselines, in ``(0, 1]``; smaller is smoother.
    inertia_tolerance : float
        Relative excess of ``mean_inertia`` over its baseline that fires
        ``inertia_regression`` (0.25 = alert at +25%).
    drift_tolerance : float
        Relative excess of ``max_drift`` over its baseline that fires
        ``protocentroid_drift``.
    reassignment_threshold : float
        Absolute ``reassignment_fraction`` above which
        ``reassignment_surge`` fires (the fraction is already
        scale-free, so no baseline is needed).
    critical_factor : float
        Severity escalation: a value beyond ``critical_factor`` times the
        tolerance (or threshold) is ``critical`` instead of ``warning``.
        Must be >= 1.
    atol : float
        Absolute slack added to every trigger level so zero-baselines
        (e.g. a stream of exact-centroid batches) do not alert on noise.

    Attributes
    ----------
    alerts : list of DriftAlert
        Full emission history, in order.
    n_observed : int
        Snapshots consumed since construction or the last :meth:`reset`.
    """

    def __init__(
        self,
        *,
        warmup_steps: int = 5,
        ewma_alpha: float = 0.3,
        inertia_tolerance: float = 0.25,
        drift_tolerance: float = 1.0,
        reassignment_threshold: float = 0.5,
        critical_factor: float = 2.0,
        atol: float = 1e-12,
    ) -> None:
        if warmup_steps < 0:
            raise ValidationError(
                f"warmup_steps must be >= 0, got {warmup_steps}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValidationError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        for name, value in (
            ("inertia_tolerance", inertia_tolerance),
            ("drift_tolerance", drift_tolerance),
            ("atol", atol),
        ):
            if value < 0:
                raise ValidationError(f"{name} must be >= 0, got {value}")
        if reassignment_threshold <= 0:
            raise ValidationError(
                f"reassignment_threshold must be > 0, got "
                f"{reassignment_threshold}"
            )
        if critical_factor < 1.0:
            raise ValidationError(
                f"critical_factor must be >= 1, got {critical_factor}"
            )
        self.warmup_steps = int(warmup_steps)
        self.ewma_alpha = float(ewma_alpha)
        self.inertia_tolerance = float(inertia_tolerance)
        self.drift_tolerance = float(drift_tolerance)
        self.reassignment_threshold = float(reassignment_threshold)
        self.critical_factor = float(critical_factor)
        self.atol = float(atol)
        self.alerts: List[DriftAlert] = []
        self.n_observed = 0
        self._inertia_baseline: Optional[float] = None
        self._drift_baseline: Optional[float] = None

    # ------------------------------------------------------------- observe
    def observe(self, stats) -> List[DriftAlert]:
        """Consume one :class:`BatchStats` snapshot; return this step's alerts.

        Alerts are emitted in the fixed :data:`~repro.monitoring.alerts.ALERT_KINDS`
        order and appended to :attr:`alerts`.
        """
        step = int(stats.step)
        mean_inertia = float(stats.mean_inertia)
        max_drift = float(stats.max_drift)
        fraction = float(stats.reassignment_fraction)
        alerts: List[DriftAlert] = []
        if self.n_observed >= self.warmup_steps:
            alert = self._baselined_alert(
                "inertia_regression", step, mean_inertia,
                self._inertia_baseline, self.inertia_tolerance,
                "per-point batch inertia",
            )
            if alert is not None:
                alerts.append(alert)
            alert = self._absolute_alert(
                "reassignment_surge", step, fraction,
                self.reassignment_threshold,
            )
            if alert is not None:
                alerts.append(alert)
            alert = self._baselined_alert(
                "protocentroid_drift", step, max_drift,
                self._drift_baseline, self.drift_tolerance,
                "max centroid drift",
            )
            if alert is not None:
                alerts.append(alert)
        # Fold after judging: the decision at step t never depends on the
        # value it judges, which is what makes thresholds monotone.
        self._inertia_baseline = self._fold(
            self._inertia_baseline, mean_inertia
        )
        self._drift_baseline = self._fold(self._drift_baseline, max_drift)
        self.n_observed += 1
        self.alerts.extend(alerts)
        return alerts

    def _fold(self, baseline: Optional[float], value: float) -> float:
        if baseline is None:
            return value
        return (1.0 - self.ewma_alpha) * baseline + self.ewma_alpha * value

    def _baselined_alert(
        self, kind, step, value, baseline, tolerance, label
    ) -> Optional[DriftAlert]:
        if baseline is None:
            return None
        threshold = baseline * (1.0 + tolerance) + self.atol
        if not value > threshold:
            return None
        critical = baseline * (
            1.0 + self.critical_factor * tolerance
        ) + self.atol
        severity = "critical" if value > critical else "warning"
        return DriftAlert(
            kind=kind, severity=severity, step=step, value=value,
            baseline=baseline, threshold=threshold,
            message=(
                f"{label} {value:.6g} exceeded its EW baseline "
                f"{baseline:.6g} by more than {tolerance:.0%}"
            ),
        )

    def _absolute_alert(self, kind, step, value, threshold) -> Optional[DriftAlert]:
        effective = threshold + self.atol
        if not value > effective:
            return None
        critical = self.critical_factor * threshold + self.atol
        severity = "critical" if value > critical else "warning"
        return DriftAlert(
            kind=kind, severity=severity, step=step, value=value,
            baseline=threshold, threshold=effective,
            message=(
                f"reassignment fraction {value:.6g} exceeded the "
                f"{threshold:.6g} surge threshold"
            ),
        )

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Forget the baselines and re-enter warmup (after a policy refit:
        the model the baselines described no longer exists).  The alert
        history is kept — it narrates one continuous stream."""
        self.n_observed = 0
        self._inertia_baseline = None
        self._drift_baseline = None

    def config(self) -> dict:
        """The constructor parameters, JSON-able."""
        return {
            "warmup_steps": self.warmup_steps,
            "ewma_alpha": self.ewma_alpha,
            "inertia_tolerance": self.inertia_tolerance,
            "drift_tolerance": self.drift_tolerance,
            "reassignment_threshold": self.reassignment_threshold,
            "critical_factor": self.critical_factor,
            "atol": self.atol,
        }

    def state_dict(self) -> dict:
        """Serializable mutable state for stream checkpoints (JSON-able)."""
        return {
            "config": self.config(),
            "n_observed": self.n_observed,
            "inertia_baseline": self._inertia_baseline,
            "drift_baseline": self._drift_baseline,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def restore(self, state: dict) -> "DriftEngine":
        """Load a :meth:`state_dict`; the restoring engine must be
        configured identically (verified — a monitor resumed under
        different thresholds would not reproduce the stream)."""
        if state.get("config") != self.config():
            raise MonitoringError(
                "engine state was written under a different configuration: "
                f"{state.get('config')!r} != {self.config()!r}"
            )
        self.n_observed = int(state["n_observed"])
        self._inertia_baseline = state["inertia_baseline"]
        self._drift_baseline = state["drift_baseline"]
        self.alerts = [
            DriftAlert.from_dict(fields) for fields in state["alerts"]
        ]
        return self
