"""Streaming drift monitoring for online Khatri-Rao clustering.

The subsystem closes the loop around :meth:`MiniBatchKhatriRaoKMeans.partial_fit
<repro.core.minibatch.MiniBatchKhatriRaoKMeans.partial_fit>`:

* :class:`DriftEngine` (:mod:`~repro.monitoring.engine`) watches the
  per-batch :class:`~repro.core.minibatch.BatchStats` snapshots against
  exponentially-weighted baselines and emits typed
  :class:`DriftAlert` records;
* the policies (:mod:`~repro.monitoring.policies`) decide what to do
  about them — record only, refine on the triggering batch, or refit
  with a seeded rng — all deterministically;
* :class:`MonitoredStream` (:mod:`~repro.monitoring.pipeline`) wires
  model, engine and policy into one checkpointable pipeline with an
  ordered alert/action timeline;
* the golden harness (:mod:`~repro.monitoring.evaluation`) replays
  committed scenarios and fails on *any* behavioral delta — the
  regression net CI runs via ``repro.cli monitor``.

See ``docs/monitoring.md`` for the walkthrough.
"""

from .alerts import (
    ALERT_KINDS,
    SEVERITIES,
    DriftAlert,
    PolicyAction,
    severity_at_least,
)
from .engine import DriftEngine
from .evaluation import load_scenario, record_scenario, run_scenario, run_suite
from .pipeline import MonitoredStream, StreamReport
from .policies import (
    POLICY_NAMES,
    AlertOnlyPolicy,
    DriftPolicy,
    TriggerRefinePolicy,
    TriggerRefitPolicy,
    resolve_policy,
)

__all__ = [
    "ALERT_KINDS",
    "POLICY_NAMES",
    "SEVERITIES",
    "AlertOnlyPolicy",
    "DriftAlert",
    "DriftEngine",
    "DriftPolicy",
    "MonitoredStream",
    "PolicyAction",
    "StreamReport",
    "TriggerRefinePolicy",
    "TriggerRefitPolicy",
    "load_scenario",
    "record_scenario",
    "resolve_policy",
    "run_scenario",
    "run_suite",
    "severity_at_least",
]
