"""Data-summarization baselines beyond clustering (paper Section 2).

The paper's related-work section notes that centroid-based clustering is one
of several summarization strategies — "alternative approaches exist (e.g.,
aggregation, dimensionality reduction, or sampling)".  This module provides
those alternatives at *matched parameter budgets*, so Khatri-Rao summaries
can be compared against the whole design space, not just k-Means:

* :func:`sampling_summary` — uniform / D²-weighted data-point samples;
* :func:`pca_summary` — a rank-``r`` PCA sketch (mean + principal axes),
  evaluated by reconstruction error projected back to centroid-style
  assignment via its own reconstruction;
* :func:`compare_summaries` — budgeted comparison returning inertia per
  method, the quantity the paper uses throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .._validation import check_array, check_positive_int, check_random_state
from ..core import KhatriRaoKMeans, KMeans
from ..core._distances import assign_to_nearest
from ..core.kmeans import kmeans_plus_plus_init
from ..exceptions import ValidationError

__all__ = ["SummaryEvaluation", "sampling_summary", "pca_summary", "compare_summaries"]


@dataclass
class SummaryEvaluation:
    """Outcome of one summarization strategy at a parameter budget."""

    method: str
    parameters: int
    inertia: float


def sampling_summary(
    X: np.ndarray,
    n_vectors: int,
    *,
    weighted: bool = False,
    random_state=None,
) -> np.ndarray:
    """Summarize by ``n_vectors`` sampled data points.

    ``weighted=True`` uses k-means++-style D² sampling, which spreads the
    sample over the data's modes; otherwise sampling is uniform.
    """
    X = check_array(X)
    n_vectors = check_positive_int(n_vectors, "n_vectors")
    rng = check_random_state(random_state)
    if weighted:
        return kmeans_plus_plus_init(X, min(n_vectors, X.shape[0]), rng)
    indices = rng.choice(X.shape[0], size=min(n_vectors, X.shape[0]), replace=False)
    return X[indices].copy()


def pca_summary(X: np.ndarray, rank: int) -> Dict[str, np.ndarray]:
    """Rank-``rank`` PCA sketch: mean vector plus principal axes and scales.

    Stores ``(rank + 1)`` vectors of dimension ``m`` (mean + scaled axes);
    its reconstruction ``x̂ = mean + P Pᵀ (x − mean)`` summarizes the data by
    a subspace rather than by prototypes.
    """
    X = check_array(X)
    rank = check_positive_int(rank, "rank")
    rank = min(rank, min(X.shape) - 1) or 1
    mean = X.mean(axis=0)
    centered = X - mean
    _, singular_values, rows = np.linalg.svd(centered, full_matrices=False)
    axes = rows[:rank]
    return {"mean": mean, "axes": axes, "singular_values": singular_values[:rank]}


def _pca_reconstruction_error(X: np.ndarray, sketch: Dict[str, np.ndarray]) -> float:
    centered = X - sketch["mean"]
    projected = centered @ sketch["axes"].T @ sketch["axes"]
    return float(np.sum((centered - projected) ** 2))


def compare_summaries(
    X,
    cardinalities: Sequence[int],
    *,
    aggregator="sum",
    n_init: int = 10,
    random_state=None,
) -> List[SummaryEvaluation]:
    """Compare summarization strategies at the KR summary's parameter budget.

    The budget is ``∑ h_q`` vectors.  Returns evaluations (method, stored
    parameters, summed squared error) for: uniform sampling, D² sampling,
    k-Means with ``∑ h_q`` centroids, PCA with a matched vector count, and
    Khatri-Rao-k-Means representing ``∏ h_q`` centroids.

    Examples
    --------
    >>> from repro.datasets import make_blobs
    >>> X, _ = make_blobs(400, n_clusters=9, random_state=0)
    >>> rows = compare_summaries(X, (3, 3), n_init=3, random_state=0)
    >>> [row.method for row in rows][-1]
    'khatri-rao-k-means(3, 3)'
    """
    X = check_array(X)
    cards = tuple(int(h) for h in cardinalities)
    if any(h < 1 for h in cards):
        raise ValidationError("cardinalities must be positive")
    budget = sum(cards)
    m = X.shape[1]
    rng = check_random_state(random_state)
    results: List[SummaryEvaluation] = []

    for weighted, name in ((False, "uniform-sample"), (True, "d2-sample")):
        prototypes = sampling_summary(X, budget, weighted=weighted, random_state=rng)
        _, distances = assign_to_nearest(X, prototypes)
        results.append(SummaryEvaluation(name, prototypes.size, float(distances.sum())))

    kmeans = KMeans(budget, n_init=n_init, random_state=rng).fit(X)
    results.append(SummaryEvaluation(f"k-means({budget})", budget * m, kmeans.inertia_))

    sketch = pca_summary(X, max(1, budget - 1))
    pca_params = (sketch["axes"].shape[0] + 1) * m
    results.append(
        SummaryEvaluation("pca-sketch", pca_params, _pca_reconstruction_error(X, sketch))
    )

    kr = KhatriRaoKMeans(cards, aggregator=aggregator, n_init=n_init,
                         random_state=rng).fit(X)
    results.append(
        SummaryEvaluation(f"khatri-rao-k-means{cards}", kr.parameter_count(),
                          kr.inertia_)
    )
    return results
