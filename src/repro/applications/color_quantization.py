"""Color quantization via clustering codebooks (paper Section 9.4, Figure 9).

Color quantization casts an RGB image as a point cloud in 3-D color space
and builds a **codebook** of representative colors; every pixel is then
mapped to its closest codebook entry.  The paper's case study compares, at
*matched parameter budgets* (12 stored vectors):

* random quantization — 12 pixels sampled uniformly at random;
* ``k-Means`` — 12 centroids;
* ``Khatri-Rao-k-Means`` — two sets of 6 protocentroids, product
  aggregator, representing a 36-color codebook with 12 stored vectors.

The paper fits the codebooks on a 1000-pixel subsample and reports inertias
4686 / 2009 / 1144 — random > k-Means > Khatri-Rao — with the KR codebook
preserving rare-but-salient red tones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..core import KhatriRaoKMeans, KMeans
from ..core._distances import assign_to_nearest
from ..exceptions import ValidationError

__all__ = [
    "QuantizationResult",
    "quantize_kmeans",
    "quantize_khatri_rao_kmeans",
    "quantize_random",
]


@dataclass
class QuantizationResult:
    """Outcome of quantizing an image with a codebook.

    Attributes
    ----------
    image : array (h, w, 3) — the quantized image.
    codebook : array (n_colors, 3)
    inertia : float — squared error of all pixels to their codebook color.
    stored_vectors : int — parameter budget actually stored (12 for all
        three methods of Figure 9; the KR codebook *represents* 36 colors).
    method : str
    """

    image: np.ndarray
    codebook: np.ndarray
    inertia: float
    stored_vectors: int
    method: str


def _flatten_image(image: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
    image = np.asarray(image, dtype=float)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValidationError(f"image must have shape (h, w, 3), got {image.shape}")
    h, w, _ = image.shape
    return image.reshape(-1, 3), (h, w)


def _subsample(pixels: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    if pixels.shape[0] <= n:
        return pixels
    indices = rng.choice(pixels.shape[0], size=n, replace=False)
    return pixels[indices]


def _apply_codebook(
    pixels: np.ndarray, shape: Tuple[int, int], codebook: np.ndarray, method: str,
    stored_vectors: int,
) -> QuantizationResult:
    labels, distances = assign_to_nearest(pixels, codebook)
    quantized = codebook[labels].reshape(shape[0], shape[1], 3)
    return QuantizationResult(
        image=quantized,
        codebook=codebook,
        inertia=float(distances.sum()),
        stored_vectors=stored_vectors,
        method=method,
    )


def quantize_kmeans(
    image: np.ndarray,
    n_colors: int = 12,
    *,
    fit_pixels: int = 1000,
    n_init: int = 10,
    random_state=None,
) -> QuantizationResult:
    """Quantize with a k-Means codebook of ``n_colors`` centroids."""
    n_colors = check_positive_int(n_colors, "n_colors")
    rng = check_random_state(random_state)
    pixels, shape = _flatten_image(image)
    sample = _subsample(pixels, fit_pixels, rng)
    model = KMeans(n_colors, n_init=n_init, random_state=rng).fit(sample)
    return _apply_codebook(
        pixels, shape, model.cluster_centers_, "k-means", n_colors
    )


def quantize_khatri_rao_kmeans(
    image: np.ndarray,
    cardinalities: Sequence[int] = (6, 6),
    *,
    aggregator="product",
    fit_pixels: int = 1000,
    n_init: int = 10,
    random_state=None,
) -> QuantizationResult:
    """Quantize with a Khatri-Rao-k-Means codebook.

    With the Figure 9 configuration ``(6, 6)`` and the product aggregator,
    12 stored vectors represent a 36-color codebook.
    """
    rng = check_random_state(random_state)
    pixels, shape = _flatten_image(image)
    sample = _subsample(pixels, fit_pixels, rng)
    model = KhatriRaoKMeans(
        cardinalities, aggregator=aggregator, n_init=n_init, random_state=rng
    ).fit(sample)
    return _apply_codebook(
        pixels, shape, model.centroids(), "khatri-rao-k-means",
        int(sum(model.cardinalities)),
    )


def quantize_random(
    image: np.ndarray,
    n_colors: int = 12,
    *,
    random_state=None,
) -> QuantizationResult:
    """Quantize with ``n_colors`` pixels sampled uniformly at random."""
    n_colors = check_positive_int(n_colors, "n_colors")
    rng = check_random_state(random_state)
    pixels, shape = _flatten_image(image)
    indices = rng.choice(pixels.shape[0], size=min(n_colors, pixels.shape[0]), replace=False)
    return _apply_codebook(pixels, shape, pixels[indices].copy(), "random", n_colors)
