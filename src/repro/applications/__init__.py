"""Application case studies built on the public clustering API.

* :mod:`repro.applications.color_quantization` — the Figure 9 case study:
  codebooks of representative colors from k-Means, Khatri-Rao-k-Means and
  random sampling, at matched parameter budgets.
* :mod:`repro.applications.summarization` — the related-work summarization
  baselines (sampling, PCA sketches) at matched budgets (paper Section 2).
"""

from .color_quantization import (
    QuantizationResult,
    quantize_khatri_rao_kmeans,
    quantize_kmeans,
    quantize_random,
)
from .summarization import (
    SummaryEvaluation,
    compare_summaries,
    pca_summary,
    sampling_summary,
)

__all__ = [
    "QuantizationResult",
    "quantize_kmeans",
    "quantize_khatri_rao_kmeans",
    "quantize_random",
    "SummaryEvaluation",
    "compare_summaries",
    "sampling_summary",
    "pca_summary",
]
