"""Token-bucket rate limiting for the serving front end.

One :class:`TokenBucket` guards the whole server (the default wiring in
:mod:`repro.serving.http`): tokens refill continuously at ``rate`` per
second up to ``capacity``, and every admitted request spends one.  A
request arriving at an empty bucket is rejected with
:class:`~repro.exceptions.RateLimitError`, carrying the bucket's estimate
of when a token frees up — the HTTP layer forwards it as ``Retry-After``.

The clock is injectable so tests (and replay tooling) can drive the
bucket deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..exceptions import RateLimitError

__all__ = ["TokenBucket"]


class TokenBucket:
    """A thread-safe token bucket.

    Parameters
    ----------
    rate : float
        Sustained tokens (requests) per second.  Must be > 0.  Rates below
        one are valid (e.g. ``0.5`` = one request every two seconds).
    capacity : float
        Burst size: the maximum token balance.  Must be >= 1 when given
        (a bucket that can never hold a whole token admits nothing).
        Defaults to ``max(rate, 1)`` — one second of burst, floored so
        sub-1-rps rates still admit single requests instead of crashing
        construction.
    clock : callable
        Monotonic-seconds source; defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        rate: float,
        capacity: float = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        # The default burst is one second of rate, floored at one whole
        # token: defaulting to the raw rate made every sub-1-rps server
        # (serve --rate-limit 0.5) die on the capacity check below.
        self.capacity = (
            float(capacity) if capacity is not None else max(self.rate, 1.0)
        )
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._clock = clock
        self._tokens = self.capacity
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def acquire_or_raise(self, tokens: float = 1.0) -> None:
        """Spend ``tokens`` or raise :class:`RateLimitError` with a hint."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return
            retry_after = (tokens - self._tokens) / self.rate
        raise RateLimitError(
            f"rate limit exceeded ({self.rate:g} req/s, burst "
            f"{self.capacity:g}); retry in {retry_after:.3f}s",
            retry_after=retry_after,
        )

    @property
    def tokens(self) -> float:
        """Current balance (refilled to now); for metrics and tests."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens
