"""Serving metrics: lock-protected counters and latency reservoirs.

Everything the server knows about itself flows through one
:class:`ServingMetrics` instance: request/error/batch counters and
per-operation latency distributions.  The HTTP front end surfaces a
:meth:`ServingMetrics.snapshot` at ``/metrics`` (see ``docs/serving.md``
for the schema) and the access log quotes per-request latencies from the
same clock.

Design constraints, in order:

* **Cheap on the hot path.**  Recording a sample is a lock acquire, two
  integer adds and a ring-buffer store.  Percentiles are computed only at
  snapshot time, from a copy taken under the lock.
* **Thread-safe by construction.**  Handler threads, the batcher worker
  and scrapers all touch the same instance; every public method holds the
  instance lock.  There is no lock-free fast path to get subtly wrong.
* **Bounded memory.**  Latency reservoirs are sliding windows over the
  last ``capacity`` samples (default 4096) — a long-running server's
  ``/metrics`` reflects recent behavior, not a mean over its whole life.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["LatencyReservoir", "ServingMetrics", "percentiles"]

#: The percentile levels every latency snapshot reports.
PERCENTILES = (50.0, 95.0, 99.0)


def percentiles(samples: Iterable[float], levels=PERCENTILES) -> Dict[str, float]:
    """p50/p95/p99 (by default) of ``samples`` as a ``{"p50": ...}`` dict.

    Empty input yields an empty dict rather than NaNs so JSON consumers
    can treat "no data yet" and "data" uniformly.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {}
    values = np.percentile(arr, levels)
    return {f"p{level:g}": float(v) for level, v in zip(levels, values)}


class LatencyReservoir:
    """A sliding window of the most recent latency samples, in seconds.

    A plain ring buffer, not reservoir sampling: serving dashboards want
    *recent* tail latency, and a deterministic window keeps tests and
    replays reproducible.  Not thread-safe on its own — callers hold the
    :class:`ServingMetrics` lock (or their own).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._next = 0
        self._count = 0  # total ever recorded

    def record(self, seconds: float) -> None:
        self._buffer[self._next] = seconds
        self._next = (self._next + 1) % self._buffer.shape[0]
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def values(self) -> np.ndarray:
        """The windowed samples, oldest-first (a copy)."""
        n = min(self._count, self._buffer.shape[0])
        if self._count <= self._buffer.shape[0]:
            return self._buffer[:n].copy()
        return np.roll(self._buffer, -self._next)[:n].copy()

    def snapshot(self) -> Dict[str, float]:
        """Percentiles/mean/max over the window plus the lifetime count."""
        values = self.values()
        out: Dict[str, float] = {"count": self._count}
        if values.size:
            out.update(percentiles(values))
            out["mean"] = float(values.mean())
            out["max"] = float(values.max())
        return out


class ServingMetrics:
    """All counters and latency distributions for one serving process.

    Counter taxonomy (every key appears in the ``/metrics`` snapshot):

    ``requests_total``            per-endpoint-kind HTTP request counts
    ``errors_total``              per-status-code error counts
    ``rate_limited_total``        requests rejected by the token bucket
    ``batches_total``             kernel calls the batcher issued
    ``batched_requests_total``    requests served through those calls
    ``batch_size_max``            largest coalesced batch (requests)
    ``batch_rows_total``          data rows pushed through the kernels
    ``registry_evictions_total``  models evicted by the registry LRU

    Resilience counters (PR 7 — the failure model's observable surface):

    ``deadline_expired_total``    tickets shed at coalesce time because
                                  their deadline passed (or the caller
                                  cancelled after a result timeout)
    ``shed_overload_total``       submits rejected by backpressure caps
                                  (queue depth / pending rows)
    ``breaker_open_total``        circuit-open transitions
    ``breaker_fastfail_total``    submits rejected while a circuit is open
    ``worker_restarts_total``     dead batcher workers the watchdog revived
    ``worker_hangs_total``        hung batches the watchdog gave up on

    Latency reservoirs: one per batched operation (``assign``,
    ``inertia``, ``refine`` — submit-to-result, the number a client
    perceives) plus ``http`` (whole-request wall time in the front end)
    and ``batch_exec`` (pure kernel time per coalesced call).
    """

    def __init__(self, reservoir_capacity: int = 4096):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._reservoirs: Dict[str, LatencyReservoir] = {}
        self._reservoir_capacity = int(reservoir_capacity)

    # ------------------------------------------------------------- counters
    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def record_max(self, name: str, value: int) -> None:
        """Keep the running maximum of ``name`` (e.g. largest batch)."""
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = int(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -------------------------------------------------------------- latency
    def record_latency(self, name: str, seconds: float) -> None:
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None:
                reservoir = self._reservoirs[name] = LatencyReservoir(
                    self._reservoir_capacity
                )
            reservoir.record(float(seconds))

    def latency(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            reservoir = self._reservoirs.get(name)
            return None if reservoir is None else reservoir.snapshot()

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict:
        """One JSON-serializable view of everything, for ``/metrics``."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "latency_seconds": {
                    name: reservoir.snapshot()
                    for name, reservoir in sorted(self._reservoirs.items())
                },
            }
