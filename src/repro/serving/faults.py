"""Deterministic fault injection for the serving resilience layer.

The fault *vocabulary* — :class:`Fault`, :class:`FaultSchedule`,
:class:`InjectedKernelError`, :class:`WorkerKill` — lives in
:mod:`repro.faults`, the fault plane shared with the training runtime,
and is re-exported here unchanged so pre-existing imports keep working.
What stays serving-specific is :class:`FaultInjector`: the binding of
schedules to the batcher's ``fault_hook``.

The injection point is the batcher's ``fault_hook`` — a callable the
worker invokes at the top of every batch execution, *before* the model
is resolved (so an ``evict`` fault exercises the submitted-then-evicted
path) and inside the same try/except as the kernel call (so a ``raise``
fault flows through the real failure plumbing: ticket failure, circuit
breaker accounting, masked-500 HTTP mapping).

Build schedules explicitly (:meth:`FaultSchedule.from_spec`) when a test
needs a precise scenario, or randomly (:meth:`FaultSchedule.random`)
with a seed for soak-style chaos runs.  :class:`FaultInjector` binds a
schedule to a batcher and records what actually fired.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..faults import Fault, FaultSchedule, InjectedKernelError, WorkerKill

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "InjectedKernelError",
    "WorkerKill",
]


class FaultInjector:
    """Binds :class:`FaultSchedule` s to a batcher's ``fault_hook``.

    The hook runs on the worker thread at the top of every batch
    execution.  Each schedule keeps its own call counter (scoped
    schedules only count calls for their model), and :attr:`fired`
    records ``(index, model, op, kind)`` for every non-``ok`` action —
    the chaos suite cross-checks observed failures against it.

    Use :meth:`install` / :meth:`uninstall` (or the context manager) to
    attach; ``arm(False)`` pauses injection without detaching.
    """

    def __init__(self, batcher, *schedules: FaultSchedule):
        self.batcher = batcher
        self.schedules: List[FaultSchedule] = list(schedules)
        self.fired: List[Tuple[int, str, str, str]] = []
        self._counters: Dict[int, int] = {i: 0 for i in range(len(schedules))}
        self._armed = True
        self._lock = threading.Lock()

    def add(self, schedule: FaultSchedule) -> "FaultInjector":
        with self._lock:
            self._counters[len(self.schedules)] = 0
            self.schedules.append(schedule)
        return self

    def arm(self, armed: bool = True) -> None:
        self._armed = bool(armed)

    # ------------------------------------------------------------- the hook
    def __call__(self, key, batch) -> None:
        if not self._armed:
            return
        model, op = key[0], key[1]
        action: Optional[Tuple[Fault, int]] = None
        with self._lock:
            for i, schedule in enumerate(self.schedules):
                if schedule.model is not None and schedule.model != model:
                    continue
                index = self._counters[i]
                self._counters[i] = index + 1
                fault = schedule.fault_for(index)
                if fault.kind != "ok" and action is None:
                    action = (fault, index)
            if action is not None:
                self.fired.append((action[1], model, op, action[0].kind))
        if action is None:
            return
        fault, index = action
        if fault.kind == "evict":
            # The one context-bound fault: evict the batch's model from
            # the registry mid-flight, then proceed — the batch fails
            # with ModelNotFoundError through the real plumbing.
            self.batcher.registry.evict(model)
            return
        fault.apply(f"#{index} for model {model!r}")

    # ------------------------------------------------------------ attaching
    def install(self) -> "FaultInjector":
        self.batcher.fault_hook = self
        return self

    def uninstall(self) -> None:
        if self.batcher.fault_hook is self:
            self.batcher.fault_hook = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
