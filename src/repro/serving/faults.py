"""Deterministic fault injection for the serving resilience layer.

The chaos suite needs the serving stack to fail *on schedule*: the same
seed must produce the same sequence of kernel faults, worker kills,
hangs and registry evictions on every run, so the resolve-every-ticket
invariant is a reproducible assertion rather than a flaky observation.

The injection point is the batcher's ``fault_hook`` — a callable the
worker invokes at the top of every batch execution, *before* the model
is resolved (so an ``evict`` fault exercises the submitted-then-evicted
path) and inside the same try/except as the kernel call (so a ``raise``
fault flows through the real failure plumbing: ticket failure, circuit
breaker accounting, masked-500 HTTP mapping).

Vocabulary (one :class:`Fault` per batch execution, in call order):

========== ==========================================================
``ok``       no interference
``raise``    raise :class:`InjectedKernelError` — looks like an
             unexpected kernel crash (not a ``ReproError``), so HTTP
             masks it as a 500 and the breaker counts it
``sleep``    ``time.sleep(seconds)`` on the worker thread — a hung
             kernel, for deadline/watchdog-hang testing
``kill``     raise :class:`WorkerKill` (a ``BaseException``) — escapes
             the worker's ``except Exception`` and kills the thread,
             stranding the in-flight batch for the watchdog
``evict``    evict the batch's model from the registry mid-flight, then
             proceed — the batch fails with ``ModelNotFoundError``
========== ==========================================================

Build schedules explicitly (:meth:`FaultSchedule.from_spec`) when a test
needs a precise scenario, or randomly (:meth:`FaultSchedule.random`)
with a seed for soak-style chaos runs.  :class:`FaultInjector` binds a
schedule to a batcher and records what actually fired.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "InjectedKernelError",
    "WorkerKill",
]


class InjectedKernelError(RuntimeError):
    """A scheduled kernel failure.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: an
    unexpected kernel crash is exactly what the masking (HTTP 500
    ``InternalError``) and circuit-breaker paths exist for.
    """


class WorkerKill(BaseException):
    """A scheduled worker death.

    A ``BaseException`` so it escapes the worker loop's
    ``except Exception`` and kills the thread — the in-flight batch is
    stranded for the :class:`~repro.serving.resilience.Watchdog` to reap.
    """


class Fault:
    """One scheduled action. ``kind`` ∈ {ok, raise, sleep, kill, evict}."""

    KINDS = ("ok", "raise", "sleep", "kill", "evict")
    __slots__ = ("kind", "seconds")

    def __init__(self, kind: str, seconds: float = 0.0):
        if kind not in self.KINDS:
            raise ValueError(f"fault kind must be one of {self.KINDS}, got {kind!r}")
        self.kind = kind
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        if self.kind == "sleep":
            return f"Fault('sleep', {self.seconds:g})"
        return f"Fault({self.kind!r})"


_SpecValue = Union[str, Fault, Tuple[str, float]]


def _as_fault(value: _SpecValue) -> Fault:
    if isinstance(value, Fault):
        return value
    if isinstance(value, tuple):
        return Fault(value[0], value[1])
    return Fault(value)


class FaultSchedule:
    """A deterministic call-index → :class:`Fault` mapping.

    Indices count batch executions (per injector, starting at 0); any
    index without an entry is ``ok``.  Optionally scoped to one model so
    a "poisoned model" schedule leaves its neighbors healthy.
    """

    def __init__(
        self,
        faults: Dict[int, Fault],
        *,
        model: Optional[str] = None,
    ):
        self.faults = {int(i): _as_fault(f) for i, f in faults.items()}
        self.model = model

    @classmethod
    def from_spec(
        cls,
        spec: Dict[int, _SpecValue],
        *,
        model: Optional[str] = None,
    ) -> "FaultSchedule":
        """E.g. ``FaultSchedule.from_spec({0: "raise", 3: ("sleep", 0.05)})``."""
        return cls({i: _as_fault(v) for i, v in spec.items()}, model=model)

    @classmethod
    def always(cls, kind: str, *, model: Optional[str] = None,
               seconds: float = 0.0) -> "FaultSchedule":
        """Every matching call gets the same fault (``faults`` is a view
        that answers any index)."""
        schedule = cls({}, model=model)
        schedule._always = Fault(kind, seconds)
        return schedule

    @classmethod
    def random(
        cls,
        seed: int,
        n_calls: int,
        *,
        p_raise: float = 0.15,
        p_sleep: float = 0.05,
        p_kill: float = 0.05,
        sleep_s: float = 0.05,
        model: Optional[str] = None,
    ) -> "FaultSchedule":
        """A seeded random mix over ``n_calls`` executions (the soak shape)."""
        rng = np.random.default_rng(seed)
        faults: Dict[int, Fault] = {}
        for i in range(int(n_calls)):
            u = float(rng.random())
            if u < p_raise:
                faults[i] = Fault("raise")
            elif u < p_raise + p_sleep:
                faults[i] = Fault("sleep", sleep_s)
            elif u < p_raise + p_sleep + p_kill:
                faults[i] = Fault("kill")
        return cls(faults, model=model)

    _always: Optional[Fault] = None

    def fault_for(self, index: int) -> Fault:
        if self._always is not None:
            return self._always
        return self.faults.get(index, Fault("ok"))


class FaultInjector:
    """Binds :class:`FaultSchedule` s to a batcher's ``fault_hook``.

    The hook runs on the worker thread at the top of every batch
    execution.  Each schedule keeps its own call counter (scoped
    schedules only count calls for their model), and :attr:`fired`
    records ``(index, model, op, kind)`` for every non-``ok`` action —
    the chaos suite cross-checks observed failures against it.

    Use :meth:`install` / :meth:`uninstall` (or the context manager) to
    attach; ``arm(False)`` pauses injection without detaching.
    """

    def __init__(self, batcher, *schedules: FaultSchedule):
        self.batcher = batcher
        self.schedules: List[FaultSchedule] = list(schedules)
        self.fired: List[Tuple[int, str, str, str]] = []
        self._counters: Dict[int, int] = {i: 0 for i in range(len(schedules))}
        self._armed = True
        self._lock = threading.Lock()

    def add(self, schedule: FaultSchedule) -> "FaultInjector":
        with self._lock:
            self._counters[len(self.schedules)] = 0
            self.schedules.append(schedule)
        return self

    def arm(self, armed: bool = True) -> None:
        self._armed = bool(armed)

    # ------------------------------------------------------------- the hook
    def __call__(self, key, batch) -> None:
        if not self._armed:
            return
        model, op = key[0], key[1]
        action: Optional[Tuple[Fault, int]] = None
        with self._lock:
            for i, schedule in enumerate(self.schedules):
                if schedule.model is not None and schedule.model != model:
                    continue
                index = self._counters[i]
                self._counters[i] = index + 1
                fault = schedule.fault_for(index)
                if fault.kind != "ok" and action is None:
                    action = (fault, index)
            if action is not None:
                self.fired.append((action[1], model, op, action[0].kind))
        if action is None:
            return
        fault = action[0]
        if fault.kind == "raise":
            raise InjectedKernelError(
                f"injected kernel fault #{action[1]} for model {model!r}"
            )
        if fault.kind == "sleep":
            time.sleep(fault.seconds)
        elif fault.kind == "kill":
            raise WorkerKill(f"injected worker kill #{action[1]}")
        elif fault.kind == "evict":
            self.batcher.registry.evict(model)

    # ------------------------------------------------------------ attaching
    def install(self) -> "FaultInjector":
        self.batcher.fault_hook = self
        return self

    def uninstall(self) -> None:
        if self.batcher.fault_hook is self:
            self.batcher.fault_hook = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
