"""Model registry: named, dtype-normalized, evictable fitted summaries.

The registry is the serving layer's view of :class:`~repro.summary.DataSummary`
artifacts: models enter by name — either as in-process objects
(:meth:`ModelRegistry.register`) or from ``.npz`` files through the
hardened :meth:`DataSummary.load <repro.summary.DataSummary.load>` path
(:meth:`ModelRegistry.load`) — and are normalized to the registry's
serving dtype on the way in.  **float32 is the default hot serving
dtype**: it halves the payload and runs the serving-shaped kernels
(PR 5's measured ≥1.4× assignment speedup / ~50% peak memory); pass
``serving_dtype="native"`` to preserve whatever dtype each artifact was
saved with.

With ``max_models`` set, the registry is an LRU cache: registering past
the cap evicts the least-recently-*served* model (every :meth:`get`
refreshes recency) and counts the eviction in the shared metrics.

All public methods are thread-safe; the HTTP handler threads and the
batcher worker share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .._validation import check_dtype
from ..exceptions import ModelNotFoundError, ValidationError
from ..summary import DataSummary
from .metrics import ServingMetrics

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Thread-safe name → :class:`DataSummary` store with LRU eviction.

    Parameters
    ----------
    serving_dtype : {"float32", "float64", "native"}
        Dtype every model is cast to at registration.  ``"float32"``
        (default) is the serving configuration; ``"native"`` disables the
        cast.
    max_models : int, optional
        LRU capacity.  ``None`` (default) means unbounded.
    metrics : ServingMetrics, optional
        Shared metrics sink; evictions are counted there.
    """

    def __init__(
        self,
        *,
        serving_dtype: str = "float32",
        max_models: Optional[int] = None,
        metrics: Optional[ServingMetrics] = None,
    ):
        if serving_dtype != "native":
            serving_dtype = check_dtype(serving_dtype, name="serving_dtype")
        self.serving_dtype = serving_dtype
        if max_models is not None and int(max_models) < 1:
            raise ValidationError(f"max_models must be >= 1, got {max_models}")
        self.max_models = None if max_models is None else int(max_models)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._lock = threading.RLock()
        self._models: "OrderedDict[str, DataSummary]" = OrderedDict()
        self._listeners: List[Callable[[str, str], None]] = []

    # ------------------------------------------------------------ listeners
    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        """Subscribe to registry events.

        ``listener(event, name)`` is called outside the registry lock
        with ``event`` in ``{"register", "evict"}`` — the batcher uses
        this to reset a model's circuit breakers when its artifact
        changes (a fresh model deserves a clean failure slate).
        """
        self._listeners.append(listener)

    def _notify(self, event: str, names) -> None:
        for name in names:
            for listener in self._listeners:
                try:
                    listener(event, name)
                except Exception:  # a listener must never break serving
                    pass

    # -------------------------------------------------------------- loading
    def _normalize(self, summary: DataSummary) -> DataSummary:
        # astype() always copies (even to the same dtype), so a registered
        # model never aliases the caller's object — refine() through the
        # batcher mutates only the registry's copy.
        target = summary.dtype if self.serving_dtype == "native" else self.serving_dtype
        return summary.astype(target)

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not name or "/" in name:
            raise ValidationError(
                f"model name must be a non-empty string without '/', got {name!r}"
            )
        return name

    def register(self, name: str, summary: DataSummary) -> DataSummary:
        """Add (or replace) ``name``, returning the stored, cast copy."""
        name = self._check_name(name)
        if not isinstance(summary, DataSummary):
            raise ValidationError(
                f"expected a DataSummary, got {type(summary).__name__}"
            )
        stored = self._normalize(summary)
        with self._lock:
            self._models.pop(name, None)
            self._models[name] = stored
            evicted = self._evict_over_capacity()
        self._notify("register", [name])
        self._notify("evict", evicted)
        return stored

    def load(self, name: str, path: Union[str, Path]) -> DataSummary:
        """Load a ``.npz`` artifact from disk and register it as ``name``.

        Goes through the hardened :meth:`DataSummary.load`, so a malformed
        file raises :class:`~repro.exceptions.SummaryFormatError` naming
        the offending field — nothing broken ever enters the registry.
        """
        return self.register(name, DataSummary.load(path))

    def _evict_over_capacity(self) -> List[str]:
        evicted: List[str] = []
        while self.max_models is not None and len(self._models) > self.max_models:
            name, _ = self._models.popitem(last=False)
            evicted.append(name)
            self.metrics.increment("registry_evictions_total")
        return evicted

    # --------------------------------------------------------------- access
    def get(self, name: str) -> DataSummary:
        """The model named ``name``; refreshes its LRU recency."""
        with self._lock:
            try:
                self._models.move_to_end(name)
            except KeyError:
                raise ModelNotFoundError(
                    f"no model named {name!r} (available: "
                    f"{sorted(self._models) or 'none'})"
                ) from None
            return self._models[name]

    def evict(self, name: str) -> bool:
        """Drop ``name``; returns whether it was present."""
        with self._lock:
            present = self._models.pop(name, None) is not None
        if present:
            self.metrics.increment("registry_evictions_total")
            self._notify("evict", [name])
        return present

    def names(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    # ------------------------------------------------------------ describe
    def describe(self, name: str) -> Dict:
        """JSON-shaped facts about one model (the ``/v1/models/<name>`` body)."""
        summary = self.get(name)
        return {
            "name": name,
            "cardinalities": list(summary.cardinalities),
            "n_clusters": summary.n_clusters,
            "n_features": summary.n_features,
            "stored_vectors": summary.stored_vectors,
            "dtype": summary.dtype.name,
            "aggregator": summary.aggregator_name,
            "compression_ratio": summary.compression_ratio(),
            "metadata": summary.metadata,
        }

    def describe_all(self) -> List[Dict]:
        """Stable-ordered descriptions of every model (``/v1/models``).

        Snapshots names under the lock, then describes each outside it;
        a model evicted mid-iteration is skipped rather than an error.
        """
        out = []
        for name in sorted(self.names()):
            try:
                out.append(self.describe(name))
            except ModelNotFoundError:
                continue
        return out
