"""End-to-end serving smoke check: ``python -m repro.serving._smoke``.

The CI serving-smoke step (and any operator who wants a one-command
sanity check) runs this module.  It exercises the *deployed* shape of the
subsystem, not the in-process one:

1. fit a small Khatri-Rao model and save its summary to a temp ``.npz``;
2. spawn the real ``python -m repro.cli serve`` as a subprocess on a free
   port (``--port 0``), parsing the bound port from its startup line;
3. hit ``/healthz``, ``/v1/models``, ``assign``, ``inertia`` and
   ``/metrics`` over real HTTP, checking shapes, the request-ID header
   and that the metrics counted the traffic;
4. cross-check the served labels against an in-process
   ``summary.astype("float32").assign`` on the same rows;
5. terminate the server and exit 0 on success, 1 with a reason on
   failure.

Stdlib + repro only, no pytest — callable from a bare CI step or a
deploy pipeline's post-start hook.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

import numpy as np


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        assert resp.headers.get("X-Request-ID"), "missing X-Request-ID header"
        return json.load(resp)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.load(resp)


def main() -> int:
    from repro import KhatriRaoKMeans, summarize
    from repro.datasets import make_blobs

    X, _ = make_blobs(400, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
    summary = summarize(model, metadata={"fixture": "smoke"})

    with tempfile.TemporaryDirectory() as tmp:
        path = summary.save(Path(tmp) / "smoke.npz")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--model", f"smoke={path}",
                "--port", "0", "--quiet", "--window-ms", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            print(f"server: {line}")
            if "http://" not in line:
                rest = proc.stdout.read()
                print(f"server failed to start:\n{rest}")
                return 1
            base = line.rsplit(" ", 1)[-1]

            health = _get(f"{base}/healthz")
            assert health["status"] == "ok" and health["models"] == 1, health

            models = _get(f"{base}/v1/models")["models"]
            assert [m["name"] for m in models] == ["smoke"], models
            assert models[0]["dtype"] == "float32", models  # serving dtype

            rows = X[:16].tolist()
            assigned = _post(f"{base}/v1/models/smoke/assign", {"rows": rows})
            expected = summary.astype("float32").assign(np.asarray(rows))
            assert assigned["labels"] == expected.tolist(), (
                "served labels disagree with the in-process float32 kernel"
            )

            inertia = _post(f"{base}/v1/models/smoke/inertia", {"rows": rows})
            assert inertia["rows"] == 16 and inertia["inertia"] > 0, inertia

            metrics = _get(f"{base}/metrics")
            counters = metrics["counters"]
            assert counters["requests_total"] >= 4, counters
            assert counters["batched_requests_total"] >= 2, counters
            assert "assign" in metrics["latency_seconds"], metrics
            print(
                f"smoke ok: {counters['requests_total']} requests, "
                f"{counters['batches_total']} batch(es), labels verified"
            )
            return 0
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
