"""End-to-end serving smoke check: ``python -m repro.serving._smoke``.

The CI serving-smoke step (and any operator who wants a one-command
sanity check) runs this module.  It exercises the *deployed* shape of the
subsystem, not the in-process one:

1. fit a small Khatri-Rao model and save its summary to a temp ``.npz``;
2. spawn the real ``python -m repro.cli serve`` as a subprocess on a free
   port (``--port 0``), parsing the bound port from its startup line;
3. hit ``/healthz``, ``/v1/models``, ``assign``, ``inertia`` and
   ``/metrics`` through the package's own retry client
   (:class:`~repro.serving.client.ServingClient` — the same
   ``Retry-After``/``X-Request-ID`` protocol a production caller speaks),
   checking shapes and that the metrics counted the traffic;
4. cross-check the served labels against an in-process
   ``summary.astype("float32").assign`` on the same rows;
5. send **SIGTERM with requests in flight** and verify the graceful
   drain: every in-flight request gets a real response (200, or a typed
   503 if it straggles past the drain budget) and the process exits 0;
6. exit 0 on success, 1 with a reason on failure.

Stdlib + repro only, no pytest — callable from a bare CI step or a
deploy pipeline's post-start hook.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np


def main() -> int:
    from repro import KhatriRaoKMeans, summarize
    from repro.datasets import make_blobs
    from repro.serving.client import ServingClient, ServingClientError

    X, _ = make_blobs(400, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=3, random_state=0).fit(X)
    summary = summarize(model, metadata={"fixture": "smoke"})

    with tempfile.TemporaryDirectory() as tmp:
        path = summary.save(Path(tmp) / "smoke.npz")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--model", f"smoke={path}",
                # A wide window so the SIGTERM volley below is still
                # queued (in flight) when the signal lands — the drain
                # must flush it, not get lucky with an empty batcher.
                "--port", "0", "--quiet", "--window-ms", "300",
                "--drain-timeout", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            print(f"server: {line}")
            if "http://" not in line:
                rest = proc.stdout.read()
                print(f"server failed to start:\n{rest}")
                return 1
            base = line.rsplit(" ", 1)[-1]
            client = ServingClient(base, seed=0)

            health = client.healthz()
            assert health["status"] == "ok" and health["models"] == 1, health
            assert health["worker_restarts"] == 0, health

            models = client.models()
            assert [m["name"] for m in models] == ["smoke"], models
            assert models[0]["dtype"] == "float32", models  # serving dtype

            rows = X[:16]
            assigned = client.assign("smoke", rows, request_id="smoke-assign")
            assert assigned["request_id"] == "smoke-assign", assigned
            expected = summary.astype("float32").assign(np.asarray(rows))
            assert assigned["labels"] == expected.tolist(), (
                "served labels disagree with the in-process float32 kernel"
            )

            inertia = client.inertia("smoke", rows, deadline_ms=10_000)
            assert inertia["rows"] == 16 and inertia["inertia"] > 0, inertia

            metrics = client.metrics()
            counters = metrics["counters"]
            assert counters["requests_total"] >= 4, counters
            assert counters["batched_requests_total"] >= 2, counters
            assert "assign" in metrics["latency_seconds"], metrics

            # ------------------------------------------- SIGTERM drain
            # Fire a volley of requests and SIGTERM the server while they
            # are (likely) in flight.  The graceful-drain contract: every
            # request gets a real response — 200 if it drained, a typed
            # 503 if it arrived after shutdown began — and the process
            # exits 0.  No retries: a drain-time 503 is an expected
            # outcome here, not a failure to paper over.
            inflight_client = ServingClient(base, max_retries=0)
            outcomes = []
            lock = threading.Lock()

            def fire(i):
                try:
                    result = inflight_client.assign("smoke", X[:64])
                    outcome = ("ok", len(result["labels"]))
                except ServingClientError as exc:
                    outcome = ("error", exc.status, exc.error_type)
                except Exception as exc:  # connection torn down mid-request
                    outcome = ("refused", type(exc).__name__)
                with lock:
                    outcomes.append(outcome)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            # Let the volley connect and enqueue (the 300 ms batching
            # window holds it open), then pull the trigger mid-flight.
            time.sleep(0.25)
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(timeout=20)
            assert not any(t.is_alive() for t in threads), (
                "a request hung through graceful shutdown"
            )
            returncode = proc.wait(timeout=20)
            assert returncode == 0, (
                f"serve exited {returncode} on SIGTERM (want graceful 0)"
            )
            assert len(outcomes) == 8, outcomes
            served = sum(1 for o in outcomes if o[0] == "ok")
            typed_503 = sum(
                1 for o in outcomes if o[0] == "error" and o[1] in (503, 504)
            )
            # Connection-level failures (refused/reset, client error with
            # no status) mean the request never reached a live server —
            # also an acceptable drain outcome.
            refused = sum(
                1 for o in outcomes
                if o[0] == "refused" or (o[0] == "error" and o[1] is None)
            )
            assert served + typed_503 + refused == 8, outcomes
            assert all(o == ("ok", 64) for o in outcomes if o[0] == "ok")
            assert served + typed_503 >= 1, (
                f"no request was actually in flight at SIGTERM: {outcomes}"
            )

            print(
                f"smoke ok: {counters['requests_total']} requests, "
                f"{counters['batches_total']} batch(es), labels verified; "
                f"SIGTERM drain: {served} served / {typed_503} typed-503 / "
                f"{refused} refused, exit 0"
            )
            return 0
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    sys.exit(main())
