"""Resilience primitives for the serving subsystem.

PR 6 made the kernel stack servable; this module gives the server a
*failure model*.  The invariant everything here defends: **every
submitted ticket resolves** — with a result or a typed, retriable error —
no matter what the kernels, the worker thread, or the clients do.  Three
primitives, each independently testable with an injectable clock:

* :class:`HealthTracker` — the server's ``ok`` / ``degraded`` /
  ``draining`` state machine.  Incidents (worker restarts, opened
  breakers) mark the process degraded for a recovery window; shutdown
  marks it draining permanently.  Surfaced at ``/healthz`` so load
  balancers can steer traffic away *before* requests fail.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-``(model, op)``
  consecutive-failure breakers.  ``failure_threshold`` consecutive
  kernel failures open the circuit: requests for that key fast-fail with
  :class:`~repro.exceptions.CircuitOpenError` (HTTP 503 + ``Retry-After``)
  instead of queuing behind a poisoned model, while healthy models keep
  serving.  After ``reset_timeout_s`` one half-open probe is admitted; its
  outcome closes or re-opens the circuit.
* :class:`Watchdog` — detects a dead or hung batcher worker, fails the
  stranded in-flight tickets with
  :class:`~repro.exceptions.WorkerCrashedError`, restarts the worker, and
  reports the incident to the :class:`HealthTracker` and metrics
  (``worker_restarts_total``).

The deterministic fault-injection harness in
:mod:`repro.serving.faults` drives all three; the chaos suite
(``tests/test_serving_resilience.py``) asserts the resolve-everything
invariant under seeded schedules of kernel faults, worker kills and
expired deadlines.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import CircuitOpenError

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "HealthTracker",
    "Watchdog",
]

#: The three health states, in degradation order.
HEALTH_STATES = ("ok", "degraded", "draining")


class HealthTracker:
    """Thread-safe ``ok`` / ``degraded`` / ``draining`` state machine.

    ``degraded`` is sticky for ``recovery_s`` seconds after the last
    incident — a restarted worker that immediately crashes again keeps
    the state degraded rather than flapping.  ``draining`` (entered once,
    at shutdown) never transitions back.

    Parameters
    ----------
    recovery_s : float
        How long after the last incident the state stays ``degraded``.
    clock : callable
        Monotonic-seconds source; injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        recovery_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.recovery_s = float(recovery_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._degraded_until = -float("inf")
        self._draining = False
        self._last_reason: Optional[str] = None
        self._incidents = 0

    def mark_degraded(self, reason: str) -> None:
        """Record an incident; the state reads ``degraded`` for ``recovery_s``."""
        with self._lock:
            self._degraded_until = self._clock() + self.recovery_s
            self._last_reason = reason
            self._incidents += 1

    def start_draining(self) -> None:
        """Enter the terminal ``draining`` state (shutdown has begun)."""
        with self._lock:
            self._draining = True

    @property
    def state(self) -> str:
        with self._lock:
            if self._draining:
                return "draining"
            if self._clock() < self._degraded_until:
                return "degraded"
            return "ok"

    def snapshot(self) -> Dict:
        """JSON-shaped view for ``/healthz``."""
        with self._lock:
            if self._draining:
                state = "draining"
            elif self._clock() < self._degraded_until:
                state = "degraded"
            else:
                state = "ok"
            return {
                "state": state,
                "incidents": self._incidents,
                "last_incident": self._last_reason,
            }


class CircuitBreaker:
    """One consecutive-failure circuit breaker (closed / open / half-open).

    Not thread-safe on its own: the owning :class:`BreakerBoard` holds
    its lock around every transition.

    State machine:

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures (any success resets the streak) trip it open.
    * **open** — requests fast-fail until ``reset_timeout_s`` elapses.
    * **half-open** — one probe request is admitted; success closes the
      breaker, failure re-opens it for another full timeout.  A probe
      whose outcome never reports back (its ticket was shed on deadline,
      or its batch died before the kernel ran) would otherwise wedge the
      breaker half-open forever, so a fresh probe is re-admitted once the
      outstanding one is ``reset_timeout_s`` old.
    """

    __slots__ = (
        "failure_threshold", "reset_timeout_s",
        "failures", "state", "opened_at", "probe_at", "trips",
    )

    def __init__(self, failure_threshold: int, reset_timeout_s: float):
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.failures = 0
        self.state = "closed"
        self.opened_at = -float("inf")
        self.probe_at: Optional[float] = None  # outstanding probe's admit time
        self.trips = 0  # lifetime open transitions, for metrics

    def allow(self, now: float) -> Tuple[bool, float]:
        """May a request proceed?  Returns ``(admitted, retry_after)``."""
        if self.state == "closed":
            return True, 0.0
        remaining = (self.opened_at + self.reset_timeout_s) - now
        if self.state == "open" and remaining <= 0:
            self.state = "half_open"
            self.probe_at = None
        if self.state == "half_open":
            if (
                self.probe_at is None
                or now - self.probe_at >= self.reset_timeout_s
            ):
                self.probe_at = now  # admit one probe (or replace a lost one)
                return True, 0.0
            return False, (self.probe_at + self.reset_timeout_s) - now
        return False, max(remaining, 0.0)

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"
        self.probe_at = None

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this call *opened* the circuit."""
        if self.state == "half_open":
            self.state = "open"
            self.opened_at = now
            self.probe_at = None
            self.trips += 1
            return True
        self.failures += 1
        if self.state == "closed" and self.failures >= self.failure_threshold:
            self.state = "open"
            self.opened_at = now
            self.trips += 1
            return True
        return False


class BreakerBoard:
    """Thread-safe collection of per-key circuit breakers.

    Keys are ``(model, op)`` tuples — a poisoned ``refine`` path opens
    independently of the same model's ``assign`` path.  ``check`` raises
    :class:`~repro.exceptions.CircuitOpenError` when the key's breaker
    refuses; ``record_success`` / ``record_failure`` are called by the
    batcher worker after each kernel attempt.

    Parameters
    ----------
    failure_threshold : int
        Consecutive failures that open a circuit (default 5).
    reset_timeout_s : float
        Seconds an open circuit waits before admitting a half-open probe.
    metrics : ServingMetrics, optional
        ``breaker_open_total`` is incremented on every open transition.
    clock : callable
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def _get(self, key: Tuple[str, str]) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                self.failure_threshold, self.reset_timeout_s
            )
        return breaker

    def check(self, key: Tuple[str, str]) -> None:
        """Raise :class:`CircuitOpenError` unless ``key`` may proceed."""
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                return
            admitted, retry_after = breaker.allow(self._clock())
        if not admitted:
            if self.metrics is not None:
                self.metrics.increment("breaker_fastfail_total")
            model, op = key
            raise CircuitOpenError(
                f"circuit open for model {model!r} op {op!r} after "
                f"{self.failure_threshold} consecutive failures; "
                f"retry in {retry_after:.3f}s",
                retry_after=retry_after,
            )

    def record_success(self, key: Tuple[str, str]) -> None:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is not None:
                breaker.record_success()

    def record_failure(self, key: Tuple[str, str]) -> None:
        with self._lock:
            opened = self._get(key).record_failure(self._clock())
        if opened and self.metrics is not None:
            self.metrics.increment("breaker_open_total")

    def reset(self, model: str) -> None:
        """Forget every breaker for ``model`` (it was re-registered or
        evicted — a fresh artifact deserves a clean slate)."""
        with self._lock:
            for key in [k for k in self._breakers if k[0] == model]:
                del self._breakers[key]

    def open_keys(self) -> List[Dict]:
        """JSON-shaped list of non-closed breakers, for ``/healthz``."""
        now = self._clock()
        out: List[Dict] = []
        with self._lock:
            for (model, op), breaker in sorted(self._breakers.items()):
                if breaker.state == "closed":
                    continue
                remaining = (breaker.opened_at + breaker.reset_timeout_s) - now
                out.append({
                    "model": model,
                    "op": op,
                    "state": breaker.state,
                    "retry_after": round(max(remaining, 0.0), 3),
                })
        return out


class Watchdog:
    """Detects a dead or hung batcher worker and heals it.

    Every ``interval_s`` the watchdog checks the batcher:

    * **Dead worker** (thread exited while the batcher should be
      running — e.g. a ``BaseException`` escaped a kernel call): stranded
      in-flight tickets are failed with
      :class:`~repro.exceptions.WorkerCrashedError`, the worker is
      restarted (the queued backlog survives and is served by the new
      worker), ``worker_restarts_total`` is incremented, and the health
      tracker is marked degraded.
    * **Hung worker** (the current in-flight batch has been executing
      longer than ``hang_timeout_s``): the in-flight tickets are failed —
      so no client waits forever — and health degrades.  The thread
      itself is *not* killed (Python cannot safely kill a thread) and no
      second worker is started while it lives, preserving the
      one-kernel-at-a-time invariant; when the stuck call eventually
      returns, its attempt to resolve already-failed tickets is a no-op
      (ticket resolution is first-wins) and the worker resumes.

    ``check()`` is public and takes no lock the batcher's worker holds,
    so deterministic tests drive it directly instead of sleeping.
    """

    def __init__(
        self,
        batcher,
        *,
        interval_s: float = 0.5,
        hang_timeout_s: Optional[float] = 30.0,
        health: Optional[HealthTracker] = None,
        metrics=None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.batcher = batcher
        self.interval_s = float(interval_s)
        self.hang_timeout_s = (
            None if hang_timeout_s is None else float(hang_timeout_s)
        )
        self.health = health if health is not None else HealthTracker()
        self.metrics = metrics if metrics is not None else batcher.metrics
        self.restarts = 0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Watchdog":
        if not self.running:
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop_event.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(self.interval_s + 5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.check()
            except Exception:  # pragma: no cover - the watchdog must not die
                pass

    # ----------------------------------------------------------------- check
    def check(self) -> Optional[str]:
        """One health pass; returns the incident handled, if any."""
        batcher = self.batcher
        if not batcher.should_be_running:
            return None
        if not batcher.worker_alive:
            failed = batcher.fail_inflight(
                "the batcher worker died while this request was executing; "
                "the worker has been restarted — safe to retry"
            )
            self.restarts += 1
            self.metrics.increment("worker_restarts_total")
            batcher.start()
            self.health.mark_degraded(
                f"worker restarted ({failed} in-flight request(s) failed)"
            )
            return "restarted"
        if self.hang_timeout_s is not None:
            age = batcher.inflight_age()
            if age is not None and age > self.hang_timeout_s:
                failed = batcher.fail_inflight(
                    f"the batcher worker has been executing this batch for "
                    f"{age:.1f}s (> hang_timeout_s={self.hang_timeout_s}); "
                    "giving up on it — safe to retry"
                )
                if failed:
                    self.metrics.increment("worker_hangs_total")
                    self.health.mark_degraded(
                        f"worker hung ({failed} in-flight request(s) failed)"
                    )
                    return "hung"
        return None
