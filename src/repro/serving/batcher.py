"""Micro-batching engine: coalesce concurrent requests into one kernel call.

The factored assignment kernel's cost is dominated by per-call fixed work
(validation, Gram construction against the protocentroid sets, Python and
BLAS dispatch) when requests are small — exactly the serving shape, where
a request carries a handful of rows.  Scoring 64 eight-row requests in
one ``(512, m)`` sweep costs barely more than scoring one of them, which
is where the batched-vs-singleton throughput win comes from
(``.benchmarks/serving_throughput.json``).

:class:`MicroBatcher` collects that win:

* Requests (:meth:`MicroBatcher.submit`) enqueue into per-``(model, op)``
  queues and return a :class:`Ticket` the caller blocks on.
* A single worker thread coalesces each queue: a batch closes
  ``window_s`` seconds after its *first* request arrived, or as soon as
  it holds ``max_batch_requests`` requests / ``max_batch_rows`` rows,
  whichever comes first.  An oversize backlog is split across
  consecutive kernel calls; a single request larger than
  ``max_batch_rows`` runs alone (never rejected).
* Each request is validated individually at coalesce time, so one
  malformed request fails with its own
  :class:`~repro.exceptions.ValidationError` while the rest of the batch
  proceeds.  Mixed input dtypes are cast per-request to the model's
  serving dtype before concatenation.
* The worker thread is also the subsystem's concurrency control: every
  kernel call — including the mutating ``refine`` — executes on it, so
  reads never observe a half-updated model even though the HTTP front
  end is multi-threaded.

Synchronous use (tests, benchmarks, batch jobs) skips the thread:
construct with ``start=False``, :meth:`submit` requests, then call
:meth:`drain` to execute everything queued on the calling thread with the
same coalescing rules.

Failure model (the resilience layer, PR 7) — every submitted ticket
resolves, with a result or a typed error:

* **Deadlines.**  A ticket may carry an absolute monotonic ``deadline``;
  the worker sheds already-expired tickets at coalesce time (the kernel
  never runs for nobody) and :meth:`Ticket.result` maps both deadline
  expiry and wait timeout to
  :class:`~repro.exceptions.DeadlineExceededError` (HTTP 504).  A caller
  that gives up also cancels its ticket, so abandoned work is shed too.
* **Backpressure.**  ``max_queue_requests`` bounds each batch key's
  queue and ``max_pending_rows`` bounds the batcher-wide backlog;
  overflow sheds at submit with
  :class:`~repro.exceptions.OverloadedError` (HTTP 503 + ``Retry-After``)
  instead of growing memory without bound.
* **Circuit breakers.**  A per-``(model, op)``
  :class:`~repro.serving.resilience.BreakerBoard` counts consecutive
  kernel failures; an open circuit fast-fails submits with
  :class:`~repro.exceptions.CircuitOpenError` while healthy models keep
  serving.  Re-registering (or evicting) a model resets its breakers.
* **Self-healing.**  The worker tracks its in-flight batch; a
  :class:`~repro.serving.resilience.Watchdog` fails stranded tickets
  with :class:`~repro.exceptions.WorkerCrashedError` and restarts a dead
  worker.  Ticket resolution is first-wins, so a worker that comes back
  from a hang cannot clobber the watchdog's verdict.
* **Fault injection.**  ``fault_hook`` (see
  :mod:`repro.serving.faults`) runs at the top of every batch execution
  so the chaos suite can schedule kernel faults, hangs, worker kills and
  mid-flight evictions deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import (
    BatcherStoppedError,
    DeadlineExceededError,
    ModelNotFoundError,
    OverloadedError,
    ValidationError,
    WorkerCrashedError,
)
from .metrics import ServingMetrics
from .registry import ModelRegistry
from .resilience import BreakerBoard

__all__ = ["MicroBatcher", "Ticket"]

#: Operations the batcher knows how to coalesce.
OPS = ("assign", "inertia", "refine")


class Ticket:
    """A caller's handle on one submitted request.

    Resolution is **first-wins**: once a ticket carries a result or an
    error it never changes, so the worker, the watchdog and a shedding
    pass can race without clobbering each other's verdicts.
    """

    __slots__ = (
        "op", "rows", "submitted_at", "deadline",
        "_event", "_result", "_error", "_lock", "_cancelled",
    )

    def __init__(
        self,
        op: str,
        rows: int,
        submitted_at: float,
        deadline: Optional[float] = None,
    ):
        self.op = op
        self.rows = rows
        self.submitted_at = submitted_at
        #: Absolute monotonic deadline, or ``None`` (no deadline).
        self.deadline = deadline
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._cancelled = False

    def _resolve(self, result) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._result = result
            self._event.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._error = error
            self._event.set()

    def cancel(self) -> None:
        """Mark the ticket abandoned: the worker sheds it at coalesce
        time instead of running the kernel for a caller that left."""
        self._cancelled = True

    def expired(self, now: float) -> bool:
        """Should the worker shed this ticket instead of executing it?"""
        if self._cancelled:
            return True
        return self.deadline is not None and now >= self.deadline

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until the batch containing this request executed.

        Raises the request's own error (e.g. :class:`ValidationError`) if
        it failed, or :class:`~repro.exceptions.DeadlineExceededError`
        when the wait times out or the ticket's deadline passes — in
        which case the ticket is also cancelled, so the batcher sheds the
        now-pointless kernel work instead of running it for nobody.
        """
        wait = timeout
        if self.deadline is not None:
            remaining = self.deadline - time.monotonic()
            wait = remaining if wait is None else min(wait, remaining)
        if not self._event.wait(None if wait is None else max(wait, 0.0)):
            self.cancel()
            if (
                self.deadline is not None
                and time.monotonic() >= self.deadline
            ):
                raise DeadlineExceededError(
                    f"request deadline expired while waiting for the "
                    f"{self.op} batch to execute"
                )
            raise DeadlineExceededError(
                f"request did not complete within {timeout}s "
                "(is the batcher running?)"
            )
        if self._error is not None:
            raise self._error
        return self._result


class _Pending:
    """One enqueued request, pre-validation."""

    __slots__ = ("raw", "sample_weight", "ticket", "X")

    def __init__(self, raw, sample_weight, ticket: Ticket):
        self.raw = raw
        self.sample_weight = sample_weight
        self.ticket = ticket
        self.X = None  # set once validated against the model


#: Queue key: refine requests only coalesce with equal ``n_steps`` so one
#: kernel call has one well-defined sweep count.
_Key = Tuple[str, str, Optional[int]]


class MicroBatcher:
    """Coalesces concurrent requests per ``(model, op)`` into kernel calls.

    Parameters
    ----------
    registry : ModelRegistry
        Where model names resolve; the batcher executes against the
        registry's stored (serving-dtype) copies.
    window_s : float
        Batching window, measured from the first request of a batch
        (default 5 ms; the useful range is roughly 2–10 ms).  ``0``
        dispatches every drain immediately with whatever is queued.
    max_batch_requests, max_batch_rows : int
        A batch closes early when either cap is reached; backlogs beyond
        the caps split into consecutive kernel calls.
    max_queue_requests : int
        Backpressure: per-batch-key queue depth beyond which submits shed
        with :class:`~repro.exceptions.OverloadedError` (default 1024).
    max_pending_rows : int
        Backpressure: batcher-wide cap on queued data rows (default
        131072).  A submit that would exceed it sheds — except into an
        empty batcher, where any single request is admitted (mirroring
        the ``max_batch_rows`` never-reject rule).
    breaker_failures : int or None
        Consecutive kernel failures that open a ``(model, op)`` circuit
        (default 5); ``None`` disables circuit breaking.
    breaker_reset_s : float
        Seconds an open circuit waits before a half-open probe.
    refine_seed : int
        Seed of the reseed-draw stream shared by all coalesced
        ``refine`` calls (one persistent generator, so a serving process
        is replayable given its request log).
    start : bool
        Start the worker thread immediately (default).  ``start=False``
        leaves the batcher in synchronous mode — use :meth:`drain`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        window_s: float = 0.005,
        max_batch_requests: int = 256,
        max_batch_rows: int = 8192,
        max_queue_requests: int = 1024,
        max_pending_rows: int = 131072,
        breaker_failures: Optional[int] = 5,
        breaker_reset_s: float = 30.0,
        metrics: Optional[ServingMetrics] = None,
        refine_seed: int = 0,
        start: bool = True,
    ):
        if window_s < 0:
            raise ValidationError(f"window_s must be >= 0, got {window_s}")
        if max_batch_requests < 1 or max_batch_rows < 1:
            raise ValidationError(
                "max_batch_requests and max_batch_rows must be >= 1, got "
                f"{max_batch_requests} and {max_batch_rows}"
            )
        if max_queue_requests < 1 or max_pending_rows < 1:
            raise ValidationError(
                "max_queue_requests and max_pending_rows must be >= 1, got "
                f"{max_queue_requests} and {max_pending_rows}"
            )
        self.registry = registry
        self.window_s = float(window_s)
        self.max_batch_requests = int(max_batch_requests)
        self.max_batch_rows = int(max_batch_rows)
        self.max_queue_requests = int(max_queue_requests)
        self.max_pending_rows = int(max_pending_rows)
        self.metrics = metrics if metrics is not None else registry.metrics
        self.breakers: Optional[BreakerBoard] = (
            None
            if breaker_failures is None
            else BreakerBoard(
                failure_threshold=breaker_failures,
                reset_timeout_s=breaker_reset_s,
                metrics=self.metrics,
            )
        )
        #: Chaos hook (:mod:`repro.serving.faults`): called on the worker
        #: thread as ``hook(key, batch)`` at the top of every execution.
        self.fault_hook: Optional[Callable] = None
        self._refine_rng = np.random.default_rng(refine_seed)
        self._cond = threading.Condition()
        self._queues: "OrderedDict[_Key, List[_Pending]]" = OrderedDict()
        self._pending_rows = 0
        self._inflight: List[_Pending] = []
        self._inflight_since: Optional[float] = None
        self._stopping = False
        self._started = False
        self._worker: Optional[threading.Thread] = None
        registry.add_listener(self._on_registry_event)
        if start:
            self.start()

    def _on_registry_event(self, event: str, name: str) -> None:
        # A re-registered (or evicted) model gets a clean breaker slate:
        # the consecutive-failure count described the old artifact.
        if self.breakers is not None:
            self.breakers.reset(name)

    # ------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    #: Alias the watchdog reads: is the worker *thread* actually alive?
    worker_alive = running

    @property
    def should_be_running(self) -> bool:
        """True between :meth:`start` and :meth:`stop` — the watchdog
        restarts a dead worker only while this holds."""
        return self._started and not self._stopping

    def start(self) -> None:
        with self._cond:
            if self.running:
                return
            self._stopping = False
            self._started = True
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-batcher", daemon=True
            )
            self._worker.start()

    def stop(self, *, flush: bool = True, timeout: float = 10.0) -> None:
        """Stop the worker. ``flush=True`` executes the backlog first;
        ``flush=False`` fails every queued request with
        :class:`BatcherStoppedError`.

        ``timeout`` is the drain deadline: if a flushing worker has not
        finished the backlog within it, the stragglers are failed with
        :class:`BatcherStoppedError` (typed 503, retriable elsewhere)
        rather than left hanging — shutdown always terminates.
        """
        with self._cond:
            self._stopping = True
            self._started = False
            if not flush:
                self._fail_queued_locked(
                    BatcherStoppedError("batcher stopped before execution")
                )
            self._cond.notify_all()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout)
            if worker.is_alive():
                # Drain deadline exceeded: fail the backlog and any
                # in-flight batch so no caller blocks past shutdown.  The
                # worker exits after its current kernel call returns
                # (first-wins resolution makes the race benign).
                with self._cond:
                    self._fail_queued_locked(
                        BatcherStoppedError(
                            f"batcher draining deadline ({timeout}s) "
                            "exceeded at shutdown"
                        )
                    )
                    inflight, self._inflight = self._inflight, []
                    self._inflight_since = None
                    self._cond.notify_all()
                for pending in inflight:
                    pending.ticket._fail(
                        BatcherStoppedError(
                            f"batcher draining deadline ({timeout}s) "
                            "exceeded with this request in flight"
                        )
                    )
        self._worker = None

    def _fail_queued_locked(self, error: BaseException) -> None:
        """Fail and clear every queued request (condition held)."""
        for queue in self._queues.values():
            for pending in queue:
                pending.ticket._fail(error)
        self._queues.clear()
        self._pending_rows = 0

    # -------------------------------------------------- watchdog interface
    def fail_inflight(self, message: str) -> int:
        """Fail the current in-flight batch with
        :class:`~repro.exceptions.WorkerCrashedError`; returns how many
        tickets were actually failed.  Called by the watchdog when the
        worker died or hung mid-batch."""
        with self._cond:
            inflight, self._inflight = self._inflight, []
            self._inflight_since = None
        failed = 0
        for pending in inflight:
            if not pending.ticket.done():
                pending.ticket._fail(WorkerCrashedError(message))
                failed += 1
        return failed

    def inflight_age(self) -> Optional[float]:
        """Seconds the current in-flight batch has been executing, or
        ``None`` when the worker is between batches."""
        with self._cond:
            if self._inflight and self._inflight_since is not None:
                return time.monotonic() - self._inflight_since
        return None

    @property
    def pending_rows(self) -> int:
        """Queued (not yet coalesced) data rows, for metrics and tests."""
        with self._cond:
            return self._pending_rows

    # --------------------------------------------------------------- submit
    def submit(
        self,
        op: str,
        model_name: str,
        rows,
        *,
        n_steps: int = 1,
        sample_weight=None,
        deadline: Optional[float] = None,
    ) -> Ticket:
        """Enqueue one request; returns a :class:`Ticket` to block on.

        ``rows`` is anything array-like of shape ``(n, m)``; full
        validation (feature count, finiteness, dtype cast) happens at
        coalesce time so a bad payload fails only its own ticket.
        ``deadline`` is an absolute ``time.monotonic()`` instant: a
        ticket still queued past it is shed instead of executed, and
        :meth:`Ticket.result` raises
        :class:`~repro.exceptions.DeadlineExceededError` once it passes.

        Fast-fail paths (the request never queues): an unknown model
        (:class:`~repro.exceptions.ModelNotFoundError`), an open circuit
        for ``(model, op)`` (:class:`~repro.exceptions.CircuitOpenError`),
        a full queue or row backlog
        (:class:`~repro.exceptions.OverloadedError`).
        """
        if op not in OPS:
            raise ValidationError(f"op must be one of {OPS}, got {op!r}")
        if op == "refine" and int(n_steps) < 1:
            raise ValidationError(f"n_steps must be >= 1, got {n_steps}")
        # Resolve the model eagerly: an unknown name should fail the caller
        # now (HTTP 404), not poison a batch later.
        self.registry.get(model_name)
        if self.breakers is not None:
            self.breakers.check((model_name, op))
        raw = np.asarray(rows)
        n_rows = int(raw.shape[0]) if raw.ndim >= 1 else 1
        key: _Key = (model_name, op, int(n_steps) if op == "refine" else None)
        ticket = Ticket(op, n_rows, time.monotonic(), deadline)
        pending = _Pending(raw, sample_weight, ticket)
        retry_after = max(self.window_s, 0.05)
        with self._cond:
            if self._stopping:
                raise BatcherStoppedError("batcher is stopped; no new requests")
            queue = self._queues.get(key)
            depth = 0 if queue is None else len(queue)
            if depth >= self.max_queue_requests:
                self.metrics.increment("shed_overload_total")
                raise OverloadedError(
                    f"queue for model {model_name!r} op {op!r} is full "
                    f"({depth} requests waiting); shedding instead of "
                    "growing without bound",
                    retry_after=retry_after,
                )
            if (
                self._pending_rows > 0
                and self._pending_rows + n_rows > self.max_pending_rows
            ):
                self.metrics.increment("shed_overload_total")
                raise OverloadedError(
                    f"batcher backlog is full ({self._pending_rows} rows "
                    f"pending, cap {self.max_pending_rows}); shedding",
                    retry_after=retry_after,
                )
            self._queues.setdefault(key, []).append(pending)
            self._pending_rows += n_rows
            self._cond.notify_all()
        return ticket

    # ---------------------------------------------------------- coalescing
    def _oldest_key(self) -> Optional[_Key]:
        """The queue whose head request has waited longest (FIFO fairness)."""
        best, best_t = None, np.inf
        for key, queue in self._queues.items():
            if queue and queue[0].ticket.submitted_at < best_t:
                best, best_t = key, queue[0].ticket.submitted_at
            elif not queue:
                continue
        return best

    def _take_batch(self, key: _Key) -> List[_Pending]:
        """Pop up to the caps from ``key``'s queue (always at least one).

        Called with the condition held.  A single request larger than
        ``max_batch_rows`` is taken alone; the remainder of an oversize
        backlog stays queued for the next (immediate) kernel call.
        """
        queue = self._queues.get(key, [])
        batch: List[_Pending] = []
        rows = 0
        while queue:
            head = queue[0]
            if batch and (
                len(batch) >= self.max_batch_requests
                or rows + head.ticket.rows > self.max_batch_rows
            ):
                break
            batch.append(queue.pop(0))
            rows += head.ticket.rows
            self._pending_rows -= head.ticket.rows
        if not queue:
            self._queues.pop(key, None)
        return batch

    def _batch_ready(self, key: _Key, now: float) -> bool:
        queue = self._queues.get(key)
        if not queue:
            return False
        if now >= queue[0].ticket.submitted_at + self.window_s:
            return True
        if len(queue) >= self.max_batch_requests:
            return True
        return sum(p.ticket.rows for p in queue) >= self.max_batch_rows

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queues and not self._stopping:
                    self._cond.wait()
                if self._stopping and not self._queues:
                    return
                key = self._oldest_key()
                # Hold the batch open until the window (from its first
                # request) expires or a cap fills; new arrivals notify.
                while not self._stopping and not self._batch_ready(
                    key, time.monotonic()
                ):
                    queue = self._queues.get(key)
                    if not queue:
                        break
                    remaining = (
                        queue[0].ticket.submitted_at + self.window_s
                    ) - time.monotonic()
                    self._cond.wait(timeout=max(remaining, 0.0))
                batch = self._take_batch(key)
                if batch:
                    # Published for the watchdog: if this thread dies (or
                    # hangs) inside _run_batch, fail_inflight() resolves
                    # these tickets.  Deliberately NOT cleared in a
                    # ``finally`` — a BaseException must leave the batch
                    # visible for the watchdog to reap.
                    self._inflight = batch
                    self._inflight_since = time.monotonic()
            if batch:
                self._run_batch(key, batch)
                with self._cond:
                    if self._inflight is batch:
                        self._inflight = []
                        self._inflight_since = None

    def drain(self) -> int:
        """Synchronously execute everything queued; returns requests served.

        The synchronous twin of the worker loop (same coalescing caps, no
        window wait): benchmarks and batch jobs call ``submit`` repeatedly
        and then ``drain`` on their own thread.  Must not race a running
        worker — intended for ``start=False`` batchers.
        """
        served = 0
        while True:
            with self._cond:
                key = self._oldest_key()
                batch = self._take_batch(key) if key is not None else []
            if not batch:
                return served
            self._run_batch(key, batch)
            served += len(batch)

    # ------------------------------------------------------------ execution
    def _validate(self, batch: List[_Pending], model) -> List[_Pending]:
        """Per-request validation; failures fail only their own ticket."""
        valid: List[_Pending] = []
        for pending in batch:
            try:
                pending.X = model._check_features(pending.raw)
                if pending.sample_weight is not None:
                    weight = np.asarray(pending.sample_weight, dtype=np.float64)
                    if weight.shape != (pending.X.shape[0],):
                        raise ValidationError(
                            f"sample_weight has shape {weight.shape}, "
                            f"expected ({pending.X.shape[0]},)"
                        )
                    pending.sample_weight = weight
            except Exception as exc:
                pending.ticket._fail(exc)
            else:
                valid.append(pending)
        return valid

    def _run_batch(self, key: _Key, batch: List[_Pending]) -> None:
        model_name, op, n_steps = key
        breaker_key = (model_name, op)
        # Shed expired/cancelled tickets *before* any kernel work: running
        # the batch for a caller whose deadline passed (or who gave up)
        # wastes worker time nobody is waiting on.
        now = time.monotonic()
        live: List[_Pending] = []
        for pending in batch:
            ticket = pending.ticket
            if ticket.done():
                continue  # already resolved (watchdog, shutdown race)
            if ticket.expired(now):
                self.metrics.increment("deadline_expired_total")
                ticket._fail(
                    DeadlineExceededError(
                        "request deadline expired while queued; the "
                        "batcher shed it at coalesce time"
                    )
                )
            else:
                live.append(pending)
        if not live:
            return
        try:
            hook = self.fault_hook
            if hook is not None:
                hook(key, live)  # chaos: may raise, sleep, evict, or kill
            model = self.registry.get(model_name)
        except ModelNotFoundError as exc:
            # Evicted between submit and execution: the model is gone, not
            # broken — fail the batch but leave the breaker alone.
            for pending in live:
                pending.ticket._fail(exc)
            return
        except Exception as exc:
            for pending in live:
                pending.ticket._fail(exc)
            if self.breakers is not None:
                self.breakers.record_failure(breaker_key)
            return
        valid = self._validate(live, model)
        if not valid:
            return
        started = time.perf_counter()
        try:
            results = self._execute(model, op, n_steps, valid)
        except Exception as exc:
            for pending in valid:
                pending.ticket._fail(exc)
            if self.breakers is not None:
                self.breakers.record_failure(breaker_key)
            return
        if self.breakers is not None:
            self.breakers.record_success(breaker_key)
        elapsed = time.perf_counter() - started
        done = time.monotonic()
        n_rows = sum(p.X.shape[0] for p in valid)
        self.metrics.increment("batches_total")
        self.metrics.increment("batched_requests_total", len(valid))
        self.metrics.increment("batch_rows_total", n_rows)
        self.metrics.record_max("batch_size_max", len(valid))
        self.metrics.record_latency("batch_exec", elapsed)
        for pending, result in zip(valid, results):
            self.metrics.record_latency(op, done - pending.ticket.submitted_at)
            pending.ticket._resolve(result)

    def _execute(self, model, op: str, n_steps, valid: List[_Pending]) -> List:
        """One kernel call for the whole batch; per-request results."""
        X = np.concatenate([p.X for p in valid]) if len(valid) > 1 else valid[0].X
        offsets = np.cumsum([0] + [p.X.shape[0] for p in valid])
        if op == "refine":
            weight = None
            if any(p.sample_weight is not None for p in valid):
                weight = np.concatenate(
                    [
                        p.sample_weight
                        if p.sample_weight is not None
                        else np.ones(p.X.shape[0])
                        for p in valid
                    ]
                ).astype(X.dtype)
            model.refine(
                X, n_steps=n_steps, sample_weight=weight,
                random_state=self._refine_rng,
            )
        labels, distances = model.score(X)
        out = []
        for i, pending in enumerate(valid):
            sl = slice(offsets[i], offsets[i + 1])
            if op == "assign":
                out.append({"labels": labels[sl]})
            elif op == "inertia":
                out.append(
                    {"inertia": float(distances[sl].sum(dtype=np.float64)),
                     "rows": int(offsets[i + 1] - offsets[i])}
                )
            else:  # refine: post-refine fit of this request's own rows
                out.append(
                    {"refined": True, "n_steps": int(n_steps),
                     "rows": int(offsets[i + 1] - offsets[i]),
                     "inertia": float(distances[sl].sum(dtype=np.float64))}
                )
        return out
