"""Stdlib HTTP front end for the serving subsystem.

Built on :mod:`http.server`'s ``ThreadingHTTPServer`` — one OS thread per
connection, no dependency beyond the standard library, which keeps
``install_requires`` at numpy+scipy.  Handler threads never touch a model
directly: every scoring request goes through the
:class:`~repro.serving.batcher.MicroBatcher`, whose single worker thread
is the subsystem's concurrency control (and the source of the batching
throughput win).

Endpoints (all JSON; see ``docs/serving.md`` for the full schemas):

====================================  ======================================
``GET  /healthz``                     liveness + model count + uptime
``GET  /metrics``                     :meth:`ServingMetrics.snapshot`
``GET  /v1/models``                   descriptions of every model
``GET  /v1/models/<name>``            one model's description
``POST /v1/models/<name>/assign``     ``{"rows": [[...], ...]}`` → labels
``POST /v1/models/<name>/inertia``    rows → summed squared distance
``POST /v1/models/<name>/refine``     rows (+ ``n_steps``,
                                      ``sample_weight``) → refit stats
====================================  ======================================

Cross-cutting behavior:

* **Request IDs** — every response carries ``request_id`` in the body and
  an ``X-Request-ID`` header; a client-supplied ``X-Request-ID`` is
  echoed, otherwise one is generated.  The access log quotes it.
* **Rate limiting** — an optional token bucket guards the ``/v1/`` tree
  (``/healthz`` and ``/metrics`` stay unthrottled for probes); rejected
  requests get 429 with ``Retry-After``.
* **Error mapping** — exceptions map to status codes by type
  (:data:`STATUS_BY_EXCEPTION`); the body is
  ``{"error": {"type": ..., "message": ...}, "request_id": ...}``.
  Anything not in the :mod:`repro.exceptions` hierarchy is a 500 with the
  message suppressed (internal details never leak to clients).
"""

from __future__ import annotations

import itertools
import json
import logging
import re
import secrets
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..exceptions import (
    BatcherStoppedError,
    ModelNotFoundError,
    RateLimitError,
    ServingError,
    ValidationError,
)
from .batcher import MicroBatcher
from .metrics import ServingMetrics
from .ratelimit import TokenBucket
from .registry import ModelRegistry

__all__ = [
    "EndpointNotFoundError",
    "ServingServer",
    "create_server",
    "STATUS_BY_EXCEPTION",
]

logger = logging.getLogger("repro.serving")


class EndpointNotFoundError(ServingError):
    """No route matches the request's method and path (HTTP 404)."""


#: Exception-type → HTTP status mapping, most-specific first (the handler
#: walks this in order with ``isinstance``).
STATUS_BY_EXCEPTION: Tuple[Tuple[type, int], ...] = (
    (ModelNotFoundError, 404),
    (EndpointNotFoundError, 404),
    (RateLimitError, 429),
    (BatcherStoppedError, 503),
    (ValidationError, 400),       # includes SummaryFormatError
    (ServingError, 500),
)

_MODEL_ROUTE = re.compile(r"^/v1/models/(?P<name>[^/]+)(?:/(?P<op>[^/]+))?$")


def _status_for(exc: BaseException) -> int:
    for exc_type, status in STATUS_BY_EXCEPTION:
        if isinstance(exc, exc_type):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    # ------------------------------------------------------------- plumbing
    @property
    def _metrics(self) -> ServingMetrics:
        return self.server.metrics

    def _request_id(self) -> str:
        supplied = self.headers.get("X-Request-ID")
        if supplied:
            return supplied[:128]
        return (
            f"req-{next(self.server._request_counter):06d}-"
            f"{secrets.token_hex(4)}"
        )

    def _send_json(self, status: int, payload: dict, request_id: str) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-ID", request_id)
        if status == 429 and "retry_after" in payload.get("error", {}):
            self.send_header(
                "Retry-After", f"{payload['error']['retry_after']:.3f}"
            )
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, exc: BaseException, request_id: str
    ) -> int:
        status = _status_for(exc)
        error = {"type": type(exc).__name__, "message": str(exc)}
        if status == 500 and not isinstance(exc, ServingError):
            # Never leak internals of unexpected failures to clients.
            error = {"type": "InternalError", "message": "internal server error"}
            logger.exception("unhandled error serving %s", self.path)
        if isinstance(exc, RateLimitError):
            error["retry_after"] = exc.retry_after
        self._metrics.increment("errors_total")
        self._metrics.increment(f"errors_{status}_total")
        self._send_json(status, {"error": error, "request_id": request_id}, request_id)
        return status

    def log_message(self, fmt, *args):  # quiet the default stderr spam
        if self.server.log_requests:
            logger.info(fmt, *args)

    def _access_log(self, method, status, request_id, elapsed, rows=None):
        if self.server.log_requests:
            logger.info(
                "%s %s -> %d rid=%s rows=%s %.2fms",
                method, self.path, status, request_id,
                "-" if rows is None else rows, elapsed * 1e3,
            )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.max_body_bytes:
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit"
            )
        if length == 0:
            raise ValidationError("request body is required and must be JSON")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        return body

    def _rate_limit(self) -> None:
        bucket = self.server.bucket
        if bucket is not None:
            try:
                bucket.acquire_or_raise()
            except RateLimitError:
                self._metrics.increment("rate_limited_total")
                raise

    # --------------------------------------------------------------- routes
    def do_GET(self):
        self._handle("GET")

    def do_POST(self):
        self._handle("POST")

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        request_id = self._request_id()
        self._metrics.increment("requests_total")
        rows = None
        status = 500
        try:
            status, payload, rows = self._route(method)
            payload["request_id"] = request_id
            self._send_json(status, payload, request_id)
        except (BrokenPipeError, ConnectionResetError):
            return
        except Exception as exc:
            status = self._send_error_json(exc, request_id)
        finally:
            elapsed = time.perf_counter() - started
            self._metrics.record_latency("http", elapsed)
            self._access_log(method, status, request_id, elapsed, rows)

    def _route(self, method: str):
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "models": len(self.server.registry),
                "batcher_running": self.server.batcher.running,
                "uptime_seconds": round(
                    time.monotonic() - self.server.started_at, 3
                ),
            }, None
        if method == "GET" and path == "/metrics":
            return 200, self._metrics.snapshot(), None
        if path.startswith("/v1/"):
            self._rate_limit()
        if method == "GET" and path == "/v1/models":
            return 200, {"models": self.server.registry.describe_all()}, None
        match = _MODEL_ROUTE.match(path)
        if match is None:
            raise EndpointNotFoundError(f"no such endpoint: {method} {path}")
        name, op = match.group("name"), match.group("op")
        if op is None:
            if method != "GET":
                raise EndpointNotFoundError(f"no such endpoint: {method} {path}")
            return 200, self.server.registry.describe(name), None
        if method != "POST" or op not in ("assign", "inertia", "refine"):
            raise EndpointNotFoundError(f"no such endpoint: {method} {path}")
        return self._score(name, op)

    def _score(self, name: str, op: str):
        body = self._read_body()
        if "rows" not in body:
            raise ValidationError('request body must contain "rows"')
        kwargs = {}
        if op == "refine":
            kwargs["n_steps"] = body.get("n_steps", 1)
            if not isinstance(kwargs["n_steps"], int):
                raise ValidationError(
                    f"n_steps must be an integer, got {kwargs['n_steps']!r}"
                )
            if body.get("sample_weight") is not None:
                kwargs["sample_weight"] = body["sample_weight"]
        ticket = self.server.batcher.submit(op, name, body["rows"], **kwargs)
        result = ticket.result(timeout=self.server.request_timeout)
        payload = {"model": name}
        if op == "assign":
            payload["labels"] = result["labels"].tolist()
        else:
            payload.update(result)
        return 200, payload, ticket.rows


class ServingServer(ThreadingHTTPServer):
    """The serving process: registry + micro-batcher + HTTP front end.

    Construct via :func:`create_server`, then either :meth:`start` (serve
    on a background thread — tests, notebooks, the README quickstart) or
    :meth:`serve_forever` on the current thread (the CLI).  Always pair
    with :meth:`stop`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        registry: ModelRegistry,
        *,
        batcher: Optional[MicroBatcher] = None,
        window_s: float = 0.005,
        max_batch_requests: int = 256,
        max_batch_rows: int = 8192,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        request_timeout: float = 30.0,
        max_body_bytes: int = 16 * 1024 * 1024,
        log_requests: bool = True,
    ):
        self.registry = registry
        self.metrics = registry.metrics
        self.batcher = batcher if batcher is not None else MicroBatcher(
            registry,
            window_s=window_s,
            max_batch_requests=max_batch_requests,
            max_batch_rows=max_batch_rows,
            metrics=self.metrics,
            start=False,
        )
        self.bucket = (
            TokenBucket(rate_limit, burst) if rate_limit is not None else None
        )
        self.request_timeout = float(request_timeout)
        self.max_body_bytes = int(max_body_bytes)
        self.log_requests = bool(log_requests)
        self.started_at = time.monotonic()
        self._request_counter = itertools.count(1)
        self._serve_thread: Optional[threading.Thread] = None
        self._loop_entered = False
        super().__init__(address, _Handler)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServingServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if not self.batcher.running:
            self.batcher.start()
        self.started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serving-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, poll_interval: float = 0.25) -> None:
        if not self.batcher.running:
            self.batcher.start()
        self._loop_entered = True
        super().serve_forever(poll_interval)

    def stop(self) -> None:
        """Shut down the HTTP loop, then drain and stop the batcher.

        Safe on a server that never served: ``BaseServer.shutdown`` blocks
        forever unless ``serve_forever`` ran, so it is skipped then.
        """
        if self._loop_entered:
            self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(10.0)
            self._serve_thread = None
        self.server_close()
        self.batcher.stop(flush=True)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def create_server(
    registry: ModelRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> ServingServer:
    """Bind a :class:`ServingServer` (``port=0`` picks a free port).

    Keyword arguments are forwarded to :class:`ServingServer`: batching
    knobs (``window_s``, ``max_batch_requests``, ``max_batch_rows``),
    ``rate_limit``/``burst`` (requests per second; ``None`` disables),
    ``request_timeout``, ``max_body_bytes`` and ``log_requests``.
    """
    return ServingServer((host, port), registry, **kwargs)
