"""Stdlib HTTP front end for the serving subsystem.

Built on :mod:`http.server`'s ``ThreadingHTTPServer`` — one OS thread per
connection, no dependency beyond the standard library, which keeps
``install_requires`` at numpy+scipy.  Handler threads never touch a model
directly: every scoring request goes through the
:class:`~repro.serving.batcher.MicroBatcher`, whose single worker thread
is the subsystem's concurrency control (and the source of the batching
throughput win).

Endpoints (all JSON; see ``docs/serving.md`` for the full schemas):

====================================  ======================================
``GET  /healthz``                     liveness + model count + uptime
``GET  /metrics``                     :meth:`ServingMetrics.snapshot`
``GET  /v1/models``                   descriptions of every model
``GET  /v1/models/<name>``            one model's description
``POST /v1/models/<name>/assign``     ``{"rows": [[...], ...]}`` → labels
``POST /v1/models/<name>/inertia``    rows → summed squared distance
``POST /v1/models/<name>/refine``     rows (+ ``n_steps``,
                                      ``sample_weight``) → refit stats
====================================  ======================================

Cross-cutting behavior:

* **Request IDs** — every response carries ``request_id`` in the body and
  an ``X-Request-ID`` header; a client-supplied ``X-Request-ID`` is
  echoed, otherwise one is generated.  The access log quotes it.
* **Rate limiting** — an optional token bucket guards the ``/v1/`` tree
  (``/healthz`` and ``/metrics`` stay unthrottled for probes); rejected
  requests get 429 with ``Retry-After``.
* **Error mapping** — exceptions map to status codes by type
  (:data:`STATUS_BY_EXCEPTION`); the body is
  ``{"error": {"type": ..., "message": ...}, "request_id": ...}``.
  Anything not in the :mod:`repro.exceptions` hierarchy is a 500 with the
  message suppressed (internal details never leak to clients).
* **Failure model** — scoring requests may carry an ``X-Deadline-Ms``
  header (expiry → typed 504, and the batcher sheds the dead work);
  open circuit breakers and backpressure shed with 503 + ``Retry-After``;
  a watchdog restarts a dead batcher worker and ``/healthz`` reports the
  ``ok``/``degraded``/``draining`` state machine (503 while draining).
  See ``docs/serving.md`` §"Operating under failure".
"""

from __future__ import annotations

import itertools
import json
import logging
import re
import secrets
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..exceptions import (
    BatcherStoppedError,
    CircuitOpenError,
    DeadlineExceededError,
    ModelNotFoundError,
    OverloadedError,
    RateLimitError,
    RetriableServingError,
    ServingError,
    ValidationError,
    WorkerCrashedError,
)
from .batcher import MicroBatcher
from .metrics import ServingMetrics
from .ratelimit import TokenBucket
from .registry import ModelRegistry
from .resilience import HealthTracker, Watchdog

__all__ = [
    "EndpointNotFoundError",
    "ServingServer",
    "create_server",
    "STATUS_BY_EXCEPTION",
]

logger = logging.getLogger("repro.serving")


class EndpointNotFoundError(ServingError):
    """No route matches the request's method and path (HTTP 404)."""


#: Exception-type → HTTP status mapping, most-specific first (the handler
#: walks this in order with ``isinstance``).  Every retriable condition
#: (open breaker, shed load, crashed worker, draining server) is a typed
#: 503 and the deadline family is 504 — clients can key retry policy off
#: the status class without parsing messages.
STATUS_BY_EXCEPTION: Tuple[Tuple[type, int], ...] = (
    (ModelNotFoundError, 404),
    (EndpointNotFoundError, 404),
    (RateLimitError, 429),
    (DeadlineExceededError, 504),
    (CircuitOpenError, 503),
    (OverloadedError, 503),
    (RetriableServingError, 503),
    (WorkerCrashedError, 503),
    (BatcherStoppedError, 503),
    (ValidationError, 400),       # includes SummaryFormatError
    (ServingError, 500),
)

_MODEL_ROUTE = re.compile(r"^/v1/models/(?P<name>[^/]+)(?:/(?P<op>[^/]+))?$")


def _status_for(exc: BaseException) -> int:
    for exc_type, status in STATUS_BY_EXCEPTION:
        if isinstance(exc, exc_type):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    # ------------------------------------------------------------- plumbing
    @property
    def _metrics(self) -> ServingMetrics:
        return self.server.metrics

    def _request_id(self) -> str:
        supplied = self.headers.get("X-Request-ID")
        if supplied:
            return supplied[:128]
        return (
            f"req-{next(self.server._request_counter):06d}-"
            f"{secrets.token_hex(4)}"
        )

    def _send_json(self, status: int, payload: dict, request_id: str) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-ID", request_id)
        # 429/503 rejections carry the server's retry hint as a header
        # too, so dumb clients (and proxies) can honor it without parsing
        # the body.
        if status in (429, 503) and "retry_after" in payload.get("error", {}):
            self.send_header(
                "Retry-After", f"{payload['error']['retry_after']:.3f}"
            )
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, exc: BaseException, request_id: str
    ) -> int:
        status = _status_for(exc)
        error = {"type": type(exc).__name__, "message": str(exc)}
        if status == 500 and not isinstance(exc, ServingError):
            # Never leak internals of unexpected failures to clients.
            error = {"type": "InternalError", "message": "internal server error"}
            logger.exception("unhandled error serving %s", self.path)
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            error["retry_after"] = float(retry_after)
        self._metrics.increment("errors_total")
        self._metrics.increment(f"errors_{status}_total")
        self._send_json(status, {"error": error, "request_id": request_id}, request_id)
        return status

    def log_message(self, fmt, *args):  # quiet the default stderr spam
        if self.server.log_requests:
            logger.info(fmt, *args)

    def _access_log(self, method, status, request_id, elapsed, rows=None):
        if self.server.log_requests:
            logger.info(
                "%s %s -> %d rid=%s rows=%s %.2fms",
                method, self.path, status, request_id,
                "-" if rows is None else rows, elapsed * 1e3,
            )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.max_body_bytes:
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit"
            )
        if length == 0:
            raise ValidationError("request body is required and must be JSON")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        return body

    def _rate_limit(self) -> None:
        bucket = self.server.bucket
        if bucket is not None:
            try:
                bucket.acquire_or_raise()
            except RateLimitError:
                self._metrics.increment("rate_limited_total")
                raise

    # --------------------------------------------------------------- routes
    def do_GET(self):
        self._handle("GET")

    def do_POST(self):
        self._handle("POST")

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        request_id = self._request_id()
        self._metrics.increment("requests_total")
        rows = None
        status = 500
        try:
            status, payload, rows = self._route(method)
            payload["request_id"] = request_id
            self._send_json(status, payload, request_id)
        except (BrokenPipeError, ConnectionResetError):
            return
        except Exception as exc:
            status = self._send_error_json(exc, request_id)
        finally:
            elapsed = time.perf_counter() - started
            self._metrics.record_latency("http", elapsed)
            self._access_log(method, status, request_id, elapsed, rows)

    def _deadline(self) -> Optional[float]:
        """Absolute monotonic deadline for this request, or ``None``.

        ``X-Deadline-Ms`` (client budget) and the server-side default
        (``request_deadline_ms``) compose by taking the *tighter* of the
        two — a client may shorten its budget, never extend the server's.
        """
        header = self.headers.get("X-Deadline-Ms")
        default_ms = self.server.request_deadline_ms
        if header is None:
            ms = default_ms
        else:
            try:
                ms = float(header)
            except ValueError:
                raise ValidationError(
                    f"X-Deadline-Ms must be a number of milliseconds, "
                    f"got {header!r}"
                )
            if not ms > 0:
                raise ValidationError(
                    f"X-Deadline-Ms must be > 0, got {header!r}"
                )
            if default_ms is not None:
                ms = min(ms, default_ms)
        if ms is None:
            return None
        return time.monotonic() + ms / 1e3

    def _route(self, method: str):
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            health = self.server.health.snapshot()
            payload = {
                "status": health["state"],
                "models": len(self.server.registry),
                "batcher_running": self.server.batcher.running,
                "worker_restarts": self.server.metrics.counter(
                    "worker_restarts_total"
                ),
                "open_breakers": (
                    []
                    if self.server.batcher.breakers is None
                    else self.server.batcher.breakers.open_keys()
                ),
                "last_incident": health["last_incident"],
                "uptime_seconds": round(
                    time.monotonic() - self.server.started_at, 3
                ),
            }
            # A draining server tells its load balancer to stop sending
            # traffic; ok and degraded both keep admitting requests.
            return (503 if health["state"] == "draining" else 200), payload, None
        if method == "GET" and path == "/metrics":
            return 200, self._metrics.snapshot(), None
        if path.startswith("/v1/"):
            self._rate_limit()
        if method == "GET" and path == "/v1/models":
            return 200, {"models": self.server.registry.describe_all()}, None
        match = _MODEL_ROUTE.match(path)
        if match is None:
            raise EndpointNotFoundError(f"no such endpoint: {method} {path}")
        name, op = match.group("name"), match.group("op")
        if op is None:
            if method != "GET":
                raise EndpointNotFoundError(f"no such endpoint: {method} {path}")
            return 200, self.server.registry.describe(name), None
        if method != "POST" or op not in ("assign", "inertia", "refine"):
            raise EndpointNotFoundError(f"no such endpoint: {method} {path}")
        return self._score(name, op)

    def _score(self, name: str, op: str):
        body = self._read_body()
        if "rows" not in body:
            raise ValidationError('request body must contain "rows"')
        kwargs = {}
        if op == "refine":
            kwargs["n_steps"] = body.get("n_steps", 1)
            if not isinstance(kwargs["n_steps"], int):
                raise ValidationError(
                    f"n_steps must be an integer, got {kwargs['n_steps']!r}"
                )
            if body.get("sample_weight") is not None:
                kwargs["sample_weight"] = body["sample_weight"]
        ticket = self.server.batcher.submit(
            op, name, body["rows"], deadline=self._deadline(), **kwargs
        )
        # The ticket enforces its own deadline inside result(); the
        # server-wide request_timeout is the backstop when no deadline is
        # set.  Either expiry raises DeadlineExceededError (504) and
        # cancels the ticket so the batcher sheds the dead work.
        result = ticket.result(timeout=self.server.request_timeout)
        payload = {"model": name}
        if op == "assign":
            payload["labels"] = result["labels"].tolist()
        else:
            payload.update(result)
        return 200, payload, ticket.rows


class ServingServer(ThreadingHTTPServer):
    """The serving process: registry + micro-batcher + HTTP front end.

    Construct via :func:`create_server`, then either :meth:`start` (serve
    on a background thread — tests, notebooks, the README quickstart) or
    :meth:`serve_forever` on the current thread (the CLI).  Always pair
    with :meth:`stop`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        registry: ModelRegistry,
        *,
        batcher: Optional[MicroBatcher] = None,
        window_s: float = 0.005,
        max_batch_requests: int = 256,
        max_batch_rows: int = 8192,
        max_queue_requests: int = 1024,
        max_pending_rows: int = 131072,
        breaker_failures: Optional[int] = 5,
        breaker_reset_s: float = 30.0,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        request_timeout: float = 30.0,
        request_deadline_ms: Optional[float] = None,
        drain_timeout_s: float = 10.0,
        watchdog_interval_s: float = 0.5,
        hang_timeout_s: Optional[float] = None,
        health_recovery_s: float = 5.0,
        max_body_bytes: int = 16 * 1024 * 1024,
        log_requests: bool = True,
    ):
        self.registry = registry
        self.metrics = registry.metrics
        self.batcher = batcher if batcher is not None else MicroBatcher(
            registry,
            window_s=window_s,
            max_batch_requests=max_batch_requests,
            max_batch_rows=max_batch_rows,
            max_queue_requests=max_queue_requests,
            max_pending_rows=max_pending_rows,
            breaker_failures=breaker_failures,
            breaker_reset_s=breaker_reset_s,
            metrics=self.metrics,
            start=False,
        )
        self.bucket = (
            TokenBucket(rate_limit, burst) if rate_limit is not None else None
        )
        self.request_timeout = float(request_timeout)
        self.request_deadline_ms = (
            None if request_deadline_ms is None else float(request_deadline_ms)
        )
        self.drain_timeout_s = float(drain_timeout_s)
        # A hung-kernel verdict defaults to the request timeout: by then
        # every waiter has already given up, so failing the in-flight
        # tickets loses nothing.
        self.watchdog = Watchdog(
            self.batcher,
            interval_s=watchdog_interval_s,
            hang_timeout_s=(
                self.request_timeout if hang_timeout_s is None else hang_timeout_s
            ),
            health=HealthTracker(recovery_s=health_recovery_s),
            metrics=self.metrics,
        )
        self.health = self.watchdog.health
        self.max_body_bytes = int(max_body_bytes)
        self.log_requests = bool(log_requests)
        self.started_at = time.monotonic()
        self._request_counter = itertools.count(1)
        self._serve_thread: Optional[threading.Thread] = None
        self._loop_entered = False
        self._handler_threads: list = []
        self._handler_lock = threading.Lock()
        super().__init__(address, _Handler)

    def process_request(self, request, client_address):
        # ThreadingMixIn only tracks (and ``server_close``-joins)
        # *non-daemon* handler threads.  We want daemon handlers — a
        # wedged connection must never pin the process open — but the
        # graceful drain still has to wait for live ones, or interpreter
        # teardown kills them mid-response.  So track them ourselves and
        # join with a deadline in :meth:`stop`.
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            name="repro-serving-handler",
            daemon=True,
        )
        with self._handler_lock:
            self._handler_threads = [
                t for t in self._handler_threads if t.is_alive()
            ]
            self._handler_threads.append(thread)
        thread.start()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServingServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if not self.batcher.running:
            self.batcher.start()
        self.watchdog.start()
        self.started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serving-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, poll_interval: float = 0.25) -> None:
        if not self.batcher.running:
            self.batcher.start()
        self.watchdog.start()
        self._loop_entered = True
        super().serve_forever(poll_interval)

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then close.

        Order matters: health flips to ``draining`` first (``/healthz``
        goes 503 so load balancers steer away), the accept loop stops,
        then the batcher flushes its backlog within ``drain_timeout_s`` —
        in-flight HTTP handlers blocked on tickets complete (or get typed
        503s past the deadline) — then the still-live handler threads are
        joined with the remaining drain budget (they are daemons; without
        this join, interpreter teardown would kill them mid-response) and
        the sockets are closed.

        Safe on a server that never served: ``BaseServer.shutdown`` blocks
        forever unless ``serve_forever`` ran, so it is skipped then.
        """
        deadline = time.monotonic() + self.drain_timeout_s
        self.health.start_draining()
        self.watchdog.stop()
        if self._loop_entered:
            self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(10.0)
            self._serve_thread = None
        self.batcher.stop(flush=True, timeout=self.drain_timeout_s)
        with self._handler_lock:
            handlers = [t for t in self._handler_threads if t.is_alive()]
            self._handler_threads = []
        for thread in handlers:
            thread.join(max(deadline - time.monotonic(), 0.5))
        self.server_close()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def create_server(
    registry: ModelRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> ServingServer:
    """Bind a :class:`ServingServer` (``port=0`` picks a free port).

    Keyword arguments are forwarded to :class:`ServingServer`: batching
    knobs (``window_s``, ``max_batch_requests``, ``max_batch_rows``),
    resilience knobs (``max_queue_requests``/``max_pending_rows``
    backpressure, ``breaker_failures``/``breaker_reset_s`` circuit
    breakers, ``request_deadline_ms`` default deadline,
    ``drain_timeout_s`` graceful-shutdown budget,
    ``watchdog_interval_s``/``hang_timeout_s``/``health_recovery_s``
    self-healing), ``rate_limit``/``burst`` (requests per second;
    ``None`` disables), ``request_timeout``, ``max_body_bytes`` and
    ``log_requests``.
    """
    return ServingServer((host, port), registry, **kwargs)
