"""repro.serving — a batched model server over the factored kernel stack.

The first subsystem that sits *on top of* the estimators rather than
inside them: it turns fitted :class:`~repro.summary.DataSummary`
artifacts into a long-running service.  Four layers, one module each:

* :mod:`~repro.serving.registry` — :class:`ModelRegistry`: named,
  LRU-evictable models, normalized to the float32 hot serving dtype on
  the way in (via the dtype-preserving ``save``/``load`` + ``astype()``
  path from the dtype stack).
* :mod:`~repro.serving.batcher` — :class:`MicroBatcher`: coalesces
  concurrent ``assign``/``inertia``/``refine`` requests arriving within a
  configurable window into a single factored kernel call and scatters the
  results back per request.  This is where the batched-vs-singleton
  throughput win is collected (``.benchmarks/serving_throughput.json``).
* :mod:`~repro.serving.http` — :class:`ServingServer` /
  :func:`create_server`: a stdlib-only threaded HTTP front end with JSON
  endpoints, request IDs, token-bucket rate limiting
  (:mod:`~repro.serving.ratelimit`) and typed error mapping.
* :mod:`~repro.serving.metrics` — :class:`ServingMetrics`: lock-protected
  counters and p50/p95/p99 latency reservoirs, surfaced at ``/metrics``.

The resilience layer rides alongside (PR 7): per-request deadlines and
typed 504s, per-``(model, op)`` circuit breakers
(:mod:`~repro.serving.resilience`), backpressure shedding, a watchdog
that restarts a dead batcher worker, a deterministic fault-injection
harness (:mod:`~repro.serving.faults`) certifying that every submitted
ticket resolves, and a stdlib retry client
(:mod:`~repro.serving.client`) that speaks the whole protocol
(``Retry-After``, ``X-Deadline-Ms``, ``X-Request-ID``).

Start a server from the command line with ``python -m repro.cli serve``;
see ``docs/serving.md`` for endpoint schemas and batching semantics.

Examples
--------
>>> import numpy as np
>>> from repro import KhatriRaoKMeans, summarize
>>> from repro.serving import MicroBatcher, ModelRegistry
>>> rng = np.random.default_rng(0)
>>> X = rng.normal(size=(200, 8))
>>> model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
>>> registry = ModelRegistry()                    # float32 serving dtype
>>> registry.register("demo", summarize(model)).dtype
dtype('float32')
>>> batcher = MicroBatcher(registry, start=False) # synchronous mode
>>> tickets = [batcher.submit("assign", "demo", X[i:i + 4]) for i in (0, 4)]
>>> batcher.drain()                               # both in one kernel call
2
>>> tickets[0].result()["labels"].shape
(4,)
"""

from .batcher import MicroBatcher, Ticket
from .client import ServingClient, ServingClientError
from .http import ServingServer, create_server
from .metrics import LatencyReservoir, ServingMetrics
from .ratelimit import TokenBucket
from .registry import ModelRegistry
from .resilience import BreakerBoard, CircuitBreaker, HealthTracker, Watchdog

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "HealthTracker",
    "LatencyReservoir",
    "MicroBatcher",
    "ModelRegistry",
    "ServingClient",
    "ServingClientError",
    "ServingMetrics",
    "ServingServer",
    "Ticket",
    "TokenBucket",
    "Watchdog",
    "create_server",
]
