"""Stdlib retry client for the serving HTTP API.

The server's failure model is only useful if clients speak it:
retriable rejections (429 rate limit, 503 breaker/backpressure/draining)
carry ``Retry-After``, deadline expiry is a typed 504, and every
response echoes ``X-Request-ID``.  :class:`ServingClient` closes the
loop — urllib + exponential backoff with seeded jitter, honoring the
server's ``Retry-After`` hint, reusing one request ID across a logical
request's retries so the server-side access log tells the whole story.

No dependency beyond the standard library (the client ships with the
package for smoke harnesses and deploy hooks, mirroring the stdlib-only
server).

>>> client = ServingClient("http://127.0.0.1:8080")   # doctest: +SKIP
>>> client.assign("blobs", [[0.1, 0.2]])              # doctest: +SKIP
{'model': 'blobs', 'labels': [3], 'request_id': 'cli-...'}
"""

from __future__ import annotations

import json
import random
import secrets
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..exceptions import ServingError

__all__ = ["ServingClient", "ServingClientError"]

#: Statuses worth retrying: rate limit, shed/breaker/draining, deadline,
#: and gateway-ish transient codes a proxy in front of the server may add.
RETRY_STATUSES = (429, 502, 503, 504)


class ServingClientError(ServingError):
    """A request failed definitively (non-retriable, or retries exhausted).

    Attributes
    ----------
    status : int or None
        HTTP status of the last response; ``None`` for connection errors.
    error_type : str or None
        The server's typed error name (``error.type`` in the body).
    request_id : str
        The ``X-Request-ID`` the attempts carried — the handle for
        correlating with the server's access log.
    attempts : int
        How many attempts were made before giving up.
    body : dict
        The parsed JSON body of the final response (empty for
        connection-level failures).
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        error_type: Optional[str] = None,
        request_id: str = "",
        attempts: int = 1,
        body: Optional[dict] = None,
    ):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.request_id = request_id
        self.attempts = attempts
        self.body = body if body is not None else {}


class ServingClient:
    """A retrying JSON client for one serving base URL.

    Parameters
    ----------
    base_url : str
        E.g. ``"http://127.0.0.1:8080"`` (no trailing slash needed).
    timeout_s : float
        Per-attempt socket timeout.
    max_retries : int
        Retries *after* the first attempt (default 4 → up to 5 attempts).
    backoff_s, backoff_cap_s : float
        Exponential backoff base and cap: attempt ``i`` waits
        ``min(cap, backoff * 2**i)`` scaled by jitter in ``[0.5, 1.0)``.
        A server ``Retry-After`` hint raises the wait to at least that.
    retry_statuses : sequence of int
        Statuses that trigger a retry (default :data:`RETRY_STATUSES`).
        Connection-level failures always retry.
    seed : int, optional
        Seeds the jitter stream — deterministic backoff for tests.
    sleep, transport : callables
        Injection points for tests: ``sleep(seconds)`` and
        ``transport(method, url, body, headers, timeout) ->
        (status, headers_dict, raw_bytes)``.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 10.0,
        max_retries: int = 4,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        retry_statuses: Sequence[int] = RETRY_STATUSES,
        seed: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        transport: Optional[Callable] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.retry_statuses = frozenset(int(s) for s in retry_statuses)
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._transport = transport if transport is not None else _urllib_transport

    # -------------------------------------------------------------- backoff
    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        delay = min(self.backoff_cap_s, self.backoff_s * (2.0 ** attempt))
        delay *= 0.5 + self._rng.random() / 2.0
        if retry_after is not None and retry_after > delay:
            delay = retry_after
        return delay

    @staticmethod
    def _retry_after(headers: Dict[str, str], body: Dict) -> Optional[float]:
        raw = headers.get("Retry-After")
        if raw is not None:
            try:
                return float(raw)
            except ValueError:
                pass
        hint = body.get("error", {}).get("retry_after") if body else None
        return None if hint is None else float(hint)

    # -------------------------------------------------------------- request
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        headers: Optional[Dict[str, str]] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """One logical request, retried per policy; returns the JSON body.

        The same ``X-Request-ID`` rides every retry of this logical
        request, so the server log shows the retries as one story.
        """
        rid = request_id if request_id else f"cli-{secrets.token_hex(6)}"
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        send_headers = {"X-Request-ID": rid, **(headers or {})}
        if body is not None:
            send_headers.setdefault("Content-Type", "application/json")
        url = self.base_url + path
        attempt = 0
        while True:
            try:
                status, resp_headers, raw = self._transport(
                    method, url, body, send_headers, self.timeout_s
                )
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                if attempt >= self.max_retries:
                    raise ServingClientError(
                        f"{method} {path} failed after {attempt + 1} "
                        f"attempt(s): {exc}",
                        request_id=rid,
                        attempts=attempt + 1,
                    ) from exc
                self._sleep(self._backoff(attempt, None))
                attempt += 1
                continue
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                parsed = {}
            if status < 400:
                return parsed
            if status in self.retry_statuses and attempt < self.max_retries:
                self._sleep(
                    self._backoff(attempt, self._retry_after(resp_headers, parsed))
                )
                attempt += 1
                continue
            error = parsed.get("error", {}) if parsed else {}
            raise ServingClientError(
                f"{method} {path} -> {status} "
                f"{error.get('type', 'HTTPError')}: "
                f"{error.get('message', 'no error body')}",
                status=status,
                error_type=error.get("type"),
                request_id=rid,
                attempts=attempt + 1,
                body=parsed,
            )

    # --------------------------------------------------------- conveniences
    def get(self, path: str, **kwargs) -> dict:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, payload: dict, **kwargs) -> dict:
        return self.request("POST", path, payload, **kwargs)

    def healthz(self) -> dict:
        """Health state; a draining server's 503 is returned, not raised."""
        try:
            # Never retry a health probe — its job is the current truth.
            return ServingClient(
                self.base_url,
                timeout_s=self.timeout_s,
                max_retries=0,
                transport=self._transport,
                sleep=self._sleep,
            ).get("/healthz")
        except ServingClientError as exc:
            # A draining server answers /healthz with 503 *and* the full
            # health body — that body is the answer, not an error.
            if exc.status == 503 and "status" in exc.body:
                return exc.body
            raise

    def metrics(self) -> dict:
        return self.get("/metrics")

    def models(self) -> list:
        return self.get("/v1/models")["models"]

    def describe(self, model: str) -> dict:
        return self.get(f"/v1/models/{model}")

    def _score_headers(self, deadline_ms: Optional[float]) -> Optional[Dict]:
        if deadline_ms is None:
            return None
        return {"X-Deadline-Ms": f"{float(deadline_ms):g}"}

    def assign(self, model: str, rows, *, deadline_ms: Optional[float] = None,
               request_id: Optional[str] = None) -> dict:
        return self.post(
            f"/v1/models/{model}/assign", {"rows": _tolist(rows)},
            headers=self._score_headers(deadline_ms), request_id=request_id,
        )

    def inertia(self, model: str, rows, *, deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None) -> dict:
        return self.post(
            f"/v1/models/{model}/inertia", {"rows": _tolist(rows)},
            headers=self._score_headers(deadline_ms), request_id=request_id,
        )

    def refine(self, model: str, rows, *, n_steps: int = 1,
               sample_weight=None, deadline_ms: Optional[float] = None,
               request_id: Optional[str] = None) -> dict:
        payload = {"rows": _tolist(rows), "n_steps": int(n_steps)}
        if sample_weight is not None:
            payload["sample_weight"] = _tolist(sample_weight)
        return self.post(
            f"/v1/models/{model}/refine", payload,
            headers=self._score_headers(deadline_ms), request_id=request_id,
        )


def _tolist(rows):
    """Accept lists or numpy arrays without importing numpy here."""
    return rows.tolist() if hasattr(rows, "tolist") else rows


def _urllib_transport(
    method: str,
    url: str,
    body: Optional[bytes],
    headers: Dict[str, str],
    timeout: float,
) -> Tuple[int, Dict[str, str], bytes]:
    """The default transport: one urllib round trip.

    HTTP error statuses are *returned* (the retry loop owns the policy);
    connection-level failures propagate as ``URLError``/``OSError``.
    """
    req = urllib.request.Request(url, data=body, headers=headers, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        with err:
            return err.code, dict(err.headers), err.read()
