"""Federated k-Means (FkM) and Khatri-Rao-FkM (paper Section 9.4, Figure 10).

Protocol (one round):

1. the server broadcasts its current model — centroids for ``FkM``,
   protocentroid sets for ``KhatriRaoFkM`` — to every client
   (**the server→client communication the paper measures**);
2. every client assigns its local shard and returns per-cluster sums and
   counts (FkM) or per-protocentroid sufficient statistics (KR variant);
3. the server merges the statistics into a global update — for the KR
   variant through the same closed-form updates as Proposition 6.1, which
   only require the aggregated sums.

Communication cost is accounted in bytes of working-dtype payload per
round, matching the x-axis of Figure 10: the paper's float64 setting is
the default, and the ``dtype="float32"`` knob halves the broadcast (the
production-serving configuration).  Client-side statistics keep the
dtype policy of the central kernels — per-point arithmetic in the working
dtype, grouped accumulation and the server-side merge in float64
(``docs/numerics.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_cardinalities,
    check_dtype,
    check_positive_int,
    check_random_state,
    int_prod,
)
from ..core._distances import assign_to_nearest
from ..core._factored import assign_factored, grouped_row_sum
from ..core._update import sum_sufficient_statistics
from ..exceptions import NotFittedError, QuorumError, ValidationError
from ..linalg import get_aggregator, khatri_rao_combine, resolve_working_dtype

__all__ = ["FederatedKMeans", "KhatriRaoFederatedKMeans", "communication_cost_bytes"]

_FLOAT_BYTES = 8


def communication_cost_bytes(
    n_vectors: int,
    n_features: int,
    n_clients: int,
    n_rounds: int,
    *,
    itemsize: int = _FLOAT_BYTES,
) -> int:
    """Bytes sent server→clients: one model broadcast per client per round.

    ``itemsize`` is the bytes-per-scalar of the broadcast payload — 8 for
    the paper's float64 accounting (default), 4 when the federation runs
    with ``dtype="float32"``.
    """
    return (
        int(n_vectors) * int(n_features) * int(itemsize)
        * int(n_clients) * int(n_rounds)
    )


@dataclass
class _History:
    inertia: List[float] = field(default_factory=list)
    communication_bytes: List[int] = field(default_factory=list)


class FederatedKMeans:
    """FkM: server/client federated Lloyd iterations.

    Parameters
    ----------
    n_clusters : int
        Number of global centroids ``k``.
    n_rounds : int
        Communication rounds (one broadcast + one aggregation each).
    local_steps : int
        Lloyd steps each client runs per round before reporting statistics.
    dtype : {"float64", "float32"} or numpy dtype
        Working dtype of shards, centroids and the broadcast payload;
        ``history_.communication_bytes`` accounts the dtype's itemsize.
        Client statistics still merge in float64 on the server.  Default
        ``"float64"`` reproduces the paper's accounting bit for bit.
    random_state : None, int or Generator
        Source of randomness (initial centroid sampling, empty reseeds).
    participation : None or callable
        Per-round client participation policy
        ``policy(round_index, n_clients) -> indices`` (an index array or a
        boolean mask over clients).  Dropped clients are skipped for the
        round and the aggregation renormalizes over the survivors; the
        byte accounting only charges broadcasts actually sent.  ``None``
        (default) keeps every client in every round.
        :class:`repro.faults.DropoutSchedule` provides deterministic
        schedules with exactly this signature.
    min_clients : int
        Quorum: the minimum number of participating clients a round needs.
        A round below quorum raises :class:`repro.exceptions.QuorumError`.

    Attributes
    ----------
    cluster_centers_ : array (n_clusters, m)
        Aggregated global centroids, in the working dtype.
    history_ : _History
        Per-round global inertia and cumulative server→client bytes.
    initial_inertia_ : float
        Global inertia of the initial (pre-aggregation) model.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_rounds: int = 10,
        local_steps: int = 1,
        dtype="float64",
        random_state=None,
        participation=None,
        min_clients: int = 1,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.n_rounds = check_positive_int(n_rounds, "n_rounds")
        self.local_steps = check_positive_int(local_steps, "local_steps")
        self.dtype = check_dtype(dtype)
        self.random_state = random_state
        self.participation = _check_participation(participation)
        self.min_clients = check_positive_int(min_clients, "min_clients")
        self.cluster_centers_: Optional[np.ndarray] = None
        self.dtype_: Optional[np.dtype] = None
        self.history_ = _History()
        #: global inertia of the initial (pre-aggregation) model — what
        #: clients hold at budgets below the first full round's cost.
        self.initial_inertia_: float = np.inf

    # ------------------------------------------------------------------ API
    def fit(self, shards: Sequence[Tuple[np.ndarray, np.ndarray]]) -> "FederatedKMeans":
        """Run federated training over client ``(X, y)`` shards."""
        self.dtype_ = self.dtype
        datas = _validate_shards(shards, dtype=self.dtype)
        rng = check_random_state(self.random_state)
        m = datas[0].shape[1]
        centers = _sample_initial_vectors(datas, self.n_clusters, rng)
        self.initial_inertia_ = self._global_inertia(datas, centers)
        self.history_ = _History()
        cumulative_bytes = 0
        for round_index in range(self.n_rounds):
            participants = _round_participants(
                self.participation, round_index, len(datas), self.min_clients
            )
            cumulative_bytes += communication_cost_bytes(
                self.n_clusters, m, participants.size, 1,
                itemsize=self.dtype.itemsize,
            )
            # Server-side merge accumulators stay float64 at any working
            # dtype (documented float64 island, docs/numerics.md); the
            # store into the working-dtype centers rounds once per round.
            # Dropped clients contribute nothing: the quotient below is
            # automatically renormalized over the surviving reports.
            sums = np.zeros((self.n_clusters, m))
            counts = np.zeros(self.n_clusters)
            for X in (datas[int(ci)] for ci in participants):
                client_centers = centers.copy()
                for _ in range(self.local_steps):
                    labels, _ = assign_to_nearest(X, client_centers)
                    client_sums = grouped_row_sum(labels, X, self.n_clusters)
                    client_counts = np.bincount(labels, minlength=self.n_clusters)
                    non_empty = client_counts > 0
                    client_centers[non_empty] = (
                        client_sums[non_empty] / client_counts[non_empty, None]
                    )
                # Client report: statistics under the final local assignment.
                labels, _ = assign_to_nearest(X, client_centers)
                sums += grouped_row_sum(labels, X, self.n_clusters)
                counts += np.bincount(labels, minlength=self.n_clusters)
            non_empty = counts > 0
            centers[non_empty] = sums[non_empty] / counts[non_empty, None]
            empty = np.flatnonzero(~non_empty)
            if empty.size:
                # Reseed only from shards that participated this round —
                # a dropped client's data is unreachable by the server.
                donor = datas[int(participants[int(rng.integers(participants.size))])]
                centers[empty] = donor[rng.choice(donor.shape[0], size=empty.size)]
            self.history_.inertia.append(self._global_inertia(datas, centers))
            self.history_.communication_bytes.append(cumulative_bytes)
        self.cluster_centers_ = centers
        return self

    def predict(self, X) -> np.ndarray:
        """Assign rows of ``X`` to the aggregated global centroids."""
        if self.cluster_centers_ is None:
            raise NotFittedError("FederatedKMeans is not fitted yet; call fit first")
        labels, _ = assign_to_nearest(
            np.asarray(X, dtype=self.cluster_centers_.dtype), self.cluster_centers_
        )
        return labels

    def broadcast_vectors(self) -> int:
        """Vectors broadcast per round (``k`` for FkM)."""
        return self.n_clusters

    def _global_inertia(self, datas: Sequence[np.ndarray], centers: np.ndarray) -> float:
        total = 0.0
        for X in datas:
            _, distances = assign_to_nearest(X, centers)
            total += float(distances.sum(dtype=np.float64))
        return total


class KhatriRaoFederatedKMeans:
    """Khatri-Rao-FkM: federated clustering communicating protocentroids.

    The server broadcasts the ``∑ h_q`` protocentroid vectors; each client
    assigns its shard (through the factored kernel for decomposable
    aggregators — never materializing the centroid grid) and returns the
    per-protocentroid sufficient statistics of Proposition 6.1 (numerators
    and denominators), which the server merges into the closed-form update.
    For the sum aggregator the client report itself is contingency-factored
    (:func:`repro.core._update.sum_sufficient_statistics`), skipping the
    per-point rest gather on the client too.

    Parameters mirror :class:`FederatedKMeans` (including the ``dtype``
    knob, resolved against the aggregator's ``working_dtypes`` capability
    with a loud float64 fallback, and the ``participation``/``min_clients``
    dropout controls); ``aggregator`` defaults to the product, as in the
    paper's case study.
    """

    def __init__(
        self,
        cardinalities: Sequence[int],
        *,
        aggregator="product",
        n_rounds: int = 10,
        local_steps: int = 1,
        dtype="float64",
        random_state=None,
        participation=None,
        min_clients: int = 1,
    ) -> None:
        self.cardinalities = check_cardinalities(cardinalities)
        self.aggregator = get_aggregator(aggregator)
        self.n_rounds = check_positive_int(n_rounds, "n_rounds")
        self.local_steps = check_positive_int(local_steps, "local_steps")
        self.dtype = check_dtype(dtype)
        self.random_state = random_state
        self.participation = _check_participation(participation)
        self.min_clients = check_positive_int(min_clients, "min_clients")
        self.protocentroids_: Optional[List[np.ndarray]] = None
        self.dtype_: Optional[np.dtype] = None
        self.history_ = _History()
        #: global inertia of the initial (pre-aggregation) model.
        self.initial_inertia_: float = np.inf

    @property
    def n_clusters(self) -> int:
        return int_prod(self.cardinalities)

    def fit(
        self, shards: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> "KhatriRaoFederatedKMeans":
        """Run federated Khatri-Rao training over client shards."""
        working = resolve_working_dtype(self.dtype, self.aggregator)
        self.dtype_ = working
        datas = _validate_shards(shards, dtype=working)
        rng = check_random_state(self.random_state)
        m = datas[0].shape[1]
        seeds = _sample_initial_vectors(datas, sum(self.cardinalities), rng)
        thetas: List[np.ndarray] = []
        offset = 0
        for q, h in enumerate(self.cardinalities):
            block = np.empty((h, m), dtype=working)
            for j in range(h):
                block[j] = self.aggregator.split(seeds[offset + j], len(self.cardinalities))[q]
            thetas.append(block)
            offset += h

        initial_centroids = khatri_rao_combine(thetas, self.aggregator)
        self.initial_inertia_ = 0.0
        for X in datas:
            _, distances = assign_to_nearest(X, initial_centroids)
            self.initial_inertia_ += float(distances.sum(dtype=np.float64))

        self.history_ = _History()
        cumulative_bytes = 0
        is_product = self.aggregator.name == "product"
        for round_index in range(self.n_rounds):
            participants = _round_participants(
                self.participation, round_index, len(datas), self.min_clients
            )
            round_datas = [datas[int(ci)] for ci in participants]
            cumulative_bytes += communication_cost_bytes(
                sum(self.cardinalities), m, participants.size, 1,
                itemsize=working.itemsize,
            )
            for _ in range(self.local_steps):
                # One global KR-Lloyd step from merged client statistics.
                factored = self.aggregator.supports_factored_update
                for q, h in enumerate(self.cardinalities):
                    # float64 merge accumulators at any working dtype; the
                    # quotient rounds once into the working-dtype thetas.
                    numerator = np.zeros((h, m))
                    denominator = np.zeros((h, m)) if is_product else np.zeros(h)
                    for X in round_datas:
                        labels = self._client_labels(X, thetas)
                        set_labels = np.stack(
                            np.unravel_index(labels, self.cardinalities), axis=1
                        )
                        a_q = set_labels[:, q]
                        if factored:
                            # Contingency-factored client report: no
                            # per-point rest gather on the client either.
                            client_num, client_mass = sum_sufficient_statistics(
                                X, thetas, set_labels, q
                            )
                            numerator += client_num
                            denominator += client_mass
                        elif is_product:
                            rest = self._rest(thetas, set_labels, q, m)
                            numerator += grouped_row_sum(a_q, X * rest, h)
                            denominator += grouped_row_sum(a_q, rest * rest, h)
                        else:
                            rest = self._rest(thetas, set_labels, q, m)
                            numerator += grouped_row_sum(a_q, X - rest, h)
                            denominator += np.bincount(a_q, minlength=h)
                    if is_product:
                        safe = denominator > 1e-12
                        thetas[q][safe] = numerator[safe] / denominator[safe]
                    else:
                        non_empty = denominator > 0
                        thetas[q][non_empty] = (
                            numerator[non_empty] / denominator[non_empty, None]
                        )
            centroids = khatri_rao_combine(thetas, self.aggregator)
            total = 0.0
            for X in datas:
                _, distances = assign_to_nearest(X, centroids)
                total += float(distances.sum(dtype=np.float64))
            self.history_.inertia.append(total)
            self.history_.communication_bytes.append(cumulative_bytes)
        self.protocentroids_ = thetas
        return self

    def predict(self, X) -> np.ndarray:
        """Assign rows of ``X`` to the aggregated global centroids."""
        if self.protocentroids_ is None:
            raise NotFittedError(
                "KhatriRaoFederatedKMeans is not fitted yet; call fit first"
            )
        centroids = khatri_rao_combine(self.protocentroids_, self.aggregator)
        labels, _ = assign_to_nearest(
            np.asarray(X, dtype=centroids.dtype), centroids
        )
        return labels

    def broadcast_vectors(self) -> int:
        """Vectors broadcast per round (``∑ h_q`` for Khatri-Rao-FkM)."""
        return int(sum(self.cardinalities))

    def _client_labels(self, X: np.ndarray, thetas: List[np.ndarray]) -> np.ndarray:
        """One client's local assignment of its shard.

        Routed through the factored Khatri-Rao kernel when the aggregator
        decomposes (sum) — identical labels to materializing the grid, but
        the client never builds the ``(∏ h_q, m)`` centroid matrix.
        """
        if self.aggregator.supports_factored_assignment:
            labels, _ = assign_factored(X, thetas, self.aggregator)
            return labels
        centroids = khatri_rao_combine(thetas, self.aggregator)
        labels, _ = assign_to_nearest(X, centroids)
        return labels

    def _rest(
        self, thetas: List[np.ndarray], set_labels: np.ndarray, excluded: int, m: int
    ) -> np.ndarray:
        parts = [
            thetas[l][set_labels[:, l]] for l in range(len(thetas)) if l != excluded
        ]
        if not parts:
            return self.aggregator.identity((set_labels.shape[0], m))
        return self.aggregator.combine(parts)


def _check_participation(participation):
    if participation is not None and not callable(participation):
        raise ValidationError(
            "participation must be None or a callable "
            "policy(round_index, n_clients) -> client indices"
        )
    return participation


def _round_participants(
    participation, round_index: int, n_clients: int, min_clients: int
) -> np.ndarray:
    """Resolve one round's participating client indices, enforcing quorum.

    The policy may return an index array or a boolean mask over clients;
    the result is normalized to sorted unique int64 indices so aggregation
    order — and therefore the merged float64 sums — is deterministic for a
    given schedule.
    """
    if participation is None:
        participants = np.arange(n_clients, dtype=np.int64)
    else:
        raw = np.asarray(participation(round_index, n_clients))
        if raw.dtype == bool:
            if raw.shape != (n_clients,):
                raise ValidationError(
                    f"participation mask for round {round_index} must have "
                    f"shape ({n_clients},), got {raw.shape}"
                )
            participants = np.flatnonzero(raw).astype(np.int64)
        else:
            participants = np.unique(raw.astype(np.int64, casting="unsafe").ravel())
            if participants.size and (
                participants[0] < 0 or participants[-1] >= n_clients
            ):
                raise ValidationError(
                    f"participation indices for round {round_index} must lie "
                    f"in [0, {n_clients}), got {participants.tolist()}"
                )
    if participants.size < min_clients:
        raise QuorumError(
            f"round {round_index} has {participants.size} participating "
            f"client(s), below the min_clients={min_clients} quorum",
            round_index=round_index,
            participating=int(participants.size),
            required=int(min_clients),
        )
    return participants


def _validate_shards(shards, dtype=np.float64) -> List[np.ndarray]:
    if not shards:
        raise ValidationError("at least one client shard is required")
    datas = []
    m = None
    for i, shard in enumerate(shards):
        X = np.asarray(shard[0] if isinstance(shard, tuple) else shard, dtype=dtype)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError(f"client shard {i} must be a non-empty 2-D array")
        if m is None:
            m = X.shape[1]
        elif X.shape[1] != m:
            raise ValidationError("all client shards must share the feature dimension")
        datas.append(X)
    return datas


def _sample_initial_vectors(
    datas: Sequence[np.ndarray], count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw initial vectors from clients proportionally to shard size."""
    sizes = np.array([X.shape[0] for X in datas], dtype=float)
    choices = rng.choice(len(datas), size=count, p=sizes / sizes.sum())
    # Seeds inherit the (already-cast) shard dtype.
    vectors = np.empty((count, datas[0].shape[1]), dtype=datas[0].dtype)
    for i, client in enumerate(choices):
        X = datas[int(client)]
        vectors[i] = X[int(rng.integers(X.shape[0]))]
    return vectors
