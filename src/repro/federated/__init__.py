"""Federated k-Means and its Khatri-Rao extension (paper Section 9.4).

Implements ``FkM``-style federated k-means [Garst & Reinders, 2024]: a
server broadcasts centroids, each client runs local Lloyd steps on its shard
and returns weighted centroid statistics, and the server aggregates — for a
number of communication rounds.  ``KhatriRaoFkM`` "replaces each invocation
of k-Means with Khatri-Rao-k-Means": the server communicates protocentroids
(``∑ h_q`` vectors) instead of centroids (``∏ h_q`` vectors), cutting the
server→client payload the paper plots in Figure 10.
"""

from .fkm import FederatedKMeans, KhatriRaoFederatedKMeans, communication_cost_bytes

__all__ = [
    "FederatedKMeans",
    "KhatriRaoFederatedKMeans",
    "communication_cost_bytes",
]
