"""Deterministic fault injection — the shared fault plane.

PR 7 built a fault-injection vocabulary for the *serving* stack; this
module generalizes it so the *training* runtime (:mod:`repro.runtime`),
the federated round loop and the artifact save/load path can all fail on
the same seeded schedules.  The contract is unchanged: the same seed must
produce the same sequence of faults on every run, so chaos suites assert
reproducible invariants instead of observing flaky ones.

Vocabulary (one :class:`Fault` per injection-point call):

========== ==========================================================
``ok``       no interference
``raise``    raise :class:`InjectedKernelError` — looks like an
             unexpected kernel crash (not a ``ReproError``), exercising
             the caller's unknown-failure plumbing
``sleep``    ``time.sleep(seconds)`` — a hung kernel / straggling
             worker, for timeout and watchdog testing
``kill``     raise :class:`WorkerKill` (a ``BaseException``) — escapes
             ``except Exception`` handlers and kills the executing
             thread outright
``evict``    context-specific: the serving injector evicts the batch's
             model mid-flight; contexts without an eviction target
             reject it
========== ==========================================================

Injection points, one per subsystem:

* serving — the batcher's ``fault_hook``
  (:class:`repro.serving.faults.FaultInjector`, which re-exports this
  module's vocabulary for back-compat);
* training loops — the estimators' per-iteration ``callback`` knob,
  via :class:`FaultHook`;
* parallel restarts — the executor's per-attempt ``fault_hook``, via
  :class:`RestartFaultPlan` (keyed by ``(seed_index, attempt)`` so the
  schedule is deterministic under any completion order);
* federated rounds — per-round client participation, via
  :class:`DropoutSchedule`;
* artifact writes — :meth:`DataSummary.save
  <repro.summary.DataSummary.save>` ``fault_hook`` (torn-write drills).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "DropoutSchedule",
    "Fault",
    "FaultHook",
    "FaultSchedule",
    "InjectedKernelError",
    "RestartFaultPlan",
    "WorkerKill",
]


class InjectedKernelError(RuntimeError):
    """A scheduled kernel failure.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: an
    unexpected kernel crash is exactly what unknown-failure handling
    (HTTP 500 masking, circuit breakers, restart retries) exists for.
    """


class WorkerKill(BaseException):
    """A scheduled worker death.

    A ``BaseException`` so it escapes ``except Exception`` handlers and
    kills the executing thread — stranding in-flight work for whatever
    supervision layer (serving watchdog, restart executor) must recover.
    """


class Fault:
    """One scheduled action. ``kind`` ∈ {ok, raise, sleep, kill, evict}."""

    KINDS = ("ok", "raise", "sleep", "kill", "evict")
    __slots__ = ("kind", "seconds")

    def __init__(self, kind: str, seconds: float = 0.0):
        if kind not in self.KINDS:
            raise ValueError(f"fault kind must be one of {self.KINDS}, got {kind!r}")
        self.kind = kind
        self.seconds = float(seconds)

    def apply(self, context: str = "") -> None:
        """Execute this fault at a generic injection point.

        ``raise``/``kill`` raise their typed exception (``context`` lands
        in the message), ``sleep`` sleeps, ``ok`` is a no-op.  ``evict``
        needs an eviction target and is only meaningful inside the
        serving injector — applying it generically is a programming
        error, reported as such.
        """
        if self.kind == "ok":
            return
        if self.kind == "raise":
            raise InjectedKernelError(f"injected kernel fault {context}".strip())
        if self.kind == "sleep":
            time.sleep(self.seconds)
            return
        if self.kind == "kill":
            raise WorkerKill(f"injected worker kill {context}".strip())
        raise ValueError(
            "evict faults need an eviction target; use the serving FaultInjector"
        )

    def __repr__(self) -> str:
        if self.kind == "sleep":
            return f"Fault('sleep', {self.seconds:g})"
        return f"Fault({self.kind!r})"


_SpecValue = Union[str, Fault, Tuple[str, float]]


def _as_fault(value: _SpecValue) -> Fault:
    if isinstance(value, Fault):
        return value
    if isinstance(value, tuple):
        return Fault(value[0], value[1])
    return Fault(value)


class FaultSchedule:
    """A deterministic call-index → :class:`Fault` mapping.

    Indices count injection-point calls (per hook, starting at 0); any
    index without an entry is ``ok``.  Optionally scoped to one model so
    a "poisoned model" schedule leaves its neighbors healthy (the
    serving injector's scoping; other hooks ignore ``model``).
    """

    def __init__(
        self,
        faults: Dict[int, Fault],
        *,
        model: Optional[str] = None,
    ):
        self.faults = {int(i): _as_fault(f) for i, f in faults.items()}
        self.model = model

    @classmethod
    def from_spec(
        cls,
        spec: Dict[int, _SpecValue],
        *,
        model: Optional[str] = None,
    ) -> "FaultSchedule":
        """E.g. ``FaultSchedule.from_spec({0: "raise", 3: ("sleep", 0.05)})``."""
        return cls({i: _as_fault(v) for i, v in spec.items()}, model=model)

    @classmethod
    def always(cls, kind: str, *, model: Optional[str] = None,
               seconds: float = 0.0) -> "FaultSchedule":
        """Every matching call gets the same fault (``faults`` is a view
        that answers any index)."""
        schedule = cls({}, model=model)
        schedule._always = Fault(kind, seconds)
        return schedule

    @classmethod
    def random(
        cls,
        seed: int,
        n_calls: int,
        *,
        p_raise: float = 0.15,
        p_sleep: float = 0.05,
        p_kill: float = 0.05,
        sleep_s: float = 0.05,
        model: Optional[str] = None,
    ) -> "FaultSchedule":
        """A seeded random mix over ``n_calls`` executions (the soak shape)."""
        rng = np.random.default_rng(seed)
        faults: Dict[int, Fault] = {}
        for i in range(int(n_calls)):
            u = float(rng.random())
            if u < p_raise:
                faults[i] = Fault("raise")
            elif u < p_raise + p_sleep:
                faults[i] = Fault("sleep", sleep_s)
            elif u < p_raise + p_sleep + p_kill:
                faults[i] = Fault("kill")
        return cls(faults, model=model)

    _always: Optional[Fault] = None

    def fault_for(self, index: int) -> Fault:
        if self._always is not None:
            return self._always
        return self.faults.get(index, Fault("ok"))


class FaultHook:
    """Call-indexed fault injection for arbitrary single-caller hooks.

    Binds one :class:`FaultSchedule` to any hook seam that is invoked
    repeatedly from one thread — an estimator's per-iteration
    ``callback``, an artifact writer's ``fault_hook`` — counting calls
    and applying the scheduled fault on each.  :attr:`fired` records
    ``(index, context, kind)`` for every non-``ok`` action so chaos
    suites can cross-check observed failures against the schedule.

    The hook swallows its arguments (they become the recorded context),
    so it can stand in for any callback signature.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self.calls = 0
        self.fired: List[Tuple[int, str, str]] = []

    def __call__(self, *args, **kwargs) -> None:
        index = self.calls
        self.calls = index + 1
        fault = self.schedule.fault_for(index)
        if fault.kind == "ok":
            return
        context = ", ".join(
            [repr(a) for a in args]
            + [f"{k}={v!r}" for k, v in sorted(kwargs.items())]
        )
        self.fired.append((index, context, fault.kind))
        fault.apply(f"#{index}")


class RestartFaultPlan:
    """Per-``(seed_index, attempt)`` faults for the restart executor.

    The executor runs restart attempts concurrently, so a call-indexed
    schedule would depend on thread timing.  This plan keys faults by
    the attempt's identity instead — restart ``seed_index``, retry
    ``attempt`` (0 = first try) — which is deterministic under any
    completion order.  Unkeyed attempts are ``ok``.

    >>> plan = RestartFaultPlan({(1, 0): "raise", (2, 0): ("sleep", 0.2)})
    >>> plan(0, 0)                       # restart 0 runs clean
    """

    def __init__(self, spec: Dict[Tuple[int, int], _SpecValue]):
        self.faults = {
            (int(i), int(a)): _as_fault(v) for (i, a), v in spec.items()
        }
        self.fired: List[Tuple[int, int, str]] = []

    def __call__(self, seed_index: int, attempt: int) -> None:
        fault = self.faults.get((seed_index, attempt))
        if fault is None or fault.kind == "ok":
            return
        self.fired.append((seed_index, attempt, fault.kind))
        fault.apply(f"for restart {seed_index} attempt {attempt}")


class DropoutSchedule:
    """Deterministic per-round federated client participation.

    Maps round index → the set of *dropped* client indices; every other
    client participates.  Built explicitly (:meth:`from_spec`) for
    precise scenarios or randomly (:meth:`random`) with a seed for
    soak-style runs.  Instances are callables with the federated
    estimators' ``participation`` signature.
    """

    def __init__(self, drops: Dict[int, Sequence[int]]):
        self.drops = {
            int(r): frozenset(int(c) for c in clients)
            for r, clients in drops.items()
        }

    @classmethod
    def from_spec(cls, spec: Dict[int, Sequence[int]]) -> "DropoutSchedule":
        """E.g. ``DropoutSchedule.from_spec({0: [2], 3: [0, 1]})``."""
        return cls(spec)

    @classmethod
    def random(
        cls,
        seed: int,
        n_rounds: int,
        n_clients: int,
        *,
        p_drop: float = 0.2,
    ) -> "DropoutSchedule":
        """A seeded random dropout mix over ``n_rounds`` rounds."""
        rng = np.random.default_rng(seed)
        drops: Dict[int, List[int]] = {}
        for r in range(int(n_rounds)):
            dropped = np.flatnonzero(rng.random(int(n_clients)) < p_drop)
            if dropped.size:
                drops[r] = dropped.tolist()
        return cls(drops)

    def __call__(self, round_index: int, n_clients: int) -> np.ndarray:
        """Participating client indices for ``round_index`` (sorted)."""
        dropped = self.drops.get(int(round_index), frozenset())
        return np.array(
            [c for c in range(int(n_clients)) if c not in dropped],
            dtype=np.int64,
        )
