"""Shared input-validation helpers.

These helpers centralize the checks performed at the public-API boundary so
that every estimator reports consistent, actionable error messages.  They are
intentionally strict: silent coercion of malformed input is a common source
of hard-to-debug clustering results.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "check_array",
    "check_dtype",
    "as_float_array",
    "check_positive_int",
    "check_in",
    "check_cardinalities",
    "check_random_state",
    "int_prod",
]

#: rows per slab when validating a memory-mapped input blockwise; only this
#: many rows of finiteness flags are ever materialized at once.
_MEMMAP_CHECK_ROWS = 65536


def int_prod(values) -> int:
    """Exact product of ``values`` as an arbitrary-precision Python int.

    ``int(np.prod(...))`` computes in int64 and *silently wraps* once the
    product exceeds ``2**63 - 1`` — e.g. ``np.prod([2**32, 2**32])`` is 0 —
    which corrupts every ``k = prod(h_q)`` grid size for large Khatri-Rao
    configurations.  All grid sizes go through this helper instead.
    """
    return math.prod(int(v) for v in values)

#: working dtypes the kernel stack computes in; everything else is rejected
#: at the API boundary (``check_dtype``) or silently widened to float64 at
#: kernel entry (``as_float_array``).
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def check_dtype(dtype, *, name: str = "dtype") -> np.dtype:
    """Validate an estimator ``dtype`` knob.

    Accepts anything :func:`numpy.dtype` understands (``"float32"``,
    ``np.float64``, an existing dtype instance, ...) as long as it resolves
    to one of the supported working dtypes, ``float64`` or ``float32``.

    Returns
    -------
    numpy.dtype
        The canonical dtype instance.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        raise ValidationError(f"{name} could not be interpreted as a numpy dtype: {dtype!r}")
    if resolved not in SUPPORTED_DTYPES:
        raise ValidationError(
            f"{name} must be one of {tuple(str(d) for d in SUPPORTED_DTYPES)}, "
            f"got {dtype!r}"
        )
    return resolved


def as_float_array(a) -> np.ndarray:
    """Convert ``a`` to an ndarray, preserving a float32/float64 dtype.

    The dtype-aware kernels use this instead of ``np.asarray(a, dtype=float)``
    so a float32 input stays float32 end-to-end; any other dtype (ints,
    float16, ...) is widened to float64, the historical behavior.
    """
    a = np.asarray(a)
    if a.dtype in SUPPORTED_DTYPES:
        return a
    return a.astype(np.float64)


def check_array(
    X,
    *,
    name: str = "X",
    ndim: int = 2,
    min_samples: int = 1,
    dtype=np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Validate and convert ``X`` to a contiguous float ndarray.

    Parameters
    ----------
    X : array-like
        Input data.
    name : str
        Name used in error messages.
    ndim : int
        Required number of dimensions.
    min_samples : int
        Minimum size of the first axis.
    dtype : numpy dtype
        Target dtype of the returned array.
    allow_empty : bool
        Whether a zero-length first axis is acceptable.

    Returns
    -------
    numpy.ndarray
        A validated array of the requested dtype and dimensionality.

    Notes
    -----
    A :class:`numpy.memmap` whose dtype already matches is passed through
    **without copying** — the out-of-core seam.  Its finiteness check runs
    blockwise (a full-array ``isfinite`` would materialize an ``n x m``
    boolean temp, defeating the point of mapping), and the map itself flows
    into the blocked kernels, which slice it one row block at a time.  A
    memmap in the *wrong* dtype is rejected with a typed error rather than
    silently cast: the cast would allocate the whole dataset in RAM.
    """
    if isinstance(X, np.memmap) and X.ndim == ndim:
        requested = np.dtype(dtype)
        if X.dtype != requested:
            raise ValidationError(
                f"{name} is a memory-mapped array of dtype {X.dtype.name} but "
                f"this fit computes in {requested.name}; store the memmap in "
                f"the working dtype (casting would materialize it in RAM)"
            )
        if not X.flags["C_CONTIGUOUS"]:
            raise ValidationError(
                f"{name} is a memory-mapped array but not C-contiguous; "
                f"the row-block kernels stream contiguous row slices"
            )
        if not allow_empty and X.shape[0] < min_samples:
            raise ValidationError(
                f"{name} must contain at least {min_samples} samples, "
                f"got {X.shape[0]}"
            )
        for start in range(0, X.shape[0], _MEMMAP_CHECK_ROWS):
            if not np.all(np.isfinite(X[start:start + _MEMMAP_CHECK_ROWS])):
                raise ValidationError(f"{name} contains NaN or infinite values")
        return X
    try:
        arr = np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to a numeric array: {exc}")
    if arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.shape[0] < min_samples:
        raise ValidationError(
            f"{name} must contain at least {min_samples} samples, got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer greater or equal to ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_in(value, name: str, allowed: Sequence) -> object:
    """Validate that ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {tuple(allowed)!r}, got {value!r}")
    return value


def check_cardinalities(cardinalities, *, name: str = "cardinalities") -> Tuple[int, ...]:
    """Validate a sequence of protocentroid-set cardinalities ``(h_1, ..., h_p)``."""
    try:
        values = tuple(int(h) for h in cardinalities)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a sequence of integers, got {cardinalities!r}")
    if len(values) < 1:
        raise ValidationError(f"{name} must contain at least one set cardinality")
    for h in values:
        if h < 1:
            raise ValidationError(f"every cardinality in {name} must be >= 1, got {values}")
    return values


def check_random_state(seed: Optional[object]) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator``/``RandomState`` instance.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        return np.random.default_rng(seed.randint(0, 2**32 - 1))
    raise ValidationError(f"random_state must be None, an int, or a Generator, got {seed!r}")
