"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``datasets``
    Print the Table 1 registry (optionally at reduced scale).
``fit``
    Fit Khatri-Rao-k-Means (or k-Means) on a registry dataset and print the
    Table 2-style comparison; optionally save the resulting summary.
``summary``
    Inspect a saved ``.npz`` data summary.
``quantize``
    Run the Figure 9 color-quantization case study.
``serve``
    Serve saved summaries over HTTP with micro-batched kernel calls
    (:mod:`repro.serving`); float32 is the default serving dtype.
``monitor``
    Replay the committed golden drift scenarios
    (:mod:`repro.monitoring.evaluation`) and fail on any behavioral
    delta; optionally write the JSON alert-timeline report.

Examples
--------
::

    python -m repro.cli datasets --scale 0.1
    python -m repro.cli fit --dataset stickfigures --cardinalities 3 3 \\
        --aggregator sum --save summary.npz
    python -m repro.cli summary summary.npz
    python -m repro.cli quantize --colors 6 6
    python -m repro.cli serve --model stickfigures=summary.npz --port 8080
    python -m repro.cli monitor --goldens tests/goldens --report report.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__

__all__ = ["main", "build_parser", "build_server_from_args"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Khatri-Rao clustering for data summarization (EDBT 2026 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="list the Table 1 registry")
    datasets.add_argument("--scale", type=float, default=0.05,
                          help="sample-count scale in (0, 1] (default 0.05)")
    datasets.add_argument("--seed", type=int, default=0)

    fit = subparsers.add_parser("fit", help="fit and compare on a dataset")
    fit.add_argument("--dataset", required=True, help="registry dataset name")
    fit.add_argument("--cardinalities", type=int, nargs="+", default=None,
                     help="protocentroid set sizes (default: balanced pair)")
    fit.add_argument("--aggregator", choices=("sum", "product"), default="sum")
    fit.add_argument("--scale", type=float, default=0.1)
    fit.add_argument("--n-init", type=int, default=10)
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--save", default=None, metavar="PATH",
                     help="write the KR summary to an .npz file")
    fit.add_argument("--n-jobs", type=int, default=None,
                     help="run the saved model's n_init restarts on this "
                          "many worker threads (default: sequential); "
                          "model selection is identical to sequential")
    fit.add_argument("--n-threads", type=int, default=None,
                     help="row-parallel kernel threads for the saved "
                          "model's fit (default: single sweep, or the "
                          "REPRO_N_THREADS environment variable); any "
                          "thread count is bit-identical")
    fit.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write an atomic training checkpoint per "
                          "iteration under DIR while fitting the saved "
                          "model (requires --save)")
    fit.add_argument("--resume", action="store_true",
                     help="resume the saved model's fit from the "
                          "checkpoint in --checkpoint-dir; the resumed "
                          "run is bit-identical to an uninterrupted one")

    summary = subparsers.add_parser("summary", help="inspect a saved summary")
    summary.add_argument("path", help="path to a .npz summary")

    quantize = subparsers.add_parser("quantize", help="color-quantization case study")
    quantize.add_argument("--colors", type=int, nargs=2, default=(6, 6),
                          metavar=("H1", "H2"),
                          help="protocentroid set sizes (default 6 6)")
    quantize.add_argument("--seed", type=int, default=0)

    serve = subparsers.add_parser(
        "serve", help="serve saved summaries over HTTP (micro-batched)"
    )
    serve.add_argument("--model", action="append", required=True,
                       metavar="NAME=PATH", dest="models",
                       help="register a saved .npz summary under NAME "
                            "(repeatable)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 picks a free one (default 8080)")
    serve.add_argument("--dtype", choices=("float32", "float64", "native"),
                       default="float32",
                       help="serving dtype models are cast to on load "
                            "(default float32; 'native' preserves the "
                            "artifact's dtype)")
    serve.add_argument("--window-ms", type=float, default=5.0,
                       help="micro-batching window in milliseconds "
                            "(default 5)")
    serve.add_argument("--max-batch-requests", type=int, default=256)
    serve.add_argument("--max-batch-rows", type=int, default=8192)
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="sustained requests/s admitted to /v1/ "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="rate-limiter burst size (default: one "
                            "second of --rate-limit)")
    serve.add_argument("--max-models", type=int, default=None,
                       help="LRU registry capacity (default: unbounded)")
    serve.add_argument("--request-deadline-ms", type=float, default=None,
                       help="server-side default deadline per scoring "
                            "request in milliseconds; expired requests "
                            "are shed and answered 504 (default: none — "
                            "clients may still send X-Deadline-Ms)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="graceful-shutdown budget in seconds: on "
                            "SIGTERM/Ctrl-C the server stops accepting, "
                            "drains in-flight work this long, then fails "
                            "stragglers with typed 503s (default 10)")
    serve.add_argument("--breaker-failures", type=int, default=5,
                       help="consecutive kernel failures that open a "
                            "(model, op) circuit breaker; 0 disables "
                            "(default 5)")
    serve.add_argument("--breaker-reset-s", type=float, default=30.0,
                       help="seconds an open circuit waits before a "
                            "half-open probe (default 30)")
    serve.add_argument("--max-queue-requests", type=int, default=1024,
                       help="per-(model, op) queue depth beyond which "
                            "submits shed with 503 (default 1024)")
    serve.add_argument("--max-pending-rows", type=int, default=131072,
                       help="batcher-wide cap on queued data rows; "
                            "overflow sheds with 503 (default 131072)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the per-request access log")

    monitor = subparsers.add_parser(
        "monitor", help="replay the golden drift scenarios (regression net)"
    )
    monitor.add_argument("--goldens", default="tests/goldens",
                         help="directory of scenario .npz files "
                              "(default: tests/goldens)")
    monitor.add_argument("--report", default=None, metavar="PATH",
                         help="write the JSON alert-timeline report here "
                              "(written on failure too, for CI artifacts)")
    return parser


def _cmd_datasets(args) -> int:
    from .datasets import dataset_summary_table

    print(dataset_summary_table(scale=args.scale, random_state=args.seed))
    return 0


def _cmd_fit(args) -> int:
    from pathlib import Path

    from .core import KhatriRaoKMeans, balanced_factor_pair
    from .datasets import load_dataset
    from .reporting import compare_methods, render_comparison
    from .summary import summarize

    if (args.checkpoint_dir or args.resume) and not args.save:
        print("error: --checkpoint-dir/--resume only apply to the saved "
              "model fit; pass --save PATH", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume needs --checkpoint-dir to locate the "
              "checkpoint", file=sys.stderr)
        return 2
    if args.n_jobs and (args.checkpoint_dir or args.resume):
        print("error: --n-jobs is incompatible with --checkpoint-dir/"
              "--resume (checkpoints snapshot the sequential restart loop)",
              file=sys.stderr)
        return 2

    ds = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    print(f"dataset {ds.name}: {ds.n_samples} x {ds.n_features}, "
          f"{ds.n_labels} labels\n")
    cards = args.cardinalities
    results = compare_methods(
        ds.data, ds.labels, ds.n_labels, cardinalities=cards,
        n_init=args.n_init, random_state=args.seed,
    )
    print(render_comparison(results))

    if args.save:
        if cards is None:
            h1, h2 = balanced_factor_pair(ds.n_labels)
            if h2 == 1:
                h1, h2 = balanced_factor_pair(ds.n_labels + 1)
            cards = (h1, h2)
        checkpoint = resume_from = None
        if args.checkpoint_dir:
            ckdir = Path(args.checkpoint_dir)
            ckdir.mkdir(parents=True, exist_ok=True)
            checkpoint = ckdir / "fit.npz"
            if args.resume:
                resume_from = checkpoint
        model = KhatriRaoKMeans(
            cards, aggregator=args.aggregator, n_init=args.n_init,
            random_state=args.seed, n_jobs=args.n_jobs,
            n_threads=args.n_threads,
            checkpoint=checkpoint, resume_from=resume_from,
        ).fit(ds.data)
        summary = summarize(model, metadata={"dataset": ds.name})
        written = summary.save(args.save)
        print(f"\nsaved Khatri-Rao summary to {written}")
    return 0


def _cmd_summary(args) -> int:
    from .summary import DataSummary

    print(DataSummary.load(args.path).report())
    return 0


def _cmd_quantize(args) -> int:
    from .applications import (
        quantize_khatri_rao_kmeans,
        quantize_kmeans,
        quantize_random,
    )
    from .datasets import make_quantization_image

    h1, h2 = args.colors
    image = make_quantization_image(random_state=args.seed)
    budget = h1 + h2
    results = [
        quantize_random(image, budget, random_state=args.seed),
        quantize_kmeans(image, budget, random_state=args.seed),
        quantize_khatri_rao_kmeans(image, (h1, h2), random_state=args.seed),
    ]
    header = f"{'method':<24}{'colors':>8}{'stored':>8}{'inertia':>12}"
    print(header)
    print("-" * len(header))
    for result in results:
        print(f"{result.method:<24}{result.codebook.shape[0]:>8}"
              f"{result.stored_vectors:>8}{result.inertia:>12.1f}")
    return 0


def build_server_from_args(args):
    """Construct the :class:`~repro.serving.http.ServingServer` the
    ``serve`` command described — separated from :func:`_cmd_serve` so
    tests (and embedding code) can build the exact CLI-shaped server
    without entering ``serve_forever``."""
    from .exceptions import ValidationError
    from .serving import ModelRegistry, create_server

    registry = ModelRegistry(
        serving_dtype=args.dtype, max_models=args.max_models
    )
    for spec in args.models:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ValidationError(
                f"--model expects NAME=PATH, got {spec!r}"
            )
        registry.load(name, path)
    return create_server(
        registry,
        host=args.host,
        port=args.port,
        window_s=args.window_ms / 1e3,
        max_batch_requests=args.max_batch_requests,
        max_batch_rows=args.max_batch_rows,
        max_queue_requests=args.max_queue_requests,
        max_pending_rows=args.max_pending_rows,
        breaker_failures=args.breaker_failures or None,
        breaker_reset_s=args.breaker_reset_s,
        request_deadline_ms=args.request_deadline_ms,
        drain_timeout_s=args.drain_timeout,
        rate_limit=args.rate_limit,
        burst=args.burst,
        log_requests=not args.quiet,
    )


def _cmd_serve(args) -> int:
    import logging
    import signal
    import threading

    logging.basicConfig(
        level=logging.WARNING if args.quiet else logging.INFO,
        format="%(asctime)s %(name)s %(message)s",
    )
    server = build_server_from_args(args)
    # SIGTERM (the orchestrator's shutdown signal) takes the same graceful
    # path as Ctrl-C: stop accepting, drain in-flight work within
    # --drain-timeout, exit 0.  Signals only deliver to the main thread,
    # which is exactly where serve_forever runs below.
    def _sigterm(signum, frame):
        raise SystemExit(0)

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _sigterm)
    names = ", ".join(server.registry.names())
    # The smoke harness and deploy scripts parse this line for the bound
    # port (--port 0 picks a free one), so keep it on stdout and flushed.
    print(f"serving {len(server.registry)} model(s) [{names}] on {server.url}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    except SystemExit:
        print(f"draining: SIGTERM received, finishing in-flight requests "
              f"(budget {args.drain_timeout:g}s)", flush=True)
    finally:
        server.stop()
    return 0


def _cmd_monitor(args) -> int:
    from .monitoring.evaluation import main as run_goldens

    argv = ["--goldens", args.goldens]
    if args.report:
        argv += ["--report", args.report]
    return run_goldens(argv)


_COMMANDS = {
    "datasets": _cmd_datasets,
    "fit": _cmd_fit,
    "summary": _cmd_summary,
    "quantize": _cmd_quantize,
    "serve": _cmd_serve,
    "monitor": _cmd_monitor,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
