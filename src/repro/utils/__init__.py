"""Small cross-cutting utilities: timing, memory tracking and RNG helpers."""

from .memory import peak_memory_mib, track_peak_memory
from .timing import Timer

__all__ = ["Timer", "peak_memory_mib", "track_peak_memory"]
