"""Peak-memory measurement for the scalability analysis (Figure 8).

The paper reports peak memory in Mebibytes for a single execution of each
algorithm.  We measure Python-level allocations with :mod:`tracemalloc`,
which captures the numpy buffers that dominate clustering memory usage.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from typing import Callable, Iterator, Tuple

_MIB = 1024.0 * 1024.0


@contextmanager
def track_peak_memory() -> Iterator[dict]:
    """Context manager yielding a dict whose ``peak_mib`` key is filled on exit.

    Examples
    --------
    >>> import numpy as np
    >>> with track_peak_memory() as mem:
    ...     _ = np.zeros((1000, 1000))
    >>> mem["peak_mib"] > 0
    True
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    result = {"peak_mib": 0.0}
    try:
        yield result
    finally:
        _, peak = tracemalloc.get_traced_memory()
        result["peak_mib"] = peak / _MIB
        if not was_tracing:
            tracemalloc.stop()


def peak_memory_mib(func: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``func(*args, **kwargs)`` and return ``(result, peak_mib)``."""
    with track_peak_memory() as mem:
        result = func(*args, **kwargs)
    return result, mem["peak_mib"]
