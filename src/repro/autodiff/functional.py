"""Composite differentiable functions built on :class:`~repro.autodiff.Tensor`.

These cover the nonlinearities and stable reductions the deep-clustering
losses need: ReLU-family activations, numerically stable softmax/logsumexp
(required by the DKM loss, whose ``a = 1000`` temperature produces extreme
exponents) and the mean-squared reconstruction loss.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["relu", "leaky_relu", "sigmoid", "tanh", "softmax", "logsumexp", "mse_loss"]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(x, 0)``."""
    data = np.maximum(x.data, 0.0)

    def backward(grad):
        return (grad * (x.data > 0.0).astype(np.float64),)

    return x._make(data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU: identity for positives, ``negative_slope · x`` otherwise."""
    positive = x.data > 0.0
    data = np.where(positive, x.data, negative_slope * x.data)

    def backward(grad):
        return (grad * np.where(positive, 1.0, negative_slope),)

    return x._make(data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid with a numerically stable forward pass."""
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500))),
        np.exp(np.clip(x.data, -500, 500))
        / (1.0 + np.exp(np.clip(x.data, -500, 500))),
    )

    def backward(grad):
        return (grad * data * (1.0 - data),)

    return x._make(data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    data = np.tanh(x.data)

    def backward(grad):
        return (grad * (1.0 - data**2),)

    return x._make(data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Implemented with the max-shift trick so that the huge negative exponents
    of the DKM loss (``exp(-a ||z - μ||²)`` with ``a = 1000``) do not
    underflow to an all-zero denominator.
    """
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exponentials = shifted.exp()
    return exponentials / exponentials.sum(axis=axis, keepdims=True)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable ``log Σ exp(x)`` along ``axis``."""
    maximum = x.max(axis=axis, keepdims=True).detach()
    result = (x - maximum).exp().sum(axis=axis, keepdims=True).log() + maximum
    if not keepdims:
        data = np.squeeze(result.data, axis=axis)
        squeezed = result.reshape(data.shape)
        return squeezed
    return result


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error between ``prediction`` and a fixed ``target``."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    difference = prediction - target.detach()
    return (difference * difference).mean()
