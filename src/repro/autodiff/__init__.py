"""Minimal reverse-mode automatic differentiation over numpy arrays.

Deep clustering (paper Section 3, Eq. 2) is "optimized via batch-wise
backpropagation, using automatic differentiation".  The original work uses
PyTorch; offline we provide an equivalent substrate: a tape-based
:class:`Tensor` supporting the operations the DKM and IDEC losses require —
matrix products, elementwise arithmetic, broadcasting, reductions,
exponentials/logarithms and stable softmax.

Gradients are accumulated into ``Tensor.grad`` by calling ``backward()`` on
a scalar loss, exactly like the PyTorch API the paper's implementation uses.
"""

from .functional import logsumexp, mse_loss, relu, sigmoid, softmax, tanh
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "logsumexp",
    "mse_loss",
]
