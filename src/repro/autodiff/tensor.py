"""The :class:`Tensor` — a numpy array with a gradient tape.

Implementation notes
--------------------
* Every operation records a backward closure on its output; ``backward()``
  topologically sorts the tape and accumulates gradients into ``grad``.
* Broadcasting is handled by :func:`_unbroadcast`, which sums gradient
  contributions over broadcast axes — the standard reverse of numpy
  broadcasting semantics.
* A process-wide :func:`no_grad` context disables taping for inference.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ValidationError

__all__ = ["Tensor", "no_grad"]

_GRAD_ENABLED = True


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable gradient taping within the context (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes of size 1 that were expanded.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_tensor(value) -> "Tensor":
    return value if isinstance(value, Tensor) else Tensor(value)


class Tensor:
    """Numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data : array-like
    requires_grad : bool
        Whether gradients should be accumulated into this tensor.

    Examples
    --------
    >>> x = Tensor([2.0, 3.0], requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad.tolist()
    [4.0, 6.0]
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -------------------------------------------------------------- plumbing
    def _make(self, data: np.ndarray, parents, backward) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the tape.

        ``grad`` defaults to 1.0 and is only optional for scalar outputs.
        """
        if not self.requires_grad:
            raise ValidationError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise ValidationError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order of the tape reachable from self.
        order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad
        # Flush any remaining leaves (parents visited before their grads).
        for node in order:
            remaining = grads.pop(id(node), None)
            if remaining is not None and node._backward is None:
                node.grad = remaining if node.grad is None else node.grad + remaining

    # ----------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data + other.data

        def backward(grad):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other.data.shape),
            )

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.data.shape),
                _unbroadcast(grad * self.data, other.data.shape),
            )

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.data.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape),
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ValidationError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data @ other.data

        def backward(grad):
            return (grad @ other.data.T, self.data.T @ grad)

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------ reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient among ties.
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * g,)

        return self._make(data, (self,), backward)

    # ----------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad):
            return (grad * np.sign(self.data),)

        return self._make(data, (self,), backward)

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` (used for numerical floors)."""
        data = np.maximum(self.data, minimum)

        def backward(grad):
            return (grad * (self.data > minimum).astype(np.float64),)

        return self._make(data, (self,), backward)

    # --------------------------------------------------------------- shapes
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(original),)

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        data = self.data.T

        def backward(grad):
            return (grad.T,)

        return self._make(data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad):
            return (np.squeeze(grad, axis=axis),)

        return self._make(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather ``x[indices]`` with scatter-add backward."""
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(grad):
            out = np.zeros_like(self.data)
            np.add.at(out, indices, grad)
            return (out,)

        return self._make(data, (self,), backward)
