"""Evaluation reports in the paper's format (used by the benchmark harness
and the CLI).

:func:`evaluate_summary` computes the Section 9.1 metric panel (ARI / ACC /
NMI / inertia) for one labeling; :func:`compare_methods` runs the Table 2
protocol — KR-k-Means (both aggregators) against k-Means at equal parameters
and at equal clusters — on any ``(X, y, k)`` and renders the row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ._validation import check_array, check_positive_int, int_prod
from .core import KhatriRaoKMeans, KMeans, balanced_factor_pair
from .metrics import (
    adjusted_rand_index,
    inertia,
    normalized_mutual_information,
    unsupervised_clustering_accuracy,
)

__all__ = ["MethodResult", "evaluate_summary", "compare_methods", "render_comparison"]


@dataclass
class MethodResult:
    """Metric panel of one method on one dataset."""

    method: str
    ari: float
    acc: float
    nmi: float
    inertia: float
    parameters: int

    def row(self, baseline_inertia: float, baseline_parameters: int) -> str:
        return (
            f"{self.method:<28}{self.ari:>7.3f}{self.acc:>7.3f}{self.nmi:>7.3f}"
            f"{self.inertia / max(baseline_inertia, 1e-12):>10.2f}"
            f"{self.parameters / baseline_parameters:>9.2f}"
        )


def evaluate_summary(X, labels_true, labels_pred, centroids) -> Dict[str, float]:
    """The paper's metric panel for one clustering result."""
    return {
        "ari": adjusted_rand_index(labels_true, labels_pred),
        "acc": unsupervised_clustering_accuracy(labels_true, labels_pred),
        "nmi": normalized_mutual_information(labels_true, labels_pred),
        "inertia": inertia(X, labels_pred, centroids),
    }


def compare_methods(
    X,
    y,
    k: int,
    *,
    cardinalities: Optional[Sequence[int]] = None,
    n_init: int = 10,
    random_state=None,
) -> List[MethodResult]:
    """Run the Table 2 protocol on ``(X, y)`` with ``k`` target clusters.

    Returns results for KR-k-Means(+), KR-k-Means(x), k-Means(h1+h2) and
    k-Means(h1·h2), in that order.
    """
    X = check_array(X)
    k = check_positive_int(k, "k")
    if cardinalities is None:
        h1, h2 = balanced_factor_pair(k)
        if h2 == 1:
            h1, h2 = balanced_factor_pair(k + 1)
        cardinalities = (h1, h2)
    cards = tuple(int(h) for h in cardinalities)

    results: List[MethodResult] = []
    for aggregator, tag in (("sum", "+"), ("product", "x")):
        model = KhatriRaoKMeans(cards, aggregator=aggregator, n_init=n_init,
                                random_state=random_state).fit(X)
        panel = evaluate_summary(X, y, model.labels_, model.centroids())
        results.append(MethodResult(
            f"Khatri-Rao-k-Means-{tag}{cards}", panel["ari"], panel["acc"],
            panel["nmi"], panel["inertia"], model.parameter_count(),
        ))
    small = KMeans(sum(cards), n_init=n_init, random_state=random_state).fit(X)
    panel = evaluate_summary(X, y, small.labels_, small.cluster_centers_)
    results.append(MethodResult(
        f"k-Means({sum(cards)})", panel["ari"], panel["acc"], panel["nmi"],
        panel["inertia"], small.parameter_count(),
    ))
    full = KMeans(int_prod(cards), n_init=n_init,
                  random_state=random_state).fit(X)
    panel = evaluate_summary(X, y, full.labels_, full.cluster_centers_)
    results.append(MethodResult(
        f"k-Means({int_prod(cards)})", panel["ari"], panel["acc"],
        panel["nmi"], panel["inertia"], full.parameter_count(),
    ))
    return results


def render_comparison(results: Sequence[MethodResult]) -> str:
    """Render :func:`compare_methods` output as a Table 2-style block.

    Inertia and parameters are normalized by the last entry (the
    ``k-Means(h1·h2)`` optimistic bound).
    """
    baseline = results[-1]
    header = (f"{'method':<28}{'ARI':>7}{'ACC':>7}{'NMI':>7}"
              f"{'inertia*':>10}{'params*':>9}")
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(result.row(baseline.inertia, baseline.parameters))
    lines.append("(* relative to the k-Means(h1*h2) baseline)")
    return "\n".join(lines)
