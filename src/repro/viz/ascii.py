"""ASCII charts: scatter plots, images, bar and line charts.

Terminal-renderable stand-ins for the paper's figures.  All functions return
strings; nothing is printed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ascii_scatter", "ascii_image", "ascii_bar_chart", "ascii_line_chart"]

_GLYPHS = "ox+*#%@&$abcdefghijklmnpqrstuvwyz"
_SHADES = " .:-=+*#%@"


def ascii_scatter(
    X: np.ndarray,
    labels: Optional[np.ndarray] = None,
    *,
    width: int = 60,
    height: int = 24,
    markers: Optional[np.ndarray] = None,
) -> str:
    """Render 2-D points (optionally labeled) as an ASCII scatter plot.

    Points sharing a grid cell show the label drawn last; ``markers`` may
    supply extra points rendered as ``M`` (e.g. centroids).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[1] != 2:
        raise ValidationError(f"ascii_scatter needs (n, 2) data, got {X.shape}")
    points = X if markers is None else np.vstack([X, np.asarray(markers, dtype=float)])
    x_min, y_min = points.min(axis=0)
    x_max, y_max = points.max(axis=0)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x, y, glyph):
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y_max - y) / y_span * (height - 1))
        grid[row][col] = glyph

    if labels is None:
        labels = np.zeros(X.shape[0], dtype=int)
    labels = np.asarray(labels).astype(int)
    for (x, y), label in zip(X, labels):
        place(x, y, _GLYPHS[label % len(_GLYPHS)])
    if markers is not None:
        for x, y in np.asarray(markers, dtype=float):
            place(x, y, "M")
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def ascii_image(image: np.ndarray, *, width: int = 40) -> str:
    """Render a grayscale image with density shading."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValidationError(f"ascii_image needs (h, w) data, got {image.shape}")
    h, w = image.shape
    out_w = min(width, w) or 1
    out_h = max(1, int(h * out_w / w / 2))  # terminal cells are ~2x tall
    rows = np.minimum((np.arange(out_h) * h) // out_h, h - 1)
    cols = np.minimum((np.arange(out_w) * w) // out_w, w - 1)
    small = image[np.ix_(rows, cols)]
    lo, hi = small.min(), small.max()
    span = (hi - lo) or 1.0
    normalized = (small - lo) / span
    indices = np.minimum((normalized * len(_SHADES)).astype(int), len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[i] for i in row) for row in indices)


def ascii_bar_chart(
    labels: Sequence[str], values: Sequence[float], *, width: int = 40
) -> str:
    """Horizontal bar chart with value annotations."""
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValidationError("labels and values must have the same length")
    if not values:
        raise ValidationError("bar chart needs at least one value")
    maximum = max(abs(v) for v in values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(abs(value) / maximum * width)) if value else ""
        lines.append(f"{str(label):<{label_width}} | {bar} {value:g}")
    return "\n".join(lines)


def ascii_line_chart(
    x: Sequence[float],
    series: dict,
    *,
    width: int = 60,
    height: int = 16,
    logy: bool = False,
) -> str:
    """Multi-series line chart; series is ``{name: values}``.

    Each series is drawn with the first letter of its name.
    """
    x = np.asarray(list(x), dtype=float)
    if not series:
        raise ValidationError("line chart needs at least one series")
    all_values = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
    if logy:
        if np.any(all_values <= 0):
            raise ValidationError("logy requires positive values")
        transform = np.log10
    else:
        transform = lambda v: v  # noqa: E731 - tiny local adapter
    y_all = transform(all_values)
    y_min, y_max = float(y_all.min()), float(y_all.max())
    y_span = (y_max - y_min) or 1.0
    x_min, x_max = float(x.min()), float(x.max())
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        glyph = str(name)[0]
        for xi, vi in zip(x, np.asarray(list(values), dtype=float)):
            col = int((xi - x_min) / x_span * (width - 1))
            row = int((y_max - float(transform(vi))) / y_span * (height - 1))
            grid[row][col] = glyph
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = "  ".join(f"{str(name)[0]}={name}" for name in series)
    return f"{border}\n{body}\n{border}\n{legend}"
