"""Binary PPM (color) and PGM (grayscale) image writers.

Netpbm formats are self-describing, viewer-ubiquitous and writable without
any imaging dependency — ideal for dumping quantization results and
protocentroid images from the offline benchmarks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import ValidationError

__all__ = ["save_ppm", "save_pgm"]


def _to_uint8(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=float)
    if image.min() < 0.0 or image.max() > 1.0:
        raise ValidationError("image values must lie in [0, 1]")
    return np.round(image * 255.0).astype(np.uint8)


def save_ppm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an ``(h, w, 3)`` float image in [0, 1] as binary PPM (P6).

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     p = save_ppm(np.zeros((2, 2, 3)), os.path.join(tmp, "x.ppm"))
    ...     p.stat().st_size > 0
    True
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValidationError(f"PPM needs shape (h, w, 3), got {image.shape}")
    data = _to_uint8(image)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
    return path


def save_pgm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an ``(h, w)`` float image in [0, 1] as binary PGM (P5)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValidationError(f"PGM needs shape (h, w), got {image.shape}")
    data = _to_uint8(image)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
    return path
