"""Dependency-free visualization helpers.

The evaluation environment has no matplotlib, so this package provides the
minimum needed to *see* results: a binary PPM/PGM image writer (for the
color-quantization case study and protocentroid images) and ASCII charts
(scatter plots of 2-D clusterings, bar/line charts of benchmark series).
"""

from .ascii import ascii_bar_chart, ascii_image, ascii_line_chart, ascii_scatter
from .images import save_pgm, save_ppm

__all__ = [
    "save_ppm",
    "save_pgm",
    "ascii_scatter",
    "ascii_image",
    "ascii_bar_chart",
    "ascii_line_chart",
]
