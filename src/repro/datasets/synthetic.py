"""Synthetic tabular / 2-D dataset generators (paper Section 9.1, Appendix A).

Reimplementations of the scikit-learn-style generators the paper uses
(``Blobs``, ``Classification``), the clustbench layouts (``R15``,
``Chameleon``), a categorical Soybean-like generator, the Khatri-Rao
structured data of Figure 4 and the color-quantization image of Figure 9.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..exceptions import ValidationError
from ..linalg import khatri_rao_combine

__all__ = [
    "make_blobs",
    "make_classification",
    "make_khatri_rao_blobs",
    "make_r15",
    "make_chameleon",
    "make_soybean_like",
    "make_quantization_image",
]


def make_blobs(
    n_samples: int = 5000,
    n_features: int = 2,
    n_clusters: int = 100,
    *,
    cluster_std: float = 1.0,
    center_box: Tuple[float, float] = (-10.0, 10.0),
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs (the paper's ``Blobs`` dataset).

    Cluster centers are drawn uniformly in ``center_box`` (scaled up with the
    number of clusters so blobs stay separable) and samples are distributed
    evenly across clusters, matching the dataset's imbalance ratio of 1.0.

    Returns
    -------
    (X, y) : arrays of shape (n_samples, n_features) and (n_samples,)
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    n_features = check_positive_int(n_features, "n_features")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    rng = check_random_state(random_state)
    low, high = center_box
    # Widen the box with the cluster count so density stays roughly constant.
    scale = max(1.0, (n_clusters / 10.0) ** (1.0 / n_features))
    centers = rng.uniform(low * scale, high * scale, size=(n_clusters, n_features))
    sizes = _even_sizes(n_samples, n_clusters)
    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=np.int64)
    offset = 0
    for label, size in enumerate(sizes):
        X[offset : offset + size] = centers[label] + cluster_std * rng.normal(
            size=(size, n_features)
        )
        y[offset : offset + size] = label
        offset += size
    return _shuffle(X, y, rng)


def make_classification(
    n_samples: int = 5000,
    n_features: int = 10,
    n_clusters: int = 100,
    *,
    class_sep: float = 2.0,
    within_std: float = 1.0,
    imbalance_ratio: float = 0.91,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Classification-style clusters with informative features.

    Mirrors the paper's use of scikit-learn's ``make_classification`` with
    only informative features: each class is a Gaussian cluster around a
    vertex-like center placed on a scaled hypercube, with mild class
    imbalance (Table 1 reports IR = 0.91).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    n_features = check_positive_int(n_features, "n_features")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    rng = check_random_state(random_state)
    # Random ±1 hypercube-vertex-like centers, scaled by class_sep.
    centers = class_sep * rng.choice([-1.0, 1.0], size=(n_clusters, n_features))
    centers += 0.5 * class_sep * rng.normal(size=centers.shape)
    sizes = _imbalanced_sizes(n_samples, n_clusters, imbalance_ratio, rng)
    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=np.int64)
    offset = 0
    for label, size in enumerate(sizes):
        X[offset : offset + size] = centers[label] + within_std * rng.normal(
            size=(size, n_features)
        )
        y[offset : offset + size] = label
        offset += size
    return _shuffle(X, y, rng)


def make_khatri_rao_blobs(
    cardinalities: Sequence[int] = (3, 3),
    n_samples: int = 900,
    n_features: int = 2,
    *,
    aggregator: str = "sum",
    cluster_std: float = 0.15,
    protocentroid_scale: float = 3.0,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray, list]:
    """Data whose clusters exactly follow a Khatri-Rao structure (Figure 4).

    Draws one random set of protocentroids per cardinality, materializes the
    centroids via the chosen aggregator, and samples isotropic Gaussian
    clusters around them.

    Returns
    -------
    (X, y, protocentroids)
        ``y`` contains flat centroid indices in C-order over the tuple
        indices; ``protocentroids`` is the list of generating sets.
    """
    cards = tuple(check_positive_int(h, "cardinality") for h in cardinalities)
    n_samples = check_positive_int(n_samples, "n_samples")
    rng = check_random_state(random_state)
    if aggregator in ("product", "*", "x"):
        # Keep protocentroids away from zero so products stay well separated.
        thetas = [
            rng.uniform(0.5, protocentroid_scale, size=(h, n_features)) for h in cards
        ]
    else:
        thetas = [
            protocentroid_scale * rng.normal(size=(h, n_features)) for h in cards
        ]
    centroids = khatri_rao_combine(thetas, aggregator)
    k = centroids.shape[0]
    sizes = _even_sizes(n_samples, k)
    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=np.int64)
    offset = 0
    for label, size in enumerate(sizes):
        X[offset : offset + size] = centroids[label] + cluster_std * rng.normal(
            size=(size, n_features)
        )
        y[offset : offset + size] = label
        offset += size
    X, y = _shuffle(X, y, rng)
    return X, y, thetas


def make_r15(
    n_samples: int = 600, *, cluster_std: float = 0.25, random_state=None
) -> Tuple[np.ndarray, np.ndarray]:
    """R15-style layout: 15 Gaussians with non-uniform spacing.

    Follows the classical R15 arrangement: one central cluster, an inner
    ring of 7 tightly spaced clusters and an outer ring of 7 looser ones.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    rng = check_random_state(random_state)
    centers = [np.array([0.0, 0.0])]
    for i in range(7):
        angle = 2.0 * np.pi * i / 7.0
        centers.append(2.0 * np.array([np.cos(angle), np.sin(angle)]))
    for i in range(7):
        angle = 2.0 * np.pi * (i + 0.5) / 7.0
        centers.append(5.0 * np.array([np.cos(angle), np.sin(angle)]))
    centers = np.asarray(centers)
    sizes = _even_sizes(n_samples, 15)
    X = np.empty((n_samples, 2))
    y = np.empty(n_samples, dtype=np.int64)
    offset = 0
    for label, size in enumerate(sizes):
        std = cluster_std if label <= 7 else 2.0 * cluster_std
        X[offset : offset + size] = centers[label] + std * rng.normal(size=(size, 2))
        y[offset : offset + size] = label
        offset += size
    return _shuffle(X, y, rng)


def make_chameleon(
    n_samples: int = 10000,
    *,
    noise_fraction: float = 0.25,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Chameleon-style 2-D data: nonconvex shapes plus uniform noise.

    Nine structured clusters (arcs, bars and dense blobs of varying density)
    plus a background-noise "cluster", giving 10 labels and a strong
    imbalance ratio as in Table 1 (IR = 0.10).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    if not 0.0 <= noise_fraction < 1.0:
        raise ValidationError("noise_fraction must be in [0, 1)")
    rng = check_random_state(random_state)
    n_noise = int(round(noise_fraction * n_samples))
    n_structured = n_samples - n_noise
    weights = np.array([2.0, 2.0, 1.5, 1.5, 1.0, 1.0, 0.8, 0.6, 0.4])
    sizes = np.maximum(
        1, np.round(weights / weights.sum() * n_structured).astype(int)
    )
    sizes[-1] += n_structured - sizes.sum()

    pieces = []
    labels = []

    def _arc(size, center, radius, start, stop, thickness):
        angles = rng.uniform(start, stop, size)
        radii = radius + thickness * rng.normal(size=size)
        return np.column_stack(
            [center[0] + radii * np.cos(angles), center[1] + radii * np.sin(angles)]
        )

    def _bar(size, origin, length, angle, thickness):
        t = rng.uniform(0.0, length, size)
        offsets = thickness * rng.normal(size=size)
        direction = np.array([np.cos(angle), np.sin(angle)])
        normal = np.array([-np.sin(angle), np.cos(angle)])
        return origin + t[:, None] * direction + offsets[:, None] * normal

    def _blob(size, center, std):
        return center + std * rng.normal(size=(size, 2))

    generators = [
        lambda s: _arc(s, (0.0, 0.0), 4.0, 0.0, np.pi, 0.2),
        lambda s: _arc(s, (0.0, -1.0), 4.0, np.pi, 2.0 * np.pi, 0.2),
        lambda s: _bar(s, np.array([8.0, -4.0]), 8.0, np.pi / 3.0, 0.3),
        lambda s: _bar(s, np.array([-12.0, -4.0]), 8.0, -np.pi / 4.0, 0.3),
        lambda s: _blob(s, np.array([10.0, 6.0]), 0.7),
        lambda s: _blob(s, np.array([-10.0, 6.0]), 0.7),
        lambda s: _blob(s, np.array([6.0, -8.0]), 0.5),
        lambda s: _blob(s, np.array([-6.0, -8.0]), 0.5),
        lambda s: _blob(s, np.array([0.0, 9.0]), 0.4),
    ]
    for label, (size, generator) in enumerate(zip(sizes, generators)):
        pieces.append(generator(int(size)))
        labels.append(np.full(int(size), label, dtype=np.int64))

    if n_noise:
        noise = rng.uniform(-15.0, 15.0, size=(n_noise, 2))
        pieces.append(noise)
        labels.append(np.full(n_noise, len(generators), dtype=np.int64))

    X = np.vstack(pieces)
    y = np.concatenate(labels)
    return _shuffle(X, y, rng)


def make_soybean_like(
    n_samples: int = 562,
    n_features: int = 35,
    n_clusters: int = 15,
    *,
    n_categories: int = 4,
    consistency: float = 0.8,
    imbalance_ratio: float = 0.22,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Categorical data in the style of UCI Soybean Large.

    Each class has a prototype category per attribute; samples copy the
    prototype with probability ``consistency`` and otherwise draw a uniform
    category.  Categories are numerically encoded, as in Appendix A.
    """
    rng = check_random_state(random_state)
    n_samples = check_positive_int(n_samples, "n_samples")
    n_features = check_positive_int(n_features, "n_features")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    prototypes = rng.integers(0, n_categories, size=(n_clusters, n_features))
    sizes = _imbalanced_sizes(n_samples, n_clusters, imbalance_ratio, rng)
    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=np.int64)
    offset = 0
    for label, size in enumerate(sizes):
        block = np.tile(prototypes[label], (size, 1)).astype(float)
        mutate = rng.random((size, n_features)) > consistency
        block[mutate] = rng.integers(0, n_categories, size=int(mutate.sum()))
        X[offset : offset + size] = block
        y[offset : offset + size] = label
        offset += size
    return _shuffle(X, y, rng)


def make_quantization_image(
    height: int = 120, width: int = 160, *, random_state=None
) -> np.ndarray:
    """Photo-like RGB image for the color-quantization case study (Figure 9).

    Composes sky (smooth blue gradient), a building band (grays/browns),
    vegetation (greens) and sparse red accents — the rare-but-salient tones
    whose preservation the paper highlights for Khatri-Rao-k-Means.

    Returns
    -------
    array of shape (height, width, 3) with values in [0, 1].
    """
    rng = check_random_state(random_state)
    height = check_positive_int(height, "height")
    width = check_positive_int(width, "width")
    image = np.zeros((height, width, 3))
    rows = np.linspace(0.0, 1.0, height)[:, None]

    # Sky: top 40%, blue gradient with light noise.
    sky = int(0.4 * height)
    image[:sky, :, 0] = 0.35 + 0.1 * rows[:sky]
    image[:sky, :, 1] = 0.55 + 0.15 * rows[:sky]
    image[:sky, :, 2] = 0.85 - 0.1 * rows[:sky]

    # Building band: 40%-75%, blocky grays and browns.
    top, bottom = sky, int(0.75 * height)
    n_blocks = 8
    edges = np.linspace(0, width, n_blocks + 1).astype(int)
    for b in range(n_blocks):
        gray = rng.uniform(0.3, 0.65)
        tint = rng.uniform(-0.08, 0.08, size=3)
        image[top:bottom, edges[b] : edges[b + 1]] = np.clip(gray + tint, 0, 1)

    # Vegetation: bottom 25%, green textures.
    image[bottom:, :, 0] = 0.15
    image[bottom:, :, 1] = 0.45
    image[bottom:, :, 2] = 0.12

    # Red accents: a few small rectangles (roofs, flags) — ~2% of pixels.
    for _ in range(6):
        r0 = rng.integers(sky, height - 4)
        c0 = rng.integers(0, width - 6)
        image[r0 : r0 + 3, c0 : c0 + 5] = np.array([0.8, 0.12, 0.1])

    image += 0.03 * rng.normal(size=image.shape)
    return np.clip(image, 0.0, 1.0)


# --------------------------------------------------------------------------
# helpers shared by the generators in this subpackage
# --------------------------------------------------------------------------
def _even_sizes(n_samples: int, n_clusters: int) -> np.ndarray:
    """Split ``n_samples`` into ``n_clusters`` near-equal positive sizes."""
    if n_samples < n_clusters:
        raise ValidationError(
            f"need at least one sample per cluster: {n_samples} < {n_clusters}"
        )
    base = n_samples // n_clusters
    sizes = np.full(n_clusters, base, dtype=int)
    sizes[: n_samples - base * n_clusters] += 1
    return sizes


def _imbalanced_sizes(
    n_samples: int,
    n_clusters: int,
    imbalance_ratio: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Cluster sizes interpolating linearly between a min/max pair.

    The imbalance ratio (smallest / largest cluster size, Table 1) of the
    result approximates ``imbalance_ratio``.
    """
    if not 0.0 < imbalance_ratio <= 1.0:
        raise ValidationError("imbalance_ratio must be in (0, 1]")
    weights = np.linspace(imbalance_ratio, 1.0, n_clusters)
    rng.shuffle(weights)
    sizes = np.maximum(1, np.round(weights / weights.sum() * n_samples).astype(int))
    # Fix rounding drift on the largest cluster.
    sizes[np.argmax(sizes)] += n_samples - sizes.sum()
    if sizes.min() < 1:
        raise ValidationError("n_samples too small for the requested imbalance")
    return sizes


def _shuffle(
    X: np.ndarray, y: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    order = rng.permutation(X.shape[0])
    return X[order], y[order]
