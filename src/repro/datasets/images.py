"""Image-like and sensor-like dataset generators (paper Appendix A stand-ins).

Offline substitutes for MNIST / optdigits (procedural digit glyphs),
Double MNIST (pair concatenation — genuinely Khatri-Rao structured),
stickfigures (the paper's Figure 1 dataset, rebuilt from its description:
upper-body pose × lower-body pose on a 20×20 grid), Olivetti/CMU-style faces
(smooth per-person base images plus pose perturbations), Symbols (1-D drawing
trajectories) and HAR (multivariate sensor feature vectors).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..exceptions import ValidationError

__all__ = [
    "make_digit_images",
    "make_double_digits",
    "make_stickfigures",
    "make_faces",
    "make_symbols",
    "make_har_features",
]

# 7x5 bitmap font for the ten digits; the archetypes behind the MNIST-like
# and optdigits-like generators.
_DIGIT_GLYPHS = {
    0: ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    3: ["11110", "00001", "00001", "01110", "00001", "00001", "11110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}


def _glyph_bitmap(digit: int) -> np.ndarray:
    rows = _DIGIT_GLYPHS[int(digit)]
    return np.array([[float(c) for c in row] for row in rows])


def _resize_nearest(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour resize — sufficient for blocky glyph archetypes."""
    in_h, in_w = image.shape
    row_idx = np.minimum((np.arange(out_h) * in_h) // out_h, in_h - 1)
    col_idx = np.minimum((np.arange(out_w) * in_w) // out_w, in_w - 1)
    return image[np.ix_(row_idx, col_idx)]


def _blur(image: np.ndarray, passes: int = 1) -> np.ndarray:
    """Cheap separable 3-tap blur softening glyph edges (stroke thickness)."""
    kernel = np.array([0.25, 0.5, 0.25])
    result = image
    for _ in range(passes):
        padded = np.pad(result, ((1, 1), (0, 0)), mode="edge")
        result = (
            kernel[0] * padded[:-2] + kernel[1] * padded[1:-1] + kernel[2] * padded[2:]
        )
        padded = np.pad(result, ((0, 0), (1, 1)), mode="edge")
        result = (
            kernel[0] * padded[:, :-2]
            + kernel[1] * padded[:, 1:-1]
            + kernel[2] * padded[:, 2:]
        )
    return result


def _shift(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    result = np.zeros_like(image)
    h, w = image.shape
    ys = slice(max(dy, 0), min(h + dy, h))
    xs = slice(max(dx, 0), min(w + dx, w))
    ys_src = slice(max(-dy, 0), min(h - dy, h))
    xs_src = slice(max(-dx, 0), min(w - dx, w))
    result[ys, xs] = image[ys_src, xs_src]
    return result


def _render_digit(
    digit: int, side: int, rng: np.random.Generator, *, max_shift: int
) -> np.ndarray:
    margin = max(1, side // 7)
    body = _resize_nearest(_glyph_bitmap(digit), side - 2 * margin, side - 2 * margin)
    canvas = np.zeros((side, side))
    canvas[margin : side - margin, margin : side - margin] = body
    canvas = _blur(canvas, passes=1 if side <= 12 else 2)
    if max_shift:
        canvas = _shift(
            canvas,
            int(rng.integers(-max_shift, max_shift + 1)),
            int(rng.integers(-max_shift, max_shift + 1)),
        )
    canvas = canvas * rng.uniform(0.8, 1.0) + 0.05 * rng.random(canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def make_digit_images(
    n_samples: int = 5000,
    *,
    side: int = 28,
    n_digits: int = 10,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Procedural handwritten-digit stand-in (MNIST-like / optdigits-like).

    Parameters
    ----------
    side : int
        Image side length; 28 mimics MNIST (784 features), 8 optdigits (64).
    n_digits : int
        Number of digit classes (≤ 10).

    Returns
    -------
    (X, y) : vectorized images of shape (n_samples, side*side) in [0, 1],
        and digit labels.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    side = check_positive_int(side, "side", minimum=7)
    n_digits = check_positive_int(n_digits, "n_digits")
    if n_digits > 10:
        raise ValidationError("at most 10 digit classes are available")
    rng = check_random_state(random_state)
    max_shift = max(0, side // 14)
    X = np.empty((n_samples, side * side))
    y = rng.integers(0, n_digits, size=n_samples).astype(np.int64)
    for i in range(n_samples):
        X[i] = _render_digit(int(y[i]), side, rng, max_shift=max_shift).ravel()
    return X, y


def make_double_digits(
    n_samples: int = 10000,
    *,
    side: int = 28,
    n_digits: int = 10,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Double-MNIST-style dataset: horizontal concatenation of digit pairs.

    The label encodes the ordered pair (``10 * left + right``), yielding
    ``n_digits²`` clusters.  By construction the clusters admit an additive
    Khatri-Rao structure: the left half depends only on the first
    protocentroid index and the right half only on the second (Appendix A).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    rng = check_random_state(random_state)
    max_shift = max(0, side // 14)
    X = np.empty((n_samples, 2 * side * side))
    left = rng.integers(0, n_digits, size=n_samples)
    right = rng.integers(0, n_digits, size=n_samples)
    y = (left * n_digits + right).astype(np.int64)
    for i in range(n_samples):
        a = _render_digit(int(left[i]), side, rng, max_shift=max_shift)
        b = _render_digit(int(right[i]), side, rng, max_shift=max_shift)
        X[i] = np.hstack([a, b]).ravel()
    return X, y


# --------------------------------------------------------------------- sticks
def _draw_line(canvas: np.ndarray, r0, c0, r1, c1) -> None:
    """Rasterize a line segment with simple dense interpolation."""
    steps = int(4 * max(abs(r1 - r0), abs(c1 - c0)) + 1)
    t = np.linspace(0.0, 1.0, steps)
    rows = np.clip(np.round(r0 + t * (r1 - r0)).astype(int), 0, canvas.shape[0] - 1)
    cols = np.clip(np.round(c0 + t * (c1 - c0)).astype(int), 0, canvas.shape[1] - 1)
    canvas[rows, cols] = 1.0


def _stickfigure(upper_pose: int, lower_pose: int, side: int = 20) -> np.ndarray:
    """Render a stick figure: head+torso+arms (upper) and legs (lower).

    Three upper poses (arms up / horizontal / down) and three lower poses
    (legs straight / apart / one bent) combine additively into 9 figures,
    mirroring the paper's Figure 1 dataset.
    """
    canvas = np.zeros((side, side))
    cx = side // 2
    head_r = side // 10 + 1
    head_center = (side // 6, cx)
    # Head: small circle.
    for r in range(side):
        for c in range(side):
            if (r - head_center[0]) ** 2 + (c - head_center[1]) ** 2 <= head_r**2:
                canvas[r, c] = 1.0
    neck = head_center[0] + head_r
    hip = int(0.6 * side)
    _draw_line(canvas, neck, cx, hip, cx)  # torso
    shoulder = neck + 1
    arm = int(0.25 * side)
    if upper_pose == 0:  # arms up
        _draw_line(canvas, shoulder, cx, shoulder - arm, cx - arm)
        _draw_line(canvas, shoulder, cx, shoulder - arm, cx + arm)
    elif upper_pose == 1:  # arms horizontal
        _draw_line(canvas, shoulder, cx, shoulder, cx - arm)
        _draw_line(canvas, shoulder, cx, shoulder, cx + arm)
    else:  # arms down
        _draw_line(canvas, shoulder, cx, shoulder + arm, cx - arm)
        _draw_line(canvas, shoulder, cx, shoulder + arm, cx + arm)
    leg = int(0.3 * side)
    if lower_pose == 0:  # straight
        _draw_line(canvas, hip, cx, hip + leg, cx - 1)
        _draw_line(canvas, hip, cx, hip + leg, cx + 1)
    elif lower_pose == 1:  # apart
        _draw_line(canvas, hip, cx, hip + leg, cx - leg)
        _draw_line(canvas, hip, cx, hip + leg, cx + leg)
    else:  # one leg bent
        _draw_line(canvas, hip, cx, hip + leg, cx - leg)
        _draw_line(canvas, hip, cx, hip + leg // 2, cx + leg // 2)
        _draw_line(canvas, hip + leg // 2, cx + leg // 2, hip + leg, cx + leg // 2 + 1)
    return canvas


def make_stickfigures(
    n_samples: int = 900, *, side: int = 20, noise: float = 0.05, random_state=None
) -> Tuple[np.ndarray, np.ndarray]:
    """The stickfigures dataset of Figure 1: 3 upper × 3 lower poses.

    Labels are flat centroid indices ``3 * upper + lower``; the nine cluster
    prototypes decompose exactly into two additive sets of protocentroids
    (upper-body images and lower-body images).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    rng = check_random_state(random_state)
    prototypes = {
        (u, l): _stickfigure(u, l, side) for u in range(3) for l in range(3)
    }
    X = np.empty((n_samples, side * side))
    y = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        u = int(rng.integers(3))
        l = int(rng.integers(3))
        image = prototypes[(u, l)] + noise * rng.normal(size=(side, side))
        X[i] = np.clip(image, 0.0, 1.0).ravel()
        y[i] = 3 * u + l
    return X, y


# ---------------------------------------------------------------------- faces
def _smooth_field(side_h: int, side_w: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency random field: coarse noise upsampled bilinearly."""
    coarse = rng.normal(size=(5, 5))
    rows = np.linspace(0, 4, side_h)
    cols = np.linspace(0, 4, side_w)
    r0 = np.floor(rows).astype(int)
    c0 = np.floor(cols).astype(int)
    r1 = np.minimum(r0 + 1, 4)
    c1 = np.minimum(c0 + 1, 4)
    fr = (rows - r0)[:, None]
    fc = (cols - c0)[None, :]
    top = coarse[np.ix_(r0, c0)] * (1 - fc) + coarse[np.ix_(r0, c1)] * fc
    bottom = coarse[np.ix_(r1, c0)] * (1 - fc) + coarse[np.ix_(r1, c1)] * fc
    return top * (1 - fr) + bottom * fr


def make_faces(
    n_persons: int = 40,
    images_per_person: int = 10,
    *,
    height: int = 64,
    width: int = 64,
    pose_std: float = 0.25,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Olivetti/CMU-style faces: per-person smooth base + pose perturbations.

    Each person is a smooth random field masked to an elliptical face region;
    individual images add a smaller smooth perturbation (pose, lighting,
    expression).  Clusters therefore correspond to persons, with strong
    within-cluster correlation — the regime of the paper's face datasets.
    """
    n_persons = check_positive_int(n_persons, "n_persons")
    images_per_person = check_positive_int(images_per_person, "images_per_person")
    rng = check_random_state(random_state)
    rows = np.arange(height)[:, None]
    cols = np.arange(width)[None, :]
    mask = (
        ((rows - height / 2.0) / (0.45 * height)) ** 2
        + ((cols - width / 2.0) / (0.38 * width)) ** 2
    ) <= 1.0

    n_samples = n_persons * images_per_person
    X = np.empty((n_samples, height * width))
    y = np.empty(n_samples, dtype=np.int64)
    i = 0
    for person in range(n_persons):
        base = 0.5 + 0.25 * _smooth_field(height, width, rng)
        for _ in range(images_per_person):
            perturbation = pose_std * _smooth_field(height, width, rng)
            image = np.clip((base + perturbation) * mask, 0.0, 1.0)
            X[i] = image.ravel()
            y[i] = person
            i += 1
    order = rng.permutation(n_samples)
    return X[order], y[order]


# -------------------------------------------------------------------- symbols
def make_symbols(
    n_samples: int = 1020,
    *,
    length: int = 398,
    n_classes: int = 6,
    noise: float = 0.08,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Symbols-style 1-D drawing trajectories.

    Six smooth prototype curves (sine families, ramps, triangles, bumps)
    with per-sample amplitude and phase jitter — a stand-in for vectorized
    handwriting trajectories.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    length = check_positive_int(length, "length")
    n_classes = check_positive_int(n_classes, "n_classes")
    if n_classes > 6:
        raise ValidationError("at most 6 symbol classes are available")
    rng = check_random_state(random_state)
    t = np.linspace(0.0, 1.0, length)
    prototypes = [
        np.sin(2.0 * np.pi * t),
        np.sin(4.0 * np.pi * t) * (1.0 - t),
        2.0 * t - 1.0,
        1.0 - 4.0 * np.abs(t - 0.5),
        np.exp(-((t - 0.3) ** 2) / 0.01) - np.exp(-((t - 0.7) ** 2) / 0.01),
        np.cos(2.0 * np.pi * t) * t,
    ]
    X = np.empty((n_samples, length))
    y = rng.integers(0, n_classes, size=n_samples).astype(np.int64)
    for i in range(n_samples):
        proto = prototypes[int(y[i])]
        amplitude = rng.uniform(0.8, 1.2)
        phase_shift = int(rng.integers(-length // 20, length // 20 + 1))
        curve = amplitude * np.roll(proto, phase_shift)
        X[i] = curve + noise * rng.normal(size=length)
    return X, y


# ------------------------------------------------------------------------ HAR
def make_har_features(
    n_samples: int = 10299,
    *,
    n_features: int = 561,
    n_classes: int = 6,
    imbalance_ratio: float = 0.72,
    class_sep: float = 1.5,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """HAR-style activity features: per-class correlated Gaussian clusters.

    Each activity class has a dense mean vector plus low-rank within-class
    correlation (sensor channels co-vary), with the moderate class imbalance
    of Table 1 (IR = 0.72).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    n_features = check_positive_int(n_features, "n_features")
    n_classes = check_positive_int(n_classes, "n_classes")
    rng = check_random_state(random_state)
    means = class_sep * rng.normal(size=(n_classes, n_features))
    rank = min(10, n_features)
    mixers = [rng.normal(size=(rank, n_features)) / np.sqrt(rank) for _ in range(n_classes)]

    weights = np.linspace(imbalance_ratio, 1.0, n_classes)
    rng.shuffle(weights)
    sizes = np.maximum(1, np.round(weights / weights.sum() * n_samples).astype(int))
    sizes[np.argmax(sizes)] += n_samples - sizes.sum()

    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=np.int64)
    offset = 0
    for label, size in enumerate(sizes):
        latent = rng.normal(size=(size, rank))
        X[offset : offset + size] = (
            means[label] + latent @ mixers[label] + 0.3 * rng.normal(size=(size, n_features))
        )
        y[offset : offset + size] = label
        offset += size
    order = rng.permutation(n_samples)
    return X[order], y[order]
