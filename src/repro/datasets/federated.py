"""Federated dataset utilities for the Figure 10 case study.

The paper simulates a federated environment with 10 clients over the FEMNIST
benchmark.  Offline we generate a FEMNIST-like corpus from the procedural
digit renderer and split it across clients with a Dirichlet label-skew — the
standard way to produce the non-IID client distributions federated-learning
papers study.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..exceptions import ValidationError
from .images import make_digit_images

__all__ = ["federated_split", "make_federated_digits"]


def federated_split(
    X: np.ndarray,
    y: np.ndarray,
    n_clients: int,
    *,
    alpha: float = 0.5,
    random_state=None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split ``(X, y)`` into per-client shards with Dirichlet label skew.

    Parameters
    ----------
    alpha : float
        Dirichlet concentration; smaller values yield more heterogeneous
        (non-IID) clients.  ``alpha -> inf`` approaches an IID split.

    Returns
    -------
    list of ``(X_client, y_client)`` pairs, one per client.  Every client is
    guaranteed at least one sample.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y).ravel()
    n_clients = check_positive_int(n_clients, "n_clients")
    if alpha <= 0:
        raise ValidationError("alpha must be positive")
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y must have the same number of samples")
    if X.shape[0] < n_clients:
        raise ValidationError("need at least one sample per client")
    rng = check_random_state(random_state)

    client_indices: List[List[int]] = [[] for _ in range(n_clients)]
    for label in np.unique(y):
        label_idx = np.flatnonzero(y == label)
        rng.shuffle(label_idx)
        proportions = rng.dirichlet(alpha * np.ones(n_clients))
        cuts = (np.cumsum(proportions) * len(label_idx)).astype(int)[:-1]
        for client, shard in enumerate(np.split(label_idx, cuts)):
            client_indices[client].extend(shard.tolist())

    # Guarantee non-empty clients by stealing from the largest shard.
    for client in range(n_clients):
        if not client_indices[client]:
            donor = max(range(n_clients), key=lambda c: len(client_indices[c]))
            client_indices[client].append(client_indices[donor].pop())

    shards = []
    for indices in client_indices:
        idx = np.asarray(sorted(indices), dtype=int)
        shards.append((X[idx], y[idx]))
    return shards


def make_federated_digits(
    n_clients: int = 10,
    samples_per_client: int = 200,
    *,
    side: int = 28,
    alpha: float = 0.5,
    random_state=None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """FEMNIST-like federated digit data: non-IID shards of synthetic digits.

    Examples
    --------
    >>> shards = make_federated_digits(3, 30, side=14, random_state=0)
    >>> len(shards)
    3
    """
    n_clients = check_positive_int(n_clients, "n_clients")
    samples_per_client = check_positive_int(samples_per_client, "samples_per_client")
    rng = check_random_state(random_state)
    X, y = make_digit_images(
        n_clients * samples_per_client, side=side, random_state=rng
    )
    return federated_split(X, y, n_clients, alpha=alpha, random_state=rng)
