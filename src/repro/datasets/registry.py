"""Dataset registry mirroring the paper's Table 1.

Every dataset of the evaluation is available by name through
:func:`load_dataset`.  Each entry records the Table 1 characteristics
(sample count, feature count, number of labels, imbalance ratio) and the
Appendix A preprocessing (max-rescaling for images, z-standardization for
the rest).  A ``scale`` argument shrinks sample counts proportionally so the
full experiment suite stays laptop-friendly; shapes and cluster counts are
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from .._validation import check_random_state
from ..exceptions import DatasetError
from . import images, synthetic

__all__ = ["Dataset", "load_dataset", "dataset_names", "dataset_summary_table"]


@dataclass
class Dataset:
    """A loaded dataset plus its Table 1 metadata.

    Attributes
    ----------
    name : str
    data : array of shape (n_samples, n_features), preprocessed.
    labels : int array of shape (n_samples,)
    n_labels : int — number of ground-truth clusters.
    has_khatri_rao_structure : bool
        True for the datasets the paper identifies as KR-structured by
        construction (stickfigures, Double MNIST).
    """

    name: str
    data: np.ndarray
    labels: np.ndarray
    n_labels: int
    has_khatri_rao_structure: bool = False
    description: str = ""

    @property
    def n_samples(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.data.shape[1])

    @property
    def imbalance_ratio(self) -> float:
        """Smallest over largest cluster size (Table 1's IR column)."""
        counts = np.bincount(self.labels.astype(int))
        counts = counts[counts > 0]
        return float(counts.min() / counts.max())


def _standardize(X: np.ndarray) -> np.ndarray:
    """Z-standardize features; constant features are left centered."""
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std == 0] = 1.0
    return (X - mean) / std


def _max_rescale(X: np.ndarray) -> np.ndarray:
    """Divide by the global maximum (the paper's image preprocessing)."""
    maximum = np.abs(X).max()
    return X / maximum if maximum else X


@dataclass
class _Spec:
    loader: Callable
    n_samples: int
    n_labels: int
    preprocessing: str  # "standardize" | "max" | "none"
    kr_structure: bool = False
    description: str = ""
    min_samples: int = 0


def _spec_table() -> Dict[str, _Spec]:
    return {
        "mnist": _Spec(
            lambda n, rng: images.make_digit_images(n, side=28, random_state=rng),
            25000, 10, "max", description="28x28 synthetic digits (MNIST stand-in)",
        ),
        "double_mnist": _Spec(
            lambda n, rng: images.make_double_digits(n, side=28, random_state=rng),
            10000, 100, "max", kr_structure=True,
            description="28x56 digit pairs, 100 clusters (Double MNIST stand-in)",
            min_samples=400,
        ),
        "har": _Spec(
            lambda n, rng: images.make_har_features(n, random_state=rng),
            10299, 6, "standardize",
            description="561-dim activity features (HAR stand-in)",
        ),
        "olivetti_faces": _Spec(
            lambda n, rng: images.make_faces(
                40, max(1, n // 40), height=64, width=64, random_state=rng
            ),
            400, 40, "standardize",
            description="64x64 faces, 40 persons (Olivetti stand-in)",
            min_samples=80,
        ),
        "cmu_faces": _Spec(
            lambda n, rng: images.make_faces(
                20, max(1, n // 20), height=30, width=32, random_state=rng
            ),
            624, 20, "standardize",
            description="30x32 faces, 20 persons (CMU Faces stand-in)",
            min_samples=40,
        ),
        "symbols": _Spec(
            lambda n, rng: images.make_symbols(n, random_state=rng),
            1020, 6, "standardize",
            description="398-dim drawing trajectories (Symbols stand-in)",
        ),
        "stickfigures": _Spec(
            lambda n, rng: images.make_stickfigures(n, random_state=rng),
            900, 9, "max", kr_structure=True,
            description="20x20 stick figures, 3 upper x 3 lower poses (Fig. 1)",
            min_samples=45,
        ),
        "optdigits": _Spec(
            lambda n, rng: images.make_digit_images(n, side=8, random_state=rng),
            5620, 10, "standardize",
            description="8x8 synthetic digits (optdigits stand-in)",
        ),
        "classification": _Spec(
            lambda n, rng: synthetic.make_classification(
                n, n_features=10, n_clusters=100, random_state=rng
            ),
            5000, 100, "standardize",
            description="100-class informative-feature clusters",
            min_samples=400,
        ),
        "chameleon": _Spec(
            lambda n, rng: synthetic.make_chameleon(n, random_state=rng),
            10000, 10, "standardize",
            description="2-D nonconvex shapes with uniform noise",
            min_samples=200,
        ),
        "soybean_large": _Spec(
            lambda n, rng: synthetic.make_soybean_like(n, random_state=rng),
            562, 15, "standardize",
            description="35 categorical attributes, 15 classes (Soybean stand-in)",
            min_samples=120,
        ),
        "blobs": _Spec(
            lambda n, rng: synthetic.make_blobs(
                n, n_features=2, n_clusters=100, random_state=rng
            ),
            5000, 100, "standardize",
            description="100 isotropic 2-D Gaussian blobs",
            min_samples=400,
        ),
        "r15": _Spec(
            lambda n, rng: synthetic.make_r15(n, random_state=rng),
            600, 15, "standardize",
            description="15 Gaussians with non-uniform spacing (R15)",
            min_samples=60,
        ),
    }


_SPECS = _spec_table()


def dataset_names() -> Tuple[str, ...]:
    """Names of all registered datasets, in Table 1 order."""
    return tuple(_SPECS.keys())


def load_dataset(
    name: str, *, scale: float = 1.0, random_state=None
) -> Dataset:
    """Load a Table 1 dataset by name.

    Parameters
    ----------
    name : str
        One of :func:`dataset_names` (case-insensitive).
    scale : float in (0, 1]
        Proportional reduction of the sample count (cluster counts and
        feature dimensions are preserved).  ``scale=1.0`` reproduces the
        Table 1 sizes.
    random_state : None, int or Generator

    Examples
    --------
    >>> ds = load_dataset("r15", scale=0.5, random_state=0)
    >>> (ds.n_samples, ds.n_features, ds.n_labels)
    (300, 2, 15)
    """
    key = str(name).strip().lower().replace(" ", "_").replace("-", "_")
    if key not in _SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    spec = _SPECS[key]
    rng = check_random_state(random_state)
    n = max(int(round(scale * spec.n_samples)), spec.min_samples or spec.n_labels * 2)
    X, y = spec.loader(n, rng)
    if spec.preprocessing == "standardize":
        X = _standardize(X)
    elif spec.preprocessing == "max":
        X = _max_rescale(X)
    return Dataset(
        name=key,
        data=np.ascontiguousarray(X, dtype=float),
        labels=np.asarray(y, dtype=np.int64),
        n_labels=spec.n_labels,
        has_khatri_rao_structure=spec.kr_structure,
        description=spec.description,
    )


def dataset_summary_table(*, scale: float = 1.0, random_state=0) -> str:
    """Render a Table 1-style summary of all registered datasets.

    Loads every dataset at the given scale and reports its realized
    characteristics (samples, features, labels, imbalance ratio).
    """
    header = f"{'Dataset':<16}{'# Data points':>14}{'# Features':>12}{'# Labels':>10}{'IR':>8}"
    lines = [header, "-" * len(header)]
    for name in dataset_names():
        ds = load_dataset(name, scale=scale, random_state=random_state)
        lines.append(
            f"{ds.name:<16}{ds.n_samples:>14}{ds.n_features:>12}"
            f"{ds.n_labels:>10}{ds.imbalance_ratio:>8.2f}"
        )
    return "\n".join(lines)
