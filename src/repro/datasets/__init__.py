"""Datasets for the paper's evaluation (Section 9.1, Table 1, Appendix A).

The paper uses synthetic scikit-learn generators, clustbench/ClustPy
benchmark datasets and UCI data.  Offline, this package generates
**synthetic stand-ins matching Table 1's shape** (sample count, feature
count, number of labels, imbalance ratio); the substitution table lives in
``DESIGN.md``.  Where the paper's argument depends on structure — the
stickfigures and Double-MNIST-style datasets, whose clusters genuinely
factor into Khatri-Rao protocentroids — the generators reproduce that
structure by construction.

Use :func:`load_dataset` (name-based, Table 1 presets) or the individual
``make_*`` generators for custom configurations.
"""

from .images import (
    make_digit_images,
    make_double_digits,
    make_faces,
    make_har_features,
    make_stickfigures,
    make_symbols,
)
from .federated import federated_split, make_federated_digits
from .registry import Dataset, dataset_names, dataset_summary_table, load_dataset
from .synthetic import (
    make_blobs,
    make_chameleon,
    make_classification,
    make_khatri_rao_blobs,
    make_quantization_image,
    make_r15,
    make_soybean_like,
)

__all__ = [
    "Dataset",
    "load_dataset",
    "dataset_names",
    "dataset_summary_table",
    "make_blobs",
    "make_classification",
    "make_khatri_rao_blobs",
    "make_r15",
    "make_chameleon",
    "make_soybean_like",
    "make_quantization_image",
    "make_digit_images",
    "make_double_digits",
    "make_stickfigures",
    "make_faces",
    "make_symbols",
    "make_har_features",
    "federated_split",
    "make_federated_digits",
]
