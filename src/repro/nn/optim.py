"""Optimizers: SGD with momentum and ADAM [Kingma & Ba, 2015].

The paper's deep-clustering experiments use ADAM with learning rate 1e-3 for
autoencoder pretraining and 1e-4 for clustering (Section 9.1).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..autodiff import Tensor
from ..exceptions import ValidationError

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, parameters: Sequence[Tensor], learning_rate: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValidationError("optimizer received no parameters")
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        learning_rate: float = 1e-2,
        *,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * p.grad
            p.data += velocity


class Adam(_Optimizer):
    """ADAM optimizer with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        learning_rate: float = 1e-3,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.data -= self.learning_rate * (m / bias1) / (np.sqrt(v / bias2) + self.epsilon)
