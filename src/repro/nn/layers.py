"""Layers: dense, Hadamard-compressed dense, activations and containers.

The :class:`HadamardLinear` layer is the building block of Khatri-Rao deep
clustering's autoencoder compression (paper Eq. 6): its weight matrix is

    W = (A_1 B_1) ⊙ (A_2 B_2) ⊙ ... ⊙ (A_q B_q)

with trainable low-rank factors.  Gradients flow through the product via the
autodiff tape, so the layer drops into any :class:`Sequential` unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..autodiff import Tensor
from ..autodiff.functional import leaky_relu, relu, sigmoid, tanh
from ..exceptions import ValidationError

__all__ = ["Module", "Linear", "HadamardLinear", "Activation", "Sequential"]

_ACTIVATIONS: Dict[str, Callable[[Tensor], Tensor]] = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "identity": lambda x: x,
}


class Module:
    """Base class: anything with parameters and a forward pass."""

    def parameters(self) -> List[Tensor]:
        """Trainable tensors of this module (and its children)."""
        return []

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


def _glorot_std(fan_in: int, fan_out: int) -> float:
    return float(np.sqrt(2.0 / (fan_in + fan_out)))


class Linear(Module):
    """Dense layer ``y = x W + b`` with Glorot-normal initialization.

    Parameters
    ----------
    in_features, out_features : int
    bias : bool
    random_state : None, int or Generator
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        random_state=None,
    ) -> None:
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        rng = check_random_state(random_state)
        std = _glorot_std(in_features, out_features)
        self.weight = Tensor(
            rng.normal(0.0, std, size=(in_features, out_features)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def parameters(self) -> List[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def dense_parameter_count(self) -> int:
        """Parameters an uncompressed layer of this shape stores."""
        count = self.in_features * self.out_features
        if self.bias is not None:
            count += self.out_features
        return count

    def set_weight(self, weight: np.ndarray) -> None:
        """Overwrite the weight matrix (used to copy pretrained layers)."""
        weight = np.asarray(weight, dtype=float)
        if weight.shape != (self.in_features, self.out_features):
            raise ValidationError(
                f"weight must have shape {(self.in_features, self.out_features)}, "
                f"got {weight.shape}"
            )
        self.weight.data[...] = weight


class HadamardLinear(Module):
    """Compressed dense layer with Hadamard-decomposed weight (Eq. 6).

    The effective weight ``W = ∏⊙ (A_i B_i)`` is rebuilt on every forward
    pass from trainable factors ``A_i ∈ R^{in×r_i}``, ``B_i ∈ R^{r_i×out}``;
    the bias (if any) stays dense.  Parameter count is
    ``Σ r_i (in + out) [+ out]`` versus ``in·out [+ out]`` for a dense layer.

    Parameters
    ----------
    in_features, out_features : int
    ranks : sequence of int
        One rank per Hadamard factor; ``len(ranks)`` is ``q`` (paper default
        ``q = 2``, both ranks equal).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        ranks: Sequence[int],
        *,
        bias: bool = True,
        random_state=None,
    ) -> None:
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.ranks = [check_positive_int(r, "rank") for r in ranks]
        if not self.ranks:
            raise ValidationError("ranks must be non-empty")
        rng = check_random_state(random_state)
        q = len(self.ranks)
        target_std = _glorot_std(in_features, out_features)
        self.factors: List[List[Tensor]] = []
        for r in self.ranks:
            # Each low-rank product contributes std target_std**(1/q); its
            # entries need std (per/√r)^(1/2) per factor matrix.
            per_product_std = target_std ** (1.0 / q)
            entry_std = (per_product_std**2 / r) ** 0.25
            A = Tensor(rng.normal(0.0, entry_std, size=(in_features, r)), requires_grad=True)
            B = Tensor(rng.normal(0.0, entry_std, size=(r, out_features)), requires_grad=True)
            self.factors.append([A, B])
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def effective_weight(self) -> Tensor:
        """Differentiable reconstruction ``(A_1 B_1) ⊙ ... ⊙ (A_q B_q)``."""
        weight: Optional[Tensor] = None
        for A, B in self.factors:
            product = A @ B
            weight = product if weight is None else weight * product
        return weight

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.effective_weight()
        if self.bias is not None:
            out = out + self.bias
        return out

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for A, B in self.factors:
            params.extend((A, B))
        if self.bias is not None:
            params.append(self.bias)
        return params

    def dense_parameter_count(self) -> int:
        """Parameters the equivalent dense layer would store."""
        count = self.in_features * self.out_features
        if self.bias is not None:
            count += self.out_features
        return count

    def initialize_from_dense(
        self, weight: np.ndarray, *, max_iter: int = 300, random_state=None
    ) -> float:
        """Warm start the factors to approximate a pretrained dense weight.

        Fits a :class:`~repro.linalg.HadamardDecomposition` to ``weight`` and
        copies the factors.  Returns the final squared approximation error.
        """
        from ..linalg import HadamardDecomposition

        weight = np.asarray(weight, dtype=float)
        if weight.shape != (self.in_features, self.out_features):
            raise ValidationError(
                f"weight must have shape {(self.in_features, self.out_features)}, "
                f"got {weight.shape}"
            )
        decomposition = HadamardDecomposition(
            self.ranks, max_iter=max_iter, random_state=random_state
        ).fit(weight)
        for (A, B), (A_fit, B_fit) in zip(self.factors, decomposition.factors_):
            A.data[...] = A_fit
            B.data[...] = B_fit
        residual = decomposition.reconstruct() - weight
        return float(np.sum(residual**2))


class Activation(Module):
    """Named activation wrapper usable inside :class:`Sequential`."""

    def __init__(self, name: str) -> None:
        key = str(name).lower()
        if key not in _ACTIVATIONS:
            raise ValidationError(
                f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}"
            )
        self.name = key
        self._fn = _ACTIVATIONS[key]

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


class Sequential(Module):
    """Feed-forward composition of modules."""

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def dense_parameter_count(self) -> int:
        """Parameters an uncompressed version of this network stores."""
        total = 0
        for layer in self.layers:
            if hasattr(layer, "dense_parameter_count"):
                total += layer.dense_parameter_count()
        return total
