"""Mini-batch training utilities.

The paper optimizes deep-clustering objectives "via batch-wise
backpropagation" with batch size 512 (Section 9.1).  :class:`Trainer`
runs a generic epoch loop over a loss callable; :func:`iterate_minibatches`
yields shuffled index batches.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..autodiff import Tensor

__all__ = ["iterate_minibatches", "Trainer"]


def iterate_minibatches(
    n_samples: int,
    batch_size: int,
    rng: np.random.Generator,
    *,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n_samples)`` in batches."""
    n_samples = check_positive_int(n_samples, "n_samples")
    batch_size = check_positive_int(batch_size, "batch_size")
    order = rng.permutation(n_samples) if shuffle else np.arange(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


class Trainer:
    """Generic epoch loop: ``loss_fn(batch_indices) -> Tensor`` per step.

    Parameters
    ----------
    optimizer : optimizer over the trainable parameters.
    batch_size : int (paper: 512)
    random_state : None, int or Generator

    Attributes
    ----------
    loss_history_ : list of float — mean loss per epoch.
    """

    def __init__(self, optimizer, *, batch_size: int = 512, random_state=None) -> None:
        self.optimizer = optimizer
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.rng = check_random_state(random_state)
        self.loss_history_: List[float] = []

    def run(
        self,
        n_samples: int,
        loss_fn: Callable[[np.ndarray], Tensor],
        *,
        epochs: int,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> List[float]:
        """Train for ``epochs`` epochs; returns the per-epoch mean losses."""
        epochs = check_positive_int(epochs, "epochs")
        for epoch in range(epochs):
            epoch_losses = []
            for batch in iterate_minibatches(n_samples, self.batch_size, self.rng):
                self.optimizer.zero_grad()
                loss = loss_fn(batch)
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses))
            self.loss_history_.append(mean_loss)
            if callback is not None:
                callback(epoch, mean_loss)
        return self.loss_history_
