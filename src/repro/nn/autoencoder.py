"""Autoencoders for deep clustering (paper Sections 3 and 9.1).

The paper's architecture is a fully-connected encoder
``m - 1024 - 512 - 256 - 10`` with a mirrored decoder, LeakyReLU activations
between layers and linear output layers.  Khatri-Rao deep clustering swaps
the *inner* layers for :class:`~repro.nn.HadamardLinear` (the input and
output layers stay dense, which "improves performance" — Section 9.1) and
grows the factor ranks until the compressed autoencoder matches the dense
one's reconstruction loss (the rank-doubling schedule, implemented in
:mod:`repro.deep.compression`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..autodiff import Tensor, no_grad
from ..exceptions import ValidationError
from .layers import Activation, HadamardLinear, Linear, Module, Sequential
from .optim import Adam
from .training import Trainer

__all__ = ["Autoencoder", "build_autoencoder"]

#: The paper's encoder widths (excluding the data dimension m).
PAPER_HIDDEN_DIMS = (1024, 512, 256, 10)
#: A small preset keeping CPU-only tests fast; same depth structure.
SMALL_HIDDEN_DIMS = (64, 32, 10)


class Autoencoder(Module):
    """Encoder/decoder pair with a shared training loop.

    Parameters
    ----------
    encoder, decoder : Sequential
        The decoder must mirror the encoder's outer dimensions.
    """

    def __init__(self, encoder: Sequential, decoder: Sequential) -> None:
        self.encoder = encoder
        self.decoder = decoder

    def encode(self, x) -> Tensor:
        return self.encoder(x)

    def decode(self, z) -> Tensor:
        return self.decoder(z)

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    def parameters(self) -> List[Tensor]:
        return self.encoder.parameters() + self.decoder.parameters()

    def dense_parameter_count(self) -> int:
        """Parameters of the uncompressed architecture (for ratios)."""
        return self.encoder.dense_parameter_count() + self.decoder.dense_parameter_count()

    def reconstruction_loss(self, X: np.ndarray, *, batch_size: int = 2048) -> float:
        """Mean squared reconstruction error over ``X`` (no gradients)."""
        X = np.asarray(X, dtype=float)
        total = 0.0
        with no_grad():
            for start in range(0, X.shape[0], batch_size):
                batch = X[start : start + batch_size]
                reconstruction = self.forward(Tensor(batch)).numpy()
                total += float(np.sum((reconstruction - batch) ** 2))
        return total / X.size

    def pretrain(
        self,
        X: np.ndarray,
        *,
        epochs: int = 50,
        batch_size: int = 512,
        learning_rate: float = 1e-3,
        random_state=None,
    ) -> List[float]:
        """Reconstruction pretraining with ADAM (paper: lr 1e-3).

        Returns the per-epoch loss history.
        """
        X = np.asarray(X, dtype=float)
        optimizer = Adam(self.parameters(), learning_rate)
        trainer = Trainer(optimizer, batch_size=batch_size, random_state=random_state)

        def loss_fn(batch_indices: np.ndarray):
            batch = Tensor(X[batch_indices])
            reconstruction = self.forward(batch)
            difference = reconstruction - batch
            return (difference * difference).mean()

        return trainer.run(X.shape[0], loss_fn, epochs=epochs)

    def transform(self, X: np.ndarray, *, batch_size: int = 2048) -> np.ndarray:
        """Latent representations of ``X`` (no gradients)."""
        X = np.asarray(X, dtype=float)
        chunks = []
        with no_grad():
            for start in range(0, X.shape[0], batch_size):
                chunks.append(self.encode(Tensor(X[start : start + batch_size])).numpy())
        return np.vstack(chunks)


def _make_stack(
    dims: Sequence[int],
    *,
    compressed_mask: Sequence[bool],
    ranks: Optional[Sequence[int]],
    n_hadamard_factors: int,
    rng: np.random.Generator,
) -> Sequential:
    """Build a stack of (Hadamard)Linear + LeakyReLU layers.

    ``compressed_mask[i]`` selects a :class:`HadamardLinear` for layer ``i``;
    the final layer is linear (no activation), as in the paper's setup.
    """
    layers: List[Module] = []
    n_layers = len(dims) - 1
    for i in range(n_layers):
        in_dim, out_dim = dims[i], dims[i + 1]
        if compressed_mask[i]:
            if ranks is not None:
                rank = ranks[i]
            else:
                # Default: rank 10-style, capped so the factorization stays
                # strictly smaller than the dense layer it replaces.
                cap = max(
                    1,
                    (in_dim * out_dim) // (n_hadamard_factors * (in_dim + out_dim)),
                )
                rank = max(1, min(10, min(in_dim, out_dim), cap))
            layer: Module = HadamardLinear(
                in_dim, out_dim, [rank] * n_hadamard_factors, random_state=rng
            )
        else:
            layer = Linear(in_dim, out_dim, random_state=rng)
        layers.append(layer)
        if i < n_layers - 1:
            layers.append(Activation("leaky_relu"))
    return Sequential(layers)


def build_autoencoder(
    input_dim: int,
    hidden_dims: Sequence[int] = SMALL_HIDDEN_DIMS,
    *,
    compressed: bool = False,
    ranks: Optional[Sequence[int]] = None,
    n_hadamard_factors: int = 2,
    compress_boundary_layers: bool = False,
    random_state=None,
) -> Autoencoder:
    """Construct a (optionally compressed) mirrored autoencoder.

    Parameters
    ----------
    input_dim : int
        Data dimension ``m``.
    hidden_dims : sequence of int
        Encoder widths after the input; the paper uses
        ``(1024, 512, 256, 10)``, the default is a small CPU preset.  The
        last entry is the latent dimension.
    compressed : bool
        Replace inner layers by :class:`HadamardLinear` (Khatri-Rao variant).
    ranks : sequence of int, optional
        Per-layer factor ranks for the encoder stack; mirrored for the
        decoder.  Defaults to the paper's ``max(10, min(d_l, m_l))`` rule,
        clipped for the small presets.
    n_hadamard_factors : int
        ``q`` of Eq. 6 (paper default 2).
    compress_boundary_layers : bool
        The paper leaves the input and output layers uncompressed; set True
        to compress them as well (ablation).
    random_state : None, int or Generator

    Examples
    --------
    >>> ae = build_autoencoder(50, (16, 4), random_state=0)
    >>> import numpy as np
    >>> ae.forward(Tensor(np.zeros((3, 50)))).shape
    (3, 50)
    """
    input_dim = check_positive_int(input_dim, "input_dim")
    dims = [input_dim] + [check_positive_int(d, "hidden_dim") for d in hidden_dims]
    if len(dims) < 2:
        raise ValidationError("hidden_dims must contain at least the latent dimension")
    rng = check_random_state(random_state)
    n_layers = len(dims) - 1

    if compressed:
        encoder_mask = [True] * n_layers
        decoder_mask = [True] * n_layers
        if not compress_boundary_layers:
            encoder_mask[0] = False  # input layer stays dense
            decoder_mask[-1] = False  # output layer stays dense
    else:
        encoder_mask = [False] * n_layers
        decoder_mask = [False] * n_layers

    encoder_ranks = list(ranks) if ranks is not None else None
    decoder_ranks = list(reversed(encoder_ranks)) if encoder_ranks is not None else None

    encoder = _make_stack(
        dims,
        compressed_mask=encoder_mask,
        ranks=encoder_ranks,
        n_hadamard_factors=n_hadamard_factors,
        rng=rng,
    )
    decoder_dims = list(reversed(dims))
    decoder = _make_stack(
        decoder_dims,
        compressed_mask=decoder_mask,
        ranks=decoder_ranks,
        n_hadamard_factors=n_hadamard_factors,
        rng=rng,
    )
    return Autoencoder(encoder, decoder)
