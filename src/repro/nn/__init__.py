"""Neural-network substrate for deep clustering (paper Sections 3, 4.2, 7).

Built on :mod:`repro.autodiff`:

* :class:`Linear` — dense layer;
* :class:`HadamardLinear` — the compressed layer of Eq. 6, whose weight is
  the Hadamard product of ``q`` low-rank factorizations;
* activations, :class:`Sequential`;
* :class:`Autoencoder` — encoder/decoder pairs, including the paper's
  ``m-1024-512-256-10`` preset and compressed variants;
* :class:`Adam` / :class:`SGD` optimizers and a mini-batch :class:`Trainer`.
"""

from .autoencoder import Autoencoder, build_autoencoder
from .layers import (
    Activation,
    HadamardLinear,
    Linear,
    Module,
    Sequential,
)
from .optim import SGD, Adam
from .training import Trainer, iterate_minibatches

__all__ = [
    "Module",
    "Linear",
    "HadamardLinear",
    "Activation",
    "Sequential",
    "Autoencoder",
    "build_autoencoder",
    "Adam",
    "SGD",
    "Trainer",
    "iterate_minibatches",
]
