"""Portable data summaries — the artifact Khatri-Rao clustering produces.

Data summarization is about *shipping a small object instead of the data*.
:class:`DataSummary` is that object: protocentroid sets (or plain
centroids), the aggregator and metadata, with save/load to ``.npz``,
centroid reconstruction, assignment of new data and a compression report.
Any fitted model from :mod:`repro.core` exports one through
:func:`summarize`.

Examples
--------
>>> import numpy as np
>>> from repro import KhatriRaoKMeans
>>> from repro.datasets import make_blobs
>>> from repro.summary import summarize
>>> X, _ = make_blobs(400, n_clusters=9, random_state=0)
>>> model = KhatriRaoKMeans((3, 3), n_init=5, random_state=0).fit(X)
>>> summary = summarize(model)
>>> summary.n_clusters, summary.stored_vectors
(9, 6)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ._validation import (
    as_float_array,
    check_array,
    check_dtype,
    check_random_state,
    int_prod,
)
from .core._distances import assign_to_nearest
from .core._factored import assign_factored
from .core._update import resolve_update, update_protocentroids
from .core.kmeans import _check_sample_weight
from .exceptions import SummaryFormatError, ValidationError
from .linalg import get_aggregator, khatri_rao_combine
from .runtime.checkpoint import array_digest

__all__ = ["DataSummary", "summarize"]

_FORMAT_VERSION = 1


@dataclass
class DataSummary:
    """A self-contained centroid-based summary of a dataset.

    Attributes
    ----------
    protocentroids : list of arrays
        One ``(h_q, m)`` array per set; a single-set list is a plain
        centroid summary.  A float32/float64 dtype is preserved (a float32
        summary is half the bytes on the wire — the serving configuration);
        other dtypes widen to float64.  All sets must share one dtype.
    aggregator_name : str
        ``"sum"`` or ``"product"``.
    metadata : dict
        Free-form, JSON-serializable provenance (dataset name, algorithm,
        inertia at fit time, ...).
    """

    protocentroids: List[np.ndarray]
    aggregator_name: str = "sum"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.protocentroids:
            raise ValidationError("a summary needs at least one protocentroid set")
        self.protocentroids = [
            as_float_array(theta) for theta in self.protocentroids
        ]
        m = self.protocentroids[0].shape[1]
        dtype = self.protocentroids[0].dtype
        for q, theta in enumerate(self.protocentroids):
            if theta.ndim != 2 or theta.shape[1] != m:
                raise ValidationError(
                    f"protocentroid set {q} has shape {theta.shape}, expected (*, {m})"
                )
            if theta.dtype != dtype:
                raise ValidationError(
                    f"protocentroid set {q} has dtype {theta.dtype}, but set 0 "
                    f"has {dtype}; cast the sets consistently (see astype)"
                )
        get_aggregator(self.aggregator_name)  # validate eagerly

    # ------------------------------------------------------------ properties
    @property
    def cardinalities(self) -> tuple:
        return tuple(theta.shape[0] for theta in self.protocentroids)

    @property
    def n_features(self) -> int:
        return int(self.protocentroids[0].shape[1])

    @property
    def n_clusters(self) -> int:
        # int_prod, not np.prod: the implicit grid size overflows int64
        # for large configurations and np.prod silently wraps.
        return int_prod(self.cardinalities)

    @property
    def stored_vectors(self) -> int:
        return int(sum(self.cardinalities))

    @property
    def dtype(self) -> np.dtype:
        """Working dtype of the stored protocentroids."""
        return self.protocentroids[0].dtype

    @property
    def parameter_count(self) -> int:
        return self.stored_vectors * self.n_features

    def compression_ratio(self) -> float:
        """Parameters stored relative to an explicit centroid summary."""
        return self.parameter_count / (self.n_clusters * self.n_features)

    def astype(self, dtype) -> "DataSummary":
        """Return a copy of this summary cast to another working dtype.

        The serving-shaped export: ``summary.astype("float32")`` halves the
        payload and makes :meth:`assign`/:meth:`inertia` score new data in
        float32 (see ``docs/numerics.md`` for the error envelope).  Metadata
        is shallow-copied; ``astype(self.dtype)`` still returns a fresh
        copy.
        """
        dtype = check_dtype(dtype)
        return DataSummary(
            [theta.astype(dtype) for theta in self.protocentroids],
            aggregator_name=self.aggregator_name,
            metadata=dict(self.metadata),
        )

    # -------------------------------------------------------------- behavior
    def centroids(self) -> np.ndarray:
        """Reconstruct the full centroid matrix."""
        return khatri_rao_combine(self.protocentroids, self.aggregator_name)

    def _nearest(self, X: np.ndarray):
        """Labels and squared distances to the nearest centroid.

        Routes through the factored Khatri-Rao kernel when the aggregator
        decomposes (sum), so out-of-sample assignment never materializes the
        ``(∏ h_q, m)`` centroid grid; other aggregators fall back to the
        materialized path.
        """
        aggregator = get_aggregator(self.aggregator_name)
        if aggregator.supports_factored_assignment:
            return assign_factored(X, self.protocentroids, aggregator)
        return assign_to_nearest(X, self.centroids())

    def _check_features(self, X) -> np.ndarray:
        # New data is scored in the summary's own working dtype.
        X = check_array(X, dtype=self.dtype)
        if X.shape[1] != self.n_features:
            raise ValidationError(
                f"X has {X.shape[1]} features, summary has {self.n_features}"
            )
        return X

    def assign(self, X) -> np.ndarray:
        """Assign each row of ``X`` to its nearest reconstructed centroid."""
        X = self._check_features(X)
        labels, _ = self._nearest(X)
        return labels

    def score(self, X):
        """Labels *and* squared distances to the nearest centroid.

        One kernel call serving both :meth:`assign` and :meth:`inertia`
        shapes — the entry point the micro-batcher uses so a coalesced
        batch pays for exactly one factored sweep.

        Returns
        -------
        labels : (n,) int array
        distances : (n,) array of squared distances
        """
        X = self._check_features(X)
        return self._nearest(X)

    def inertia(self, X) -> float:
        """Squared reconstruction error of ``X`` under this summary."""
        X = self._check_features(X)
        _, distances = self._nearest(X)
        return float(distances.sum(dtype=np.float64))

    def refine(
        self,
        X,
        *,
        n_steps: int = 1,
        update: str = "auto",
        sample_weight=None,
        random_state=None,
    ) -> "DataSummary":
        """Run ``n_steps`` closed-form Lloyd refinements on ``X``, in place.

        Summary maintenance without refitting from scratch: each step
        assigns ``X`` (through the factored kernel when the aggregator
        decomposes) and applies the closed-form protocentroid update of
        Proposition 6.1 through :mod:`repro.core._update` — the ``update``
        knob picks the contingency-table or gather arithmetic exactly as on
        the estimators.  Protocentroids that receive no mass are reseeded
        from ``random_state``.  Everything runs in the summary's own
        working :attr:`dtype` (``X`` is cast on entry; grouped accumulation
        stays float64 as documented in ``docs/numerics.md``).  Returns
        ``self``.

        Parameters
        ----------
        X : array of shape (n, m)
            Data to refine against; must match :attr:`n_features`.
        n_steps : int
            Number of assign-update sweeps.
        update : {"auto", "factored", "gather"}
            Update-kernel knob, as on the estimators.
        sample_weight : array of shape (n,), optional
            Per-point weights of the weighted Proposition 6.1.
        random_state : None, int or Generator
            Source of empty-protocentroid reseed draws.
        """
        X = self._check_features(X)
        aggregator = get_aggregator(self.aggregator_name)
        factored = resolve_update(update, aggregator)
        rng = check_random_state(random_state)
        if sample_weight is not None:
            sample_weight = _check_sample_weight(
                sample_weight, X.shape[0], dtype=X.dtype
            )
        for _ in range(int(n_steps)):
            labels, _ = self._nearest(X)
            set_labels = np.stack(
                np.unravel_index(labels, self.cardinalities), axis=1
            )
            self.protocentroids = update_protocentroids(
                X, self.protocentroids, set_labels, aggregator, rng,
                weights=sample_weight, factored=factored,
            )
        return self

    def report(self) -> str:
        """Human-readable compression report."""
        lines = [
            f"DataSummary: {self.n_clusters} clusters over "
            f"{self.n_features} features",
            f"  sets          : {self.cardinalities} (aggregator "
            f"{self.aggregator_name!r})",
            f"  stored vectors: {self.stored_vectors} "
            f"({self.parameter_count} parameters, {self.dtype})",
            f"  compression   : {self.compression_ratio():.2f}x of an "
            f"explicit {self.n_clusters}-centroid summary",
        ]
        if self.metadata:
            lines.append(f"  metadata      : {json.dumps(self.metadata, sort_keys=True)}")
        return "\n".join(lines)

    # ---------------------------------------------------------- persistence
    def save(self, path: Union[str, Path], *, fault_hook=None) -> Path:
        """Serialize to a ``.npz`` file atomically; returns the written path.

        The archive is written to a ``.tmp`` sibling and moved into place
        with :func:`os.replace`, so a crash mid-save never leaves a torn
        archive at ``path`` — either the previous file survives intact or
        the new one is complete.  The header embeds a SHA-256 digest of
        every protocentroid set, which :meth:`load` verifies; a bit-flipped
        or truncated-then-patched archive fails typed instead of serving
        corrupt centroids.

        ``fault_hook``, if given, is called with a stage name (``"write"``
        before the bytes go out, ``"replace"`` before the atomic rename)
        and may raise to simulate a crash at that point — the seam the
        artifact-integrity chaos tests drive.
        """
        path = Path(path)
        # np.savez appends .npz to bare *filenames*; we resolve the final
        # name up front because the atomic rename needs to know it.
        final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
        arrays = {
            f"protocentroids_{q}": theta
            for q, theta in enumerate(self.protocentroids)
        }
        # cardinalities/n_features/dtype are redundant with the arrays on
        # purpose: load() cross-checks them so a corrupted or hand-edited
        # archive fails with the offending field named instead of producing
        # a summary whose shape silently disagrees with what was saved.
        header = json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "aggregator": self.aggregator_name,
                "num_sets": len(self.protocentroids),
                "cardinalities": list(self.cardinalities),
                "n_features": self.n_features,
                "dtype": self.dtype.name,
                "metadata": self.metadata,
                "checksums": {key: array_digest(a) for key, a in arrays.items()},
            }
        )
        tmp = final.with_name(final.name + ".tmp")
        try:
            if fault_hook is not None:
                fault_hook("write")
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
                    **arrays,
                )
                handle.flush()
                os.fsync(handle.fileno())
            if fault_hook is not None:
                fault_hook("replace")
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        return final

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DataSummary":
        """Load a summary written by :meth:`save`.

        A malformed archive — truncated file, missing keys, wrong dtypes,
        cardinalities that contradict the header — raises
        :class:`~repro.exceptions.SummaryFormatError` with the offending
        field named, never a bare ``KeyError``/``ValueError`` out of the
        ``.npz`` machinery.  This is the loader the serving registry trusts
        with operator-supplied files.
        """
        path = Path(path)
        try:
            archive_ctx = np.load(path)
        except FileNotFoundError:
            raise
        except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
            raise SummaryFormatError(
                f"{path} is not a readable .npz archive: {exc}"
            ) from exc
        with archive_ctx as archive:
            if "header" not in archive.files:
                raise SummaryFormatError(
                    f"{path} is not a DataSummary archive", field="header"
                )
            try:
                header = json.loads(bytes(archive["header"]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SummaryFormatError(
                    f"{path} has an unparseable header: {exc}", field="header"
                ) from exc
            if not isinstance(header, dict):
                raise SummaryFormatError(
                    f"{path} header must be a JSON object, got "
                    f"{type(header).__name__}", field="header",
                )
            if header.get("format_version") != _FORMAT_VERSION:
                raise SummaryFormatError(
                    f"unsupported summary format "
                    f"{header.get('format_version')!r}", field="format_version",
                )
            num_sets = header.get("num_sets")
            if not isinstance(num_sets, int) or num_sets < 1:
                raise SummaryFormatError(
                    f"num_sets must be a positive integer, got {num_sets!r}",
                    field="num_sets",
                )
            aggregator = header.get("aggregator")
            if not isinstance(aggregator, str):
                raise SummaryFormatError(
                    f"aggregator must be a string, got {aggregator!r}",
                    field="aggregator",
                )
            metadata = header.get("metadata", {})
            if not isinstance(metadata, dict):
                raise SummaryFormatError(
                    f"metadata must be a JSON object, got "
                    f"{type(metadata).__name__}", field="metadata",
                )

            protocentroids = []
            for q in range(num_sets):
                key = f"protocentroids_{q}"
                if key not in archive.files:
                    raise SummaryFormatError(
                        f"{path} is missing protocentroid set {q} "
                        f"(header says num_sets={num_sets})", field=key,
                    )
                theta = archive[key]
                if theta.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
                    raise SummaryFormatError(
                        f"protocentroid set {q} has dtype {theta.dtype}, "
                        "expected float32 or float64", field=key,
                    )
                if theta.ndim != 2 or theta.shape[0] < 1 or theta.shape[1] < 1:
                    raise SummaryFormatError(
                        f"protocentroid set {q} has shape {theta.shape}, "
                        "expected a non-empty 2-D array", field=key,
                    )
                protocentroids.append(theta)

            # Content-integrity check: archives written by save() carry a
            # SHA-256 digest per set.  Older archives without the field
            # skip verification (back-compat), but a present-and-wrong
            # digest is always a hard typed failure — never serve silently
            # corrupt centroids.
            checksums = header.get("checksums")
            if checksums is not None:
                if not isinstance(checksums, dict):
                    raise SummaryFormatError(
                        f"{path} header checksums must be a JSON object, got "
                        f"{type(checksums).__name__}", field="checksum",
                    )
                for q, theta in enumerate(protocentroids):
                    key = f"protocentroids_{q}"
                    if checksums.get(key) != array_digest(theta):
                        raise SummaryFormatError(
                            f"{path}: SHA-256 digest mismatch for {key} — "
                            "the archive content is corrupt", field="checksum",
                        )

            # Cross-check the redundant header fields (written since they
            # were introduced; absent in older archives, which skip this).
            cls._check_header_consistency(path, header, protocentroids)

            try:
                return cls(
                    protocentroids=protocentroids,
                    aggregator_name=aggregator,
                    metadata=metadata,
                )
            except SummaryFormatError:
                raise
            except ValidationError as exc:
                # e.g. sets disagreeing on n_features / dtype, or an
                # unknown aggregator: re-raise typed, pointing at the file.
                raise SummaryFormatError(f"{path}: {exc}") from exc

    @staticmethod
    def _check_header_consistency(path, header, protocentroids) -> None:
        """Raise :class:`SummaryFormatError` if header and arrays disagree."""
        cards = tuple(theta.shape[0] for theta in protocentroids)
        if "cardinalities" in header:
            declared = header["cardinalities"]
            if not (
                isinstance(declared, list) and tuple(declared) == cards
            ):
                raise SummaryFormatError(
                    f"{path} header declares cardinalities {declared!r} but "
                    f"the stored sets have {cards}", field="cardinalities",
                )
        if "n_features" in header:
            m = protocentroids[0].shape[1]
            if header["n_features"] != m:
                raise SummaryFormatError(
                    f"{path} header declares n_features={header['n_features']!r} "
                    f"but set 0 stores {m} features", field="n_features",
                )
        if "dtype" in header:
            stored = protocentroids[0].dtype.name
            if header["dtype"] != stored:
                raise SummaryFormatError(
                    f"{path} header declares dtype {header['dtype']!r} but "
                    f"the stored sets are {stored}", field="dtype",
                )


def summarize(model, *, metadata: Optional[Dict] = None) -> DataSummary:
    """Export a fitted clustering model as a :class:`DataSummary`.

    Supports any object exposing either ``protocentroids_`` plus an
    ``aggregator`` (KR-family estimators) or ``cluster_centers_``
    (k-Means-family estimators).
    """
    meta = dict(metadata or {})
    meta.setdefault("algorithm", type(model).__name__)
    if getattr(model, "protocentroids_", None) is not None:
        aggregator = getattr(model, "aggregator", None)
        name = aggregator.name if aggregator is not None else "sum"
        if hasattr(model, "inertia_") and np.isfinite(model.inertia_):
            meta.setdefault("inertia", float(model.inertia_))
        return DataSummary(
            [theta.copy() for theta in model.protocentroids_],
            aggregator_name=name,
            metadata=meta,
        )
    if getattr(model, "cluster_centers_", None) is not None:
        if hasattr(model, "inertia_") and np.isfinite(model.inertia_):
            meta.setdefault("inertia", float(model.inertia_))
        return DataSummary(
            [model.cluster_centers_.copy()],
            aggregator_name="sum",
            metadata=meta,
        )
    raise ValidationError(
        f"cannot summarize {type(model).__name__}: fit it first, or pass a model "
        "with protocentroids_ or cluster_centers_"
    )
