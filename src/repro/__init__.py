"""repro — Khatri-Rao Clustering for Data Summarization (EDBT 2026).

A from-scratch reproduction of the Khatri-Rao clustering paradigm
[Ciaperoni, Leiber, Gionis, Mannila — EDBT 2026]: centroid-based data
summaries whose centroids arise from the interaction of small sets of
*protocentroids* through elementwise Khatri-Rao operators.

Quickstart
----------
>>> from repro import KhatriRaoKMeans
>>> from repro.datasets import load_dataset
>>> ds = load_dataset("stickfigures", random_state=0)
>>> model = KhatriRaoKMeans((3, 3), aggregator="sum", random_state=0).fit(ds.data)
>>> model.centroids().shape                         # 9 centroids ...
(9, 400)
>>> model.parameter_count() < 9 * ds.n_features     # ... from 6 stored vectors
True

Public surface
--------------
* :class:`~repro.core.KMeans`, :class:`~repro.core.KhatriRaoKMeans`,
  :class:`~repro.core.NaiveKhatriRao` — k-means-family algorithms;
* :mod:`repro.deep` — DKM/IDEC and their Khatri-Rao variants;
* :mod:`repro.federated` — FkM and Khatri-Rao-FkM;
* :mod:`repro.serving` — the batched model server (registry,
  micro-batcher, HTTP front end, metrics) over fitted summaries;
* :mod:`repro.monitoring` — streaming drift monitoring over online
  ``partial_fit`` (typed alerts, intervention policies, the
  golden-dataset regression harness);
* :mod:`repro.runtime` — fault-tolerant training runtime
  (checkpoint/resume, supervised parallel restarts), with the shared
  fault-injection vocabulary in :mod:`repro.faults`;
* :mod:`repro.applications` — color quantization;
* :mod:`repro.datasets`, :mod:`repro.metrics`, :mod:`repro.linalg`,
  :mod:`repro.core.design` — data, evaluation and design-choice utilities.
"""

from . import applications, core, datasets, deep, federated, linalg, metrics, viz
from .core import KhatriRaoKMeans, KMeans, MiniBatchKhatriRaoKMeans, NaiveKhatriRao
from .deep import DEC, DKM, IDEC, KhatriRaoDEC, KhatriRaoDKM, KhatriRaoIDEC
from .summary import DataSummary, summarize
from . import faults, monitoring, runtime, serving
from .exceptions import (
    BatcherStoppedError,
    CheckpointError,
    ConvergenceWarning,
    DatasetError,
    DtypeFallbackWarning,
    GoldenMismatchError,
    ModelNotFoundError,
    MonitoringError,
    NotFittedError,
    QuorumError,
    RateLimitError,
    ReproError,
    RestartFailedError,
    ServingError,
    SummaryFormatError,
    ValidationError,
)
from .federated import FederatedKMeans, KhatriRaoFederatedKMeans
from .linalg import khatri_rao_combine

__version__ = "1.0.0"

__all__ = [
    "KMeans",
    "KhatriRaoKMeans",
    "MiniBatchKhatriRaoKMeans",
    "NaiveKhatriRao",
    "DKM",
    "KhatriRaoDKM",
    "IDEC",
    "KhatriRaoIDEC",
    "DEC",
    "KhatriRaoDEC",
    "DataSummary",
    "summarize",
    "FederatedKMeans",
    "KhatriRaoFederatedKMeans",
    "khatri_rao_combine",
    "ReproError",
    "ValidationError",
    "SummaryFormatError",
    "CheckpointError",
    "RestartFailedError",
    "QuorumError",
    "NotFittedError",
    "MonitoringError",
    "GoldenMismatchError",
    "DatasetError",
    "ServingError",
    "ModelNotFoundError",
    "RateLimitError",
    "BatcherStoppedError",
    "ConvergenceWarning",
    "DtypeFallbackWarning",
    "core",
    "deep",
    "datasets",
    "federated",
    "faults",
    "applications",
    "linalg",
    "metrics",
    "monitoring",
    "runtime",
    "serving",
    "viz",
    "__version__",
]
