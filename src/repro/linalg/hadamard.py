"""Hadamard decomposition of weight matrices (paper Section 4.2, Eq. 6).

Khatri-Rao deep clustering compresses each autoencoder layer
``W ∈ R^{d×m}`` by reparameterizing it as the Hadamard (elementwise) product
of ``q`` low-rank factorizations::

    W = (A_1 B_1) ⊙ (A_2 B_2) ⊙ ... ⊙ (A_q B_q),

with ``A_i ∈ R^{d×r_i}`` and ``B_i ∈ R^{r_i×m}``.  A product of factors with
ranks ``r_1, ..., r_q`` can reach rank up to ``∏ r_i`` while storing only
``∑ r_i (d + m)`` parameters, versus ``d·m`` for the dense matrix.

This module provides the pure linear-algebra pieces:

* :func:`hadamard_reconstruct` — evaluate Eq. 6;
* :func:`hadamard_parameter_count` — parameter accounting used in the
  compression-ratio columns of Tables 2 and 3;
* :func:`init_hadamard_factors` — initialization such that the product's
  entries have a controlled scale (important for ``q ≥ 2`` stability);
* :class:`HadamardDecomposition` — gradient-based fitting of a *given*
  matrix, used to initialize compressed layers from pretrained dense ones and
  by the naïve post-hoc compression baseline.

The trainable-layer counterpart (with backpropagation through the product)
lives in :mod:`repro.nn.layers` as ``HadamardLinear``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..exceptions import ValidationError

__all__ = [
    "hadamard_reconstruct",
    "hadamard_parameter_count",
    "init_hadamard_factors",
    "HadamardDecomposition",
]


def hadamard_reconstruct(factors: Sequence[Tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """Evaluate ``(A_1 B_1) ⊙ ... ⊙ (A_q B_q)`` for the given factor pairs."""
    if not factors:
        raise ValidationError("at least one (A, B) factor pair is required")
    result = None
    shape = None
    for idx, (A, B) in enumerate(factors):
        A = np.asarray(A, dtype=float)
        B = np.asarray(B, dtype=float)
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise ValidationError(
                f"factor pair {idx} has incompatible shapes {A.shape} x {B.shape}"
            )
        product = A @ B
        if shape is None:
            shape = product.shape
        elif product.shape != shape:
            raise ValidationError(
                f"factor pair {idx} produces shape {product.shape}, expected {shape}"
            )
        result = product if result is None else result * product
    return result


def hadamard_parameter_count(d: int, m: int, ranks: Sequence[int]) -> int:
    """Parameters stored by a Hadamard decomposition of a ``d×m`` matrix.

    Examples
    --------
    >>> hadamard_parameter_count(100, 50, [10, 10])  # 2 * 10 * (100 + 50)
    3000
    """
    d = check_positive_int(d, "d")
    m = check_positive_int(m, "m")
    total = 0
    for r in ranks:
        r = check_positive_int(r, "rank")
        total += r * (d + m)
    return total


def max_representable_rank(ranks: Sequence[int]) -> int:
    """Upper bound on the rank reachable by a Hadamard product of factors."""
    result = 1
    for r in ranks:
        result *= check_positive_int(r, "rank")
    return result


def init_hadamard_factors(
    d: int,
    m: int,
    ranks: Sequence[int],
    *,
    scale: float = 1.0,
    random_state=None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Random factors whose Hadamard product has entry std close to ``scale``.

    Each low-rank product ``A_i B_i`` is initialized with entry standard
    deviation ``scale ** (1/q)`` so the ``q``-way product's entries have
    standard deviation on the order of ``scale``, mirroring the careful
    initialization FedPara-style reparameterizations require.
    """
    rng = check_random_state(random_state)
    ranks = [check_positive_int(r, "rank") for r in ranks]
    q = len(ranks)
    if q == 0:
        raise ValidationError("ranks must be non-empty")
    per_factor_std = float(scale) ** (1.0 / q)
    factors = []
    for r in ranks:
        # A@B entry variance is r * var(A) * var(B); pick var(A) = var(B) so
        # the low-rank product's entries have std per_factor_std.
        entry_std = (per_factor_std**2 / r) ** 0.25
        A = rng.normal(0.0, entry_std, size=(d, r))
        B = rng.normal(0.0, entry_std, size=(r, m))
        factors.append((A, B))
    return factors


class HadamardDecomposition:
    """Fit a Hadamard decomposition to a fixed target matrix.

    Minimizes ``||W - (A_1 B_1) ⊙ ... ⊙ (A_q B_q)||_F^2`` by full-batch
    gradient descent with per-factor closed-form gradients.  Used to warm
    start compressed autoencoder layers from pretrained dense weights and as
    a standalone matrix-compression tool.

    Parameters
    ----------
    ranks : sequence of int
        Rank ``r_i`` of each factor pair; ``len(ranks)`` is ``q``.
    max_iter : int
        Maximum gradient iterations.
    tol : float
        Relative-improvement stopping tolerance.
    learning_rate : float
        Step size for gradient descent (Adam-style adaptive scaling).
    random_state : None, int or Generator
        Source of randomness for factor initialization.

    Attributes
    ----------
    factors_ : list of (A_i, B_i) pairs
    loss_history_ : list of float
        Frobenius loss after each iteration.
    """

    def __init__(
        self,
        ranks: Sequence[int],
        *,
        max_iter: int = 1000,
        tol: float = 1e-8,
        learning_rate: float = 0.02,
        random_state=None,
    ) -> None:
        self.ranks = [check_positive_int(r, "rank") for r in ranks]
        if not self.ranks:
            raise ValidationError("ranks must be non-empty")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.learning_rate = float(learning_rate)
        # Adam's sign-like first steps can raise the loss for dozens of
        # iterations before descending; a generous patience avoids premature
        # stops while max_iter still bounds the work.
        self.patience = 100
        self.random_state = random_state
        self.factors_: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        self.loss_history_: List[float] = []

    def fit(self, W: np.ndarray) -> "HadamardDecomposition":
        """Fit the decomposition to ``W`` and return ``self``."""
        W = np.asarray(W, dtype=float)
        if W.ndim != 2:
            raise ValidationError(f"W must be 2-D, got shape {W.shape}")
        d, m = W.shape
        rng = check_random_state(self.random_state)
        scale = float(np.std(W)) or 1.0
        factors = init_hadamard_factors(d, m, self.ranks, scale=scale, random_state=rng)

        # Adam state, one slot per factor matrix.
        adam_m = [[np.zeros_like(A), np.zeros_like(B)] for A, B in factors]
        adam_v = [[np.zeros_like(A), np.zeros_like(B)] for A, B in factors]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        self.loss_history_ = []
        best_loss = np.inf
        best_factors = [(A.copy(), B.copy()) for A, B in factors]
        stall = 0
        for iteration in range(1, self.max_iter + 1):
            products = [A @ B for A, B in factors]
            approx = np.ones_like(W)
            for product in products:
                approx = approx * product
            residual = approx - W
            loss = float(np.sum(residual**2))
            self.loss_history_.append(loss)
            # Adam is non-monotone: track the best factors and stop only
            # after `patience` iterations without meaningful improvement.
            if not np.isfinite(best_loss) or loss < best_loss - self.tol * max(
                best_loss, 1e-30
            ):
                best_loss = loss
                best_factors = [(A.copy(), B.copy()) for A, B in factors]
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break

            for i, (A, B) in enumerate(factors):
                # d loss / d (A_i B_i) = 2 residual ⊙ ∏_{j≠i} (A_j B_j)
                others = np.ones_like(W)
                for j, product in enumerate(products):
                    if j != i:
                        others = others * product
                grad_product = 2.0 * residual * others
                grad_A = grad_product @ B.T
                grad_B = A.T @ grad_product
                for slot, (mat, grad) in enumerate(((A, grad_A), (B, grad_B))):
                    adam_m[i][slot] = beta1 * adam_m[i][slot] + (1 - beta1) * grad
                    adam_v[i][slot] = beta2 * adam_v[i][slot] + (1 - beta2) * grad**2
                    m_hat = adam_m[i][slot] / (1 - beta1**iteration)
                    v_hat = adam_v[i][slot] / (1 - beta2**iteration)
                    mat -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

        self.factors_ = best_factors
        return self

    def reconstruct(self) -> np.ndarray:
        """Return the current approximation of the fitted matrix."""
        if self.factors_ is None:
            raise ValidationError("HadamardDecomposition is not fitted yet")
        return hadamard_reconstruct(self.factors_)

    def parameter_count(self, d: int, m: int) -> int:
        """Parameters stored by this decomposition for a ``d×m`` target."""
        return hadamard_parameter_count(d, m, self.ranks)
