"""Linear-algebra substrate for Khatri-Rao clustering.

This subpackage implements the two operator families the paper builds on:

* **Khatri-Rao operators** (Section 3): given ``p`` sets of vectors, produce
  every elementwise ``sum`` or ``product`` combination with one vector from
  each set — the mechanism by which protocentroids generate centroids.
  Aggregators additionally expose a *factored-assignment capability*
  (``supports_factored_assignment`` plus the ``cross_gram`` /
  ``self_interaction`` / ``factored_shift`` / ``factored_drift`` hooks)
  that lets the clustering layer compute distances to all combinations —
  and bound every combination's movement between iterations — without
  materializing them.
* **Hadamard decomposition** (Section 4.2, Eq. 6): reparameterize a weight
  matrix as the Hadamard product of low-rank factors, the mechanism by which
  autoencoder parameters are compressed in Khatri-Rao deep clustering.
"""

from .aggregators import (
    Aggregator,
    ProductAggregator,
    SumAggregator,
    get_aggregator,
    resolve_working_dtype,
)
from .hadamard import (
    HadamardDecomposition,
    hadamard_parameter_count,
    hadamard_reconstruct,
    init_hadamard_factors,
)
from .khatri_rao import (
    flat_to_tuple,
    khatri_rao_combine,
    khatri_rao_product,
    num_combinations,
    tuple_to_flat,
)

__all__ = [
    "Aggregator",
    "SumAggregator",
    "ProductAggregator",
    "get_aggregator",
    "resolve_working_dtype",
    "khatri_rao_combine",
    "khatri_rao_product",
    "num_combinations",
    "tuple_to_flat",
    "flat_to_tuple",
    "HadamardDecomposition",
    "hadamard_reconstruct",
    "hadamard_parameter_count",
    "init_hadamard_factors",
]
