"""Khatri-Rao operators over sets of vectors (paper Section 3).

Given ``p`` sets of protocentroids, stacked as matrices
``thetas[q] ∈ R^{h_q × m}``, the Khatri-Rao ``⊕`` operator produces the
``h_1 · h_2 · ... · h_p`` vectors obtained by applying ``⊕`` elementwise to
every combination of one vector per set.  The paper names the operator after
the Khatri-Rao matrix product [Khatri & Rao, 1968], which is recovered for
``⊕ = ×`` on column-partitioned matrices.

The flat ordering of combinations follows C-order (row-major) over the index
tuple ``(j_1, ..., j_p)``: the last set varies fastest.  This ordering is the
contract shared by the clustering code (centroid ``i`` ↔ tuple
:func:`flat_to_tuple`\\ ``(i)``) and must never change silently; use
:func:`tuple_to_flat` / :func:`flat_to_tuple` instead of ad-hoc arithmetic.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .._validation import as_float_array, check_cardinalities, int_prod
from ..exceptions import ValidationError
from .aggregators import get_aggregator

__all__ = [
    "khatri_rao_combine",
    "khatri_rao_product",
    "num_combinations",
    "tuple_to_flat",
    "flat_to_tuple",
]


def num_combinations(cardinalities: Sequence[int]) -> int:
    """Number of centroids representable by sets of the given cardinalities.

    Examples
    --------
    >>> num_combinations((3, 3))
    9
    """
    cards = check_cardinalities(cardinalities)
    # int_prod, not np.prod: int64 wraps past 2**63 (e.g. eight sets of 256).
    return int_prod(cards)


def tuple_to_flat(indices: Sequence[int], cardinalities: Sequence[int]) -> int:
    """Map a tuple of per-set protocentroid indices to a flat centroid index.

    Uses C-order (last index fastest), matching
    :func:`khatri_rao_combine`'s output ordering.

    Examples
    --------
    >>> tuple_to_flat((1, 2), (3, 4))
    6
    """
    cards = check_cardinalities(cardinalities)
    if len(indices) != len(cards):
        raise ValidationError(
            f"expected {len(cards)} indices (one per set), got {len(indices)}"
        )
    flat = 0
    for idx, card in zip(indices, cards):
        idx = int(idx)
        if not 0 <= idx < card:
            raise ValidationError(f"index {idx} out of range for set of size {card}")
        flat = flat * card + idx
    return flat


def flat_to_tuple(flat: int, cardinalities: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`tuple_to_flat`.

    Examples
    --------
    >>> flat_to_tuple(6, (3, 4))
    (1, 2)
    """
    cards = check_cardinalities(cardinalities)
    total = int_prod(cards)
    flat = int(flat)
    if not 0 <= flat < total:
        raise ValidationError(f"flat index {flat} out of range for {cards} ({total} combos)")
    indices = []
    for card in reversed(cards):
        indices.append(flat % card)
        flat //= card
    return tuple(reversed(indices))


def khatri_rao_combine(
    thetas: Sequence[np.ndarray], aggregator: "Aggregator | str" = "sum"
) -> np.ndarray:
    """Materialize all centroids from ``p`` sets of protocentroids.

    Parameters
    ----------
    thetas : sequence of arrays, each of shape ``(h_q, m)``
        The protocentroid sets.  All sets must share the feature dimension.
    aggregator : str or Aggregator
        The elementwise ``⊕`` operator (``"sum"`` or ``"product"``).

    Returns
    -------
    numpy.ndarray of shape ``(h_1 · ... · h_p, m)``
        Row ``i`` is the aggregation of protocentroids indexed by
        :func:`flat_to_tuple`\\ ``(i, (h_1, ..., h_p))``.

    Examples
    --------
    >>> import numpy as np
    >>> a = np.array([[0.0], [1.0]])
    >>> b = np.array([[10.0], [20.0], [30.0]])
    >>> khatri_rao_combine([a, b], "sum").ravel().tolist()
    [10.0, 20.0, 30.0, 11.0, 21.0, 31.0]
    """
    agg = get_aggregator(aggregator)
    if len(thetas) == 0:
        raise ValidationError("khatri_rao_combine requires at least one protocentroid set")
    mats = []
    feature_dim = None
    for q, theta in enumerate(thetas):
        # Dtype-preserving: float32 protocentroid sets materialize a float32
        # centroid grid (half the memory); other dtypes widen to float64.
        mat = as_float_array(theta)
        if mat.ndim != 2:
            raise ValidationError(
                f"protocentroid set {q} must be 2-D (h_q, m), got shape {mat.shape}"
            )
        if feature_dim is None:
            feature_dim = mat.shape[1]
        elif mat.shape[1] != feature_dim:
            raise ValidationError(
                "all protocentroid sets must share the feature dimension; "
                f"set 0 has m={feature_dim} but set {q} has m={mat.shape[1]}"
            )
        mats.append(mat)

    result = mats[0]
    for mat in mats[1:]:
        # Broadcast (k, 1, m) ⊕ (1, h, m) -> (k, h, m) and flatten in C-order,
        # preserving the tuple_to_flat contract (last set varies fastest).
        combined = agg.pair(result[:, None, :], mat[None, :, :])
        result = combined.reshape(-1, feature_dim)
    return result


def khatri_rao_product(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Column-wise Khatri-Rao (matching-columns Kronecker) matrix product.

    This is the classical operator [Khatri & Rao, 1968] the paradigm is named
    after: for ``A ∈ R^{i×r}`` and ``B ∈ R^{j×r}`` the result is the
    ``(i·j) × r`` matrix whose ``c``-th column is ``A[:, c] ⊗ B[:, c]``.

    Examples
    --------
    >>> import numpy as np
    >>> A = np.array([[1.0, 2.0]])
    >>> B = np.array([[3.0, 4.0], [5.0, 6.0]])
    >>> khatri_rao_product(A, B)
    array([[ 3.,  8.],
           [ 5., 12.]])
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if A.ndim != 2 or B.ndim != 2:
        raise ValidationError("khatri_rao_product requires 2-D matrices")
    if A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"column counts must match, got {A.shape[1]} and {B.shape[1]}"
        )
    i, r = A.shape
    j, _ = B.shape
    return (A[:, None, :] * B[None, :, :]).reshape(i * j, r)
