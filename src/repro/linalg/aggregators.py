"""Aggregator functions ``⊕`` combining protocentroids (paper Section 3).

The paper focuses on the elementwise **sum** (``⊕ = +``) and **product**
(``⊕ = ×``, i.e. the Hadamard product) aggregators.  Each aggregator is a
small strategy object exposing:

* ``combine`` — elementwise aggregation of a sequence of arrays;
* ``identity`` — the neutral element (0 for sum, 1 for product), used when
  reducing over sets and when constructing protocentroids that leave the
  other sets' contribution unchanged (Proposition 8.2's construction);
* ``split`` — factor a vector ``v`` into ``p`` parts whose aggregation
  reproduces ``v`` (used by the KR-k-means++-style initialization, which must
  turn a sampled centroid into one protocentroid per set);
* closed-form protocentroid updates used by Proposition 6.1 live in
  :mod:`repro.core.kr_kmeans` because they also need cluster assignments.

Aggregators are selected by name (``"sum"``/``"+"`` or ``"product"``/``"*"``)
through :func:`get_aggregator`.

Factored-assignment capability protocol
---------------------------------------
The assignment step is the bottleneck of Khatri-Rao k-Means (paper
Section 6, "Complexity").  For the **sum** aggregator the squared distance
to a centroid decomposes over the protocentroid sets, so assignment never
has to materialize centroids (see :mod:`repro.core._factored`).  An
aggregator advertises this through the capability flag
``supports_factored_assignment`` and, when it opts in, provides the three
hooks the factored kernel needs:

* ``cross_gram(X, thetas)`` — the per-set Gram matrices ``G_q = X @ θ_qᵀ``
  of shape ``(n, h_q)`` carrying the data-centroid cross terms;
* ``self_interaction(thetas)`` — the flat ``(∏ h_q,)`` vector of centroid
  squared norms ``S[j_1..j_p] = ‖⊕_q θ_q[j_q]‖²`` computed *without*
  touching the data or materializing centroids;
* ``self_interaction_blocks(thetas)`` — a closure evaluating the same
  quantity for arbitrary tuple-index blocks, precomputing only
  ``O(Σh_q + Σ_{q<r} h_q·h_r)`` tables so the chunked (memory) mode never
  allocates anything of size ``∏ h_q``;
* ``factored_shift(old_thetas, new_thetas)`` — the total squared centroid
  movement ``Σ_grid ‖c_new − c_old‖²`` in closed form;
* ``factored_drift(old_thetas, new_thetas)`` — per-set drift norm tables
  ``d_q[j] = ‖θ_q^new[j] − θ_q^old[j]‖`` such that every centroid's
  movement obeys ``‖Δc(j_1..j_p)‖ ≤ Σ_q d_q[j_q]`` (triangle inequality on
  ``Δc = Σ_q Δθ_q[j_q]``), powering Hamerly bound inflation
  (:mod:`repro.core._bounds`) for all ``∏ h_q`` centroids from ``Σ h_q``
  numbers — no grid materialization.

The **product** aggregator does not decompose this way (``x·∏_q θ_q`` is
not a sum of per-set terms), so it keeps the default
``supports_factored_assignment = False`` and estimators transparently fall
back to the materialized assignment path.

Factored-update capability
--------------------------
The closed-form protocentroid update of Proposition 6.1 factors the same
way: for the sum aggregator the per-point *rest* gather
``Σ_{r≠q} θ_r[a_r]`` grouped by ``a_q`` equals ``C_qr @ θ_r`` through
per-set-pair contingency count tables, so the update never materializes an
``(n, m)`` rest matrix (see :mod:`repro.core._update`).  Aggregators
advertise this through ``supports_factored_update``; the product
aggregator's update is nonlinear in each ``θ_r`` (the denominator carries
``rest ⊙ rest``), so it keeps the gather path.

Working-dtype capability
------------------------
The estimators' ``dtype`` knob selects the precision the BLAS-bound hot
paths (Grams, partial scores, rest gathers) compute in.  Each aggregator
declares the dtypes its kernels support end-to-end through
``working_dtypes``; :func:`resolve_working_dtype` resolves a requested
dtype against that capability and **falls back loudly** — a
:class:`~repro.exceptions.DtypeFallbackWarning` plus a float64 result —
when the aggregator cannot honor the request, so a serving configuration
never silently runs at a different precision than the caller believes.
Both built-in aggregators support float32 and float64; third-party
subclasses default to float64-only until they opt in.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from .._validation import as_float_array, check_dtype, int_prod
from ..exceptions import DtypeFallbackWarning, ValidationError

__all__ = [
    "Aggregator",
    "SumAggregator",
    "ProductAggregator",
    "get_aggregator",
    "resolve_working_dtype",
]


class Aggregator(ABC):
    """Strategy interface for the elementwise aggregator ``⊕``."""

    #: canonical name, e.g. ``"sum"``
    name: str = ""
    #: one-character symbol used in reports, e.g. ``"+"``
    symbol: str = ""
    #: whether squared distances to aggregated centroids decompose over the
    #: protocentroid sets, enabling :func:`repro.core.assign_factored`
    supports_factored_assignment: bool = False
    #: whether the closed-form protocentroid update factors through per-pair
    #: contingency tables, enabling :func:`repro.core.update_factored`
    supports_factored_update: bool = False
    #: working dtypes the aggregator's kernels compute in end-to-end; the
    #: conservative default is float64-only — subclasses whose arithmetic
    #: (combine/split/Grams/self-interactions) is dtype-generic opt into
    #: float32 by extending this tuple.  Resolution (with loud float64
    #: fallback) happens in :func:`resolve_working_dtype`.
    working_dtypes: tuple = (np.dtype(np.float64),)

    @abstractmethod
    def combine(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Aggregate ``parts`` elementwise; all parts must share a shape."""

    @abstractmethod
    def identity(self, shape, dtype=np.float64) -> np.ndarray:
        """Return the neutral element of ``⊕`` with the given shape/dtype."""

    @abstractmethod
    def split(self, vector: np.ndarray, num_parts: int) -> List[np.ndarray]:
        """Split ``vector`` into ``num_parts`` arrays aggregating back to it."""

    def pair(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Aggregate exactly two arrays (broadcasting allowed)."""
        return self.combine([a, b])

    # -- factored-assignment hooks (capability protocol) --------------------
    def cross_gram(self, X: np.ndarray, thetas: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Per-set Gram matrices carrying the data-centroid cross terms.

        Only meaningful when ``supports_factored_assignment`` is True.
        """
        raise ValidationError(
            f"aggregator {self.name!r} does not support factored assignment"
        )

    def self_interaction(self, thetas: Sequence[np.ndarray]) -> np.ndarray:
        """Flat ``(∏ h_q,)`` vector of centroid squared norms, data-free."""
        raise ValidationError(
            f"aggregator {self.name!r} does not support factored assignment"
        )

    def self_interaction_blocks(self, thetas: Sequence[np.ndarray]):
        """Return ``f(tuple_indices) -> (b,)`` evaluating centroid squared
        norms for arbitrary tuple-index blocks.

        Must agree with :meth:`self_interaction` but may never allocate
        anything of size ``∏ h_q`` — chunked assignment relies on it to keep
        peak memory bounded by the chunk, not the grid.
        """
        raise ValidationError(
            f"aggregator {self.name!r} does not support factored assignment"
        )

    def factored_shift(
        self, old_thetas: Sequence[np.ndarray], new_thetas: Sequence[np.ndarray]
    ) -> float:
        """Total squared centroid movement in closed form, data-free."""
        raise ValidationError(
            f"aggregator {self.name!r} does not support factored assignment"
        )

    def factored_drift(
        self, old_thetas: Sequence[np.ndarray], new_thetas: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Per-set drift tables bounding every centroid's movement.

        Returns one ``(h_q,)`` vector per set with
        ``‖Δc(j_1..j_p)‖ ≤ Σ_q table_q[j_q]`` for every tuple index.
        """
        raise ValidationError(
            f"aggregator {self.name!r} does not support factored assignment"
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class SumAggregator(Aggregator):
    """Additive aggregator: ``θ_1 ⊕ θ_2 = θ_1 + θ_2``."""

    name = "sum"
    symbol = "+"
    supports_factored_assignment = True
    supports_factored_update = True
    working_dtypes = (np.dtype(np.float64), np.dtype(np.float32))

    def combine(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        if not parts:
            raise ValidationError("combine requires at least one array")
        result = as_float_array(parts[0]).copy()
        for part in parts[1:]:
            result = result + as_float_array(part)
        return result

    def identity(self, shape, dtype=np.float64) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def split(self, vector: np.ndarray, num_parts: int) -> List[np.ndarray]:
        vector = as_float_array(vector)
        if num_parts < 1:
            raise ValidationError("num_parts must be >= 1")
        # Equal shares: each part is v / p, summing back to v exactly.
        share = vector / float(num_parts)
        return [share.copy() for _ in range(num_parts)]

    # -- factored-assignment hooks ------------------------------------------
    # For ⊕ = + the centroid of tuple (j_1, ..., j_p) is Σ_q θ_q[j_q], so
    #   x · c          = Σ_q (X @ θ_qᵀ)[i, j_q]                (cross_gram)
    #   ‖c‖²           = Σ_q ‖θ_q[j_q]‖² + 2 Σ_{q<r} θ_q[j_q]·θ_r[j_r]
    #                                                     (self_interaction)
    # which needs only p Gram matrices of shape (n, h_q) and p(p−1)/2 small
    # (h_q, h_r) inner-product tables — never the (∏ h_q, m) centroid matrix.

    def cross_gram(self, X: np.ndarray, thetas: Sequence[np.ndarray]) -> List[np.ndarray]:
        # Dtype-preserving: float32 X against float32 thetas runs the whole
        # Gram through sgemm — the main bandwidth win of dtype="float32".
        return [X @ as_float_array(theta).T for theta in thetas]

    def self_interaction(self, thetas: Sequence[np.ndarray]) -> np.ndarray:
        mats = [as_float_array(theta) for theta in thetas]
        cardinalities = tuple(mat.shape[0] for mat in mats)
        p = len(mats)
        S = np.zeros(cardinalities, dtype=np.result_type(*mats))
        for q, mat in enumerate(mats):
            shape = [1] * p
            shape[q] = cardinalities[q]
            S += np.einsum("ij,ij->i", mat, mat).reshape(shape)
        for q in range(p):
            for r in range(q + 1, p):
                shape = [1] * p
                shape[q] = cardinalities[q]
                shape[r] = cardinalities[r]
                S += 2.0 * (mats[q] @ mats[r].T).reshape(shape)
        return S.ravel()

    def self_interaction_blocks(self, thetas: Sequence[np.ndarray]):
        # Same expansion as self_interaction, but evaluated per index block
        # from O(Σh_q) norm vectors and O(Σ_{q<r} h_q·h_r) pairwise tables —
        # nothing of size ∏ h_q is ever allocated.
        mats = [as_float_array(theta) for theta in thetas]
        norms = [np.einsum("ij,ij->i", mat, mat) for mat in mats]
        pairs = [
            (q, r, mats[q] @ mats[r].T)
            for q in range(len(mats))
            for r in range(q + 1, len(mats))
        ]

        def block(tuple_indices: Sequence[np.ndarray]) -> np.ndarray:
            # Fancy indexing yields a fresh array, safe to accumulate into.
            S = norms[0][tuple_indices[0]].copy()
            for q in range(1, len(norms)):
                S += norms[q][tuple_indices[q]]
            for q, r, table in pairs:
                S += 2.0 * table[tuple_indices[q], tuple_indices[r]]
            return S

        return block

    def factored_shift(
        self, old_thetas: Sequence[np.ndarray], new_thetas: Sequence[np.ndarray]
    ) -> float:
        # Σ_grid ‖Σ_q δ_q[j_q]‖² with δ_q = θ_q^new − θ_q^old expands into
        # per-set norm sums and pairwise sums of column totals; every grid
        # index not involved contributes a multiplicity factor k / ∏ h.
        # Always float64, whatever the working dtype: the shift feeds the
        # convergence test and the drift side of the certified Hamerly
        # bounds, whose maintenance arithmetic is float64 by contract
        # (docs/numerics.md) — the cast is O(Σh_q·m), off the hot path.
        deltas = [
            np.asarray(new, dtype=np.float64) - np.asarray(old, dtype=np.float64)
            for old, new in zip(old_thetas, new_thetas)
        ]
        cardinalities = [delta.shape[0] for delta in deltas]
        k = int_prod(cardinalities)
        totals = [delta.sum(axis=0) for delta in deltas]
        shift = 0.0
        for q, delta in enumerate(deltas):
            shift += (k / cardinalities[q]) * float(np.einsum("ij,ij->", delta, delta))
        for q in range(len(deltas)):
            for r in range(q + 1, len(deltas)):
                multiplicity = k / (cardinalities[q] * cardinalities[r])
                shift += 2.0 * multiplicity * float(totals[q] @ totals[r])
        return shift

    def factored_drift(
        self, old_thetas: Sequence[np.ndarray], new_thetas: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        # Δc(j_1..j_p) = Σ_q Δθ_q[j_q] for ⊕ = +, so the per-set norm tables
        # ‖Δθ_q[j]‖ bound every centroid's movement via the triangle
        # inequality — Σ h_q numbers covering all ∏ h_q centroids.  Computed
        # in float64 for any working dtype: bound-maintenance arithmetic is
        # float64 by contract so the certified margins only have to cover
        # the dtype-rounded *distance* seeds (docs/numerics.md).
        tables = []
        for old, new in zip(old_thetas, new_thetas):
            delta = np.asarray(new, dtype=np.float64) - np.asarray(old, dtype=np.float64)
            tables.append(np.sqrt(np.einsum("ij,ij->i", delta, delta)))
        return tables


class ProductAggregator(Aggregator):
    """Multiplicative (Hadamard) aggregator: ``θ_1 ⊕ θ_2 = θ_1 ⊙ θ_2``."""

    name = "product"
    symbol = "*"
    working_dtypes = (np.dtype(np.float64), np.dtype(np.float32))

    def combine(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        if not parts:
            raise ValidationError("combine requires at least one array")
        result = as_float_array(parts[0]).copy()
        for part in parts[1:]:
            result = result * as_float_array(part)
        return result

    def identity(self, shape, dtype=np.float64) -> np.ndarray:
        return np.ones(shape, dtype=dtype)

    def split(self, vector: np.ndarray, num_parts: int) -> List[np.ndarray]:
        vector = as_float_array(vector)
        if num_parts < 1:
            raise ValidationError("num_parts must be >= 1")
        if num_parts == 1:
            return [vector.copy()]
        # The first part carries the signed magnitude; the remaining parts are
        # |v|^(1/p) with the sign assigned to the first factor so the product
        # reproduces v exactly even for negative entries.
        magnitude = np.abs(vector)
        root = np.power(magnitude, 1.0 / num_parts)
        sign = np.sign(vector)
        sign[sign == 0] = 1.0
        first = sign * root
        return [first] + [root.copy() for _ in range(num_parts - 1)]


_AGGREGATORS = {
    "sum": SumAggregator,
    "+": SumAggregator,
    "add": SumAggregator,
    "product": ProductAggregator,
    "*": ProductAggregator,
    "x": ProductAggregator,
    "prod": ProductAggregator,
    "mul": ProductAggregator,
}


def resolve_working_dtype(dtype, aggregator) -> np.dtype:
    """Resolve a requested working dtype against an aggregator's capability.

    The estimators call this once at ``fit`` entry.  When the aggregator
    advertises the requested dtype in ``working_dtypes`` it is returned
    canonicalized; otherwise the resolver **falls back loudly** — a
    :class:`~repro.exceptions.DtypeFallbackWarning` naming both the request
    and the aggregator — and returns float64, which every aggregator must
    support.  An outright invalid dtype (anything other than
    float32/float64) raises :class:`~repro.exceptions.ValidationError`
    instead of warning: that is a caller bug, not a capability gap.
    """
    requested = check_dtype(dtype)
    agg = get_aggregator(aggregator)
    if requested in agg.working_dtypes:
        return requested
    warnings.warn(
        f"aggregator {agg.name!r} does not support working dtype "
        f"{requested.name!r} (supported: "
        f"{tuple(d.name for d in agg.working_dtypes)}); falling back to "
        "float64",
        DtypeFallbackWarning,
        stacklevel=2,
    )
    return np.dtype(np.float64)


def get_aggregator(aggregator) -> Aggregator:
    """Resolve an aggregator name or instance to an :class:`Aggregator`.

    Parameters
    ----------
    aggregator : str or Aggregator
        ``"sum"``/``"+"``, ``"product"``/``"*"`` or an existing instance.

    Returns
    -------
    Aggregator
    """
    if isinstance(aggregator, Aggregator):
        return aggregator
    if isinstance(aggregator, str):
        key = aggregator.strip().lower()
        if key in _AGGREGATORS:
            return _AGGREGATORS[key]()
    raise ValidationError(
        f"unknown aggregator {aggregator!r}; expected 'sum'/'+' or 'product'/'*'"
    )
