"""Aggregator functions ``⊕`` combining protocentroids (paper Section 3).

The paper focuses on the elementwise **sum** (``⊕ = +``) and **product**
(``⊕ = ×``, i.e. the Hadamard product) aggregators.  Each aggregator is a
small strategy object exposing:

* ``combine`` — elementwise aggregation of a sequence of arrays;
* ``identity`` — the neutral element (0 for sum, 1 for product), used when
  reducing over sets and when constructing protocentroids that leave the
  other sets' contribution unchanged (Proposition 8.2's construction);
* ``split`` — factor a vector ``v`` into ``p`` parts whose aggregation
  reproduces ``v`` (used by the KR-k-means++-style initialization, which must
  turn a sampled centroid into one protocentroid per set);
* closed-form protocentroid updates used by Proposition 6.1 live in
  :mod:`repro.core.kr_kmeans` because they also need cluster assignments.

Aggregators are selected by name (``"sum"``/``"+"`` or ``"product"``/``"*"``)
through :func:`get_aggregator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["Aggregator", "SumAggregator", "ProductAggregator", "get_aggregator"]


class Aggregator(ABC):
    """Strategy interface for the elementwise aggregator ``⊕``."""

    #: canonical name, e.g. ``"sum"``
    name: str = ""
    #: one-character symbol used in reports, e.g. ``"+"``
    symbol: str = ""

    @abstractmethod
    def combine(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Aggregate ``parts`` elementwise; all parts must share a shape."""

    @abstractmethod
    def identity(self, shape) -> np.ndarray:
        """Return the neutral element of ``⊕`` with the given shape."""

    @abstractmethod
    def split(self, vector: np.ndarray, num_parts: int) -> List[np.ndarray]:
        """Split ``vector`` into ``num_parts`` arrays aggregating back to it."""

    def pair(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Aggregate exactly two arrays (broadcasting allowed)."""
        return self.combine([a, b])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class SumAggregator(Aggregator):
    """Additive aggregator: ``θ_1 ⊕ θ_2 = θ_1 + θ_2``."""

    name = "sum"
    symbol = "+"

    def combine(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        if not parts:
            raise ValidationError("combine requires at least one array")
        result = np.asarray(parts[0], dtype=float).copy()
        for part in parts[1:]:
            result = result + np.asarray(part, dtype=float)
        return result

    def identity(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=float)

    def split(self, vector: np.ndarray, num_parts: int) -> List[np.ndarray]:
        vector = np.asarray(vector, dtype=float)
        if num_parts < 1:
            raise ValidationError("num_parts must be >= 1")
        # Equal shares: each part is v / p, summing back to v exactly.
        share = vector / float(num_parts)
        return [share.copy() for _ in range(num_parts)]


class ProductAggregator(Aggregator):
    """Multiplicative (Hadamard) aggregator: ``θ_1 ⊕ θ_2 = θ_1 ⊙ θ_2``."""

    name = "product"
    symbol = "*"

    def combine(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        if not parts:
            raise ValidationError("combine requires at least one array")
        result = np.asarray(parts[0], dtype=float).copy()
        for part in parts[1:]:
            result = result * np.asarray(part, dtype=float)
        return result

    def identity(self, shape) -> np.ndarray:
        return np.ones(shape, dtype=float)

    def split(self, vector: np.ndarray, num_parts: int) -> List[np.ndarray]:
        vector = np.asarray(vector, dtype=float)
        if num_parts < 1:
            raise ValidationError("num_parts must be >= 1")
        if num_parts == 1:
            return [vector.copy()]
        # The first part carries the signed magnitude; the remaining parts are
        # |v|^(1/p) with the sign assigned to the first factor so the product
        # reproduces v exactly even for negative entries.
        magnitude = np.abs(vector)
        root = np.power(magnitude, 1.0 / num_parts)
        sign = np.sign(vector)
        sign[sign == 0] = 1.0
        first = sign * root
        return [first] + [root.copy() for _ in range(num_parts - 1)]


_AGGREGATORS = {
    "sum": SumAggregator,
    "+": SumAggregator,
    "add": SumAggregator,
    "product": ProductAggregator,
    "*": ProductAggregator,
    "x": ProductAggregator,
    "prod": ProductAggregator,
    "mul": ProductAggregator,
}


def get_aggregator(aggregator) -> Aggregator:
    """Resolve an aggregator name or instance to an :class:`Aggregator`.

    Parameters
    ----------
    aggregator : str or Aggregator
        ``"sum"``/``"+"``, ``"product"``/``"*"`` or an existing instance.

    Returns
    -------
    Aggregator
    """
    if isinstance(aggregator, Aggregator):
        return aggregator
    if isinstance(aggregator, str):
        key = aggregator.strip().lower()
        if key in _AGGREGATORS:
            return _AGGREGATORS[key]()
    raise ValidationError(
        f"unknown aggregator {aggregator!r}; expected 'sum'/'+' or 'product'/'*'"
    )
