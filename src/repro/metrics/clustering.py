"""Clustering-quality metrics (ARI, NMI, ACC, purity, inertia).

All metrics are implemented from first principles on top of a shared
contingency matrix; only the Hungarian assignment inside the unsupervised
clustering accuracy delegates to :func:`scipy.optimize.linear_sum_assignment`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.special import comb

from ..exceptions import ValidationError

__all__ = [
    "contingency_matrix",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "unsupervised_clustering_accuracy",
    "purity",
    "inertia",
]


def _check_label_pair(labels_true, labels_pred) -> Tuple[np.ndarray, np.ndarray]:
    true = np.asarray(labels_true).ravel()
    pred = np.asarray(labels_pred).ravel()
    if true.shape[0] != pred.shape[0]:
        raise ValidationError(
            f"label arrays must have equal length, got {true.shape[0]} and {pred.shape[0]}"
        )
    if true.shape[0] == 0:
        raise ValidationError("label arrays must be non-empty")
    return true, pred


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """Contingency table ``C[i, j] = |true class i ∩ predicted cluster j|``."""
    true, pred = _check_label_pair(labels_true, labels_pred)
    _, true_idx = np.unique(true, return_inverse=True)
    _, pred_idx = np.unique(pred, return_inverse=True)
    n_true = true_idx.max() + 1
    n_pred = pred_idx.max() + 1
    table = np.zeros((n_true, n_pred), dtype=np.int64)
    np.add.at(table, (true_idx, pred_idx), 1)
    return table


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index [Hubert & Arabie, 1985].

    Chance-corrected agreement between two partitions; 1.0 for identical
    partitions, ~0.0 for independent ones.

    Examples
    --------
    >>> adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    table = contingency_matrix(labels_true, labels_pred)
    n = table.sum()
    sum_comb_cells = comb(table, 2).sum()
    sum_comb_rows = comb(table.sum(axis=1), 2).sum()
    sum_comb_cols = comb(table.sum(axis=0), 2).sum()
    total_pairs = comb(n, 2)
    if total_pairs == 0:
        return 1.0
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    maximum = 0.5 * (sum_comb_rows + sum_comb_cols)
    denominator = maximum - expected
    if denominator == 0:
        # Both partitions are trivial (all singletons or one block).
        return 1.0
    return float((sum_comb_cells - expected) / denominator)


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log(p)))


def normalized_mutual_information(labels_true, labels_pred) -> float:
    """NMI with arithmetic-mean normalization [Kvalseth, 1987].

    ``NMI = 2 I(T; P) / (H(T) + H(P))`` — 1.0 for identical partitions.

    Examples
    --------
    >>> normalized_mutual_information([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    table = contingency_matrix(labels_true, labels_pred).astype(float)
    n = table.sum()
    h_true = _entropy(table.sum(axis=1))
    h_pred = _entropy(table.sum(axis=0))
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0
    # Mutual information from the joint table.
    pij = table / n
    pi = table.sum(axis=1, keepdims=True) / n
    pj = table.sum(axis=0, keepdims=True) / n
    mask = pij > 0
    mutual_information = float(np.sum(pij[mask] * np.log(pij[mask] / (pi @ pj)[mask])))
    denominator = 0.5 * (h_true + h_pred)
    if denominator == 0.0:
        return 0.0
    return float(np.clip(mutual_information / denominator, 0.0, 1.0))


def unsupervised_clustering_accuracy(labels_true, labels_pred) -> float:
    """Unsupervised clustering accuracy (ACC) [Yang et al., 2010].

    Best one-to-one mapping between predicted clusters and ground-truth
    classes (Hungarian algorithm), then plain accuracy under that mapping.

    Examples
    --------
    >>> unsupervised_clustering_accuracy([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    table = contingency_matrix(labels_true, labels_pred)
    n = table.sum()
    # Pad to a square matrix so extra clusters / classes are handled.
    size = max(table.shape)
    padded = np.zeros((size, size), dtype=np.int64)
    padded[: table.shape[0], : table.shape[1]] = table
    row_ind, col_ind = linear_sum_assignment(-padded)
    return float(padded[row_ind, col_ind].sum() / n)


def purity(labels_true, labels_pred) -> float:
    """Cluster purity [Manning et al., 2008].

    Fraction of points correctly assigned after mapping each predicted
    cluster to its majority ground-truth class (a many-to-one mapping, so
    purity is not penalized for over-segmentation).

    Examples
    --------
    >>> purity([0, 0, 1, 1], [0, 0, 0, 1])
    0.75
    """
    table = contingency_matrix(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())


def inertia(X, labels, centroids) -> float:
    """Total squared Euclidean distance of points to their centroid (Eq. 1).

    Parameters
    ----------
    X : array of shape (n, m)
    labels : array of shape (n,)
        Cluster index of each point (row into ``centroids``).
    centroids : array of shape (k, m)
    """
    X = np.asarray(X, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.asarray(labels).ravel().astype(int)
    if X.ndim != 2 or centroids.ndim != 2:
        raise ValidationError("X and centroids must be 2-D arrays")
    if X.shape[0] != labels.shape[0]:
        raise ValidationError("X and labels must have the same number of samples")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= centroids.shape[0]):
        raise ValidationError("labels reference centroids that do not exist")
    differences = X - centroids[labels]
    return float(np.sum(differences**2))
