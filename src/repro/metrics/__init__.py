"""Evaluation metrics used throughout the paper's experiments (Section 9.1).

Clustering-quality metrics (all computed against ground-truth labels):

* :func:`adjusted_rand_index` (ARI),
* :func:`normalized_mutual_information` (NMI),
* :func:`unsupervised_clustering_accuracy` (ACC, Hungarian matching),
* :func:`purity`,
* :func:`inertia` — the k-means objective (Eq. 1).

Compression metrics:

* :func:`summary_parameter_count` — number of scalars in a centroid /
  protocentroid summary, the quantity behind the "Params" columns of
  Tables 2 and 3.
"""

from .clustering import (
    adjusted_rand_index,
    contingency_matrix,
    inertia,
    normalized_mutual_information,
    purity,
    unsupervised_clustering_accuracy,
)
from .compression import parameter_ratio, summary_parameter_count

__all__ = [
    "adjusted_rand_index",
    "normalized_mutual_information",
    "unsupervised_clustering_accuracy",
    "purity",
    "inertia",
    "contingency_matrix",
    "summary_parameter_count",
    "parameter_ratio",
]
