"""Parameter accounting for data summaries (the "Params" columns).

The paper quantifies compression by the number of scalars a method stores to
summarize a dataset:

* ``k-Means`` with ``k`` centroids over ``m`` features stores ``k·m``;
* Khatri-Rao k-Means with sets of cardinalities ``(h_1, ..., h_p)`` stores
  ``(h_1 + ... + h_p)·m`` while representing ``h_1·...·h_p`` centroids;
* deep clustering additionally stores autoencoder weights, compressed in the
  Khatri-Rao variants via the Hadamard decomposition (see
  :func:`repro.linalg.hadamard_parameter_count` and
  :meth:`repro.nn.Sequential.parameter_count`).
"""

from __future__ import annotations

from typing import Sequence

from .._validation import check_cardinalities, check_positive_int
from ..exceptions import ValidationError

__all__ = ["summary_parameter_count", "parameter_ratio"]


def summary_parameter_count(
    n_features: int,
    *,
    n_centroids: int = 0,
    cardinalities: Sequence[int] = (),
    extra: int = 0,
) -> int:
    """Scalars stored by a centroid / protocentroid data summary.

    Exactly one of ``n_centroids`` (plain centroid summary) or
    ``cardinalities`` (Khatri-Rao protocentroid summary) must be provided.

    Examples
    --------
    >>> summary_parameter_count(64, n_centroids=36)
    2304
    >>> summary_parameter_count(64, cardinalities=(6, 6))
    768
    """
    m = check_positive_int(n_features, "n_features")
    if bool(n_centroids) == bool(cardinalities):
        raise ValidationError(
            "provide exactly one of n_centroids or cardinalities"
        )
    if n_centroids:
        vectors = check_positive_int(n_centroids, "n_centroids")
    else:
        vectors = sum(check_cardinalities(cardinalities))
    if extra < 0:
        raise ValidationError("extra must be non-negative")
    return vectors * m + int(extra)


def parameter_ratio(compressed: int, baseline: int) -> float:
    """Ratio of parameters used by a compressed summary over a baseline.

    Examples
    --------
    >>> parameter_ratio(768, 2304)
    0.3333333333333333
    """
    compressed = check_positive_int(compressed, "compressed", minimum=0)
    baseline = check_positive_int(baseline, "baseline")
    return compressed / baseline
