"""Ablations over the design choices DESIGN.md calls out (paper Section 8).

Beyond the paper's headline tables, these benchmarks quantify:

* **initialization** — random vs kr-k-means++-style seeding;
* **implementation mode** — time-efficient (materialized centroids) vs
  memory-efficient (on-the-fly chunks), which must agree numerically;
* **aggregator heuristic** — how reliably the Section 8 difference-
  invariance rule detects the generating aggregator;
* **Hadamard factor count q** — compression vs reconstruction trade-off
  for q ∈ {2, 3} (the paper recommends q=2 for stability).
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans
from repro.core import suggest_aggregator
from repro.datasets import make_blobs, make_khatri_rao_blobs
from repro.linalg import khatri_rao_combine
from repro.nn import build_autoencoder


def test_ablation_initialization(benchmark):
    X, _ = make_blobs(max(500, int(3000 * scaled(0.3))), n_features=2,
                      n_clusters=36, random_state=0)

    def run():
        rows = {}
        for init in ("random", "kr-k-means++"):
            inertias = [
                KhatriRaoKMeans((6, 6), init=init, n_init=1,
                                random_state=seed).fit(X).inertia_
                for seed in range(8)
            ]
            rows[init] = (float(np.mean(inertias)), float(np.min(inertias)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: initialization strategy (8 single-restart runs)")
    print(f"{'init':<16}{'mean inertia':>14}{'best inertia':>14}")
    for init, (mean, best) in rows.items():
        print(f"{init:<16}{mean:>14.1f}{best:>14.1f}")
    # ++-style seeding should not be wildly worse on average.
    assert rows["kr-k-means++"][0] < 4.0 * rows["random"][0]


def test_ablation_time_vs_memory_mode(benchmark):
    X, _ = make_blobs(max(400, int(2000 * scaled(0.3))), n_features=5,
                      n_clusters=25, random_state=1)

    def run():
        time_model = KhatriRaoKMeans((5, 5), mode="time", n_init=3,
                                     random_state=3).fit(X)
        memory_model = KhatriRaoKMeans((5, 5), mode="memory", chunk_size=4,
                                       n_init=3, random_state=3).fit(X)
        return time_model, memory_model

    time_model, memory_model = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: time-efficient vs memory-efficient implementation")
    print(f"time-mode inertia   : {time_model.inertia_:.4f}")
    print(f"memory-mode inertia : {memory_model.inertia_:.4f}")
    assert memory_model.inertia_ == time_model.inertia_
    np.testing.assert_array_equal(memory_model.labels_, time_model.labels_)


def test_ablation_aggregator_heuristic(benchmark):
    def run():
        correct = 0
        trials = 0
        for seed in range(10):
            for aggregator in ("sum", "product"):
                _, _, thetas = make_khatri_rao_blobs(
                    (3, 3), n_samples=90, n_features=4,
                    aggregator=aggregator, random_state=seed,
                )
                grid = khatri_rao_combine(thetas, aggregator)
                trials += 1
                if suggest_aggregator(grid, (3, 3)) == aggregator:
                    correct += 1
        return correct, trials

    correct, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: Section 8 aggregator-selection heuristic")
    print(f"correct detections: {correct}/{trials}")
    assert correct >= int(0.8 * trials)


def test_ablation_hadamard_factor_count(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(max(200, int(600 * scaled(0.5))), 64))

    def run():
        rows = []
        for q in (2, 3):
            ae = build_autoencoder(64, (32, 8), compressed=True,
                                   n_hadamard_factors=q, random_state=0)
            ae.pretrain(X, epochs=15, batch_size=128, random_state=0)
            rows.append((q, ae.parameter_count(), ae.reconstruction_loss(X)))
        dense = build_autoencoder(64, (32, 8), random_state=0)
        dense.pretrain(X, epochs=15, batch_size=128, random_state=0)
        rows.append(("dense", dense.parameter_count(),
                     dense.reconstruction_loss(X)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: Hadamard factor count q (compression vs loss)")
    print(f"{'q':>6}{'params':>9}{'recon loss':>13}")
    for q, params, loss in rows:
        print(f"{str(q):>6}{params:>9}{loss:>13.5f}")
    dense_params = rows[-1][1]
    for q, params, loss in rows[:-1]:
        assert params < dense_params
        assert np.isfinite(loss)
