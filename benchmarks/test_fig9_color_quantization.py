"""Figure 9 — color quantization case study.

Quantizes the synthetic photo-like image with a 12-pixel random codebook,
a 12-centroid k-Means codebook and a Khatri-Rao-k-Means codebook (two sets
of 6 protocentroids, product aggregator — 36 colors from 12 stored vectors),
all fitted on a 1000-pixel subsample as in the paper.

Expected shape (paper: inertias 4686 / 2009 / 1144): random > k-Means >
Khatri-Rao, with KR preserving the rare red tones.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header

from repro.applications import (
    quantize_khatri_rao_kmeans,
    quantize_kmeans,
    quantize_random,
)
from repro.datasets import make_quantization_image


def _run():
    image = make_quantization_image(120, 160, random_state=0)
    random_result = quantize_random(image, 12, random_state=0)
    km_result = quantize_kmeans(image, 12, fit_pixels=1000, n_init=10,
                                random_state=0)
    kr_result = quantize_khatri_rao_kmeans(image, (6, 6), fit_pixels=1000,
                                           n_init=10, random_state=0)
    return image, random_result, km_result, kr_result


def _red_error(image, result):
    """Squared error restricted to strongly red pixels (the paper's focus)."""
    pixels = image.reshape(-1, 3)
    quantized = result.image.reshape(-1, 3)
    red = (pixels[:, 0] > 0.6) & (pixels[:, 1] < 0.3) & (pixels[:, 2] < 0.3)
    if not red.any():
        return 0.0
    return float(np.sum((pixels[red] - quantized[red]) ** 2))


def test_fig9_color_quantization(benchmark):
    image, random_result, km_result, kr_result = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    print_header("Figure 9: color quantization (12 stored vectors each)")
    print(f"{'method':<22}{'colors':>8}{'stored':>8}{'inertia':>12}{'red err':>10}")
    for result in (random_result, km_result, kr_result):
        print(f"{result.method:<22}{result.codebook.shape[0]:>8}"
              f"{result.stored_vectors:>8}{result.inertia:>12.1f}"
              f"{_red_error(image, result):>10.2f}")

    # The paper's ordering: random > k-Means > Khatri-Rao.
    assert km_result.inertia < random_result.inertia
    assert kr_result.inertia < km_result.inertia
    # All methods store the same 12 vectors; KR represents 36 colors.
    assert random_result.stored_vectors == km_result.stored_vectors == 12
    assert kr_result.stored_vectors == 12
    assert kr_result.codebook.shape[0] == 36
    # KR preserves the rare red tones at least as well as k-means.
    assert _red_error(image, kr_result) <= _red_error(image, km_result) * 1.5
