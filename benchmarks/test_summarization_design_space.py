"""Extra benchmark — the summarization design space (paper Section 2).

Positions Khatri-Rao-k-Means within the broader summarization strategies the
paper's related-work section names (sampling, dimensionality reduction,
centroid-based clustering) at a matched stored-vector budget, on data with
many underlying clusters.

Expected shape: on many-cluster data, KR-k-Means achieves the lowest summed
squared error at the budget; D²-sampling beats uniform sampling; the PCA
sketch (a subspace, not prototypes) cannot capture multimodal structure.
"""

from __future__ import annotations

from conftest import print_header, scaled

from repro.applications import compare_summaries
from repro.datasets import make_blobs


def test_summarization_design_space(benchmark):
    X, _ = make_blobs(max(800, int(3000 * scaled(0.5))), n_features=4,
                      n_clusters=36, cluster_std=0.3, random_state=0)

    rows = benchmark.pedantic(
        lambda: compare_summaries(X, (6, 6), n_init=10, random_state=0),
        rounds=1,
        iterations=1,
    )
    print_header("Summarization design space (budget: 12 stored vectors)")
    print(f"{'method':<28}{'params':>8}{'sq. error':>14}")
    for row in rows:
        print(f"{row.method:<28}{row.parameters:>8}{row.inertia:>14.1f}")

    by_name = {row.method: row for row in rows}
    kr = by_name["khatri-rao-k-means(6, 6)"]
    assert kr.inertia < by_name["uniform-sample"].inertia
    assert kr.inertia < by_name["d2-sample"].inertia
    assert kr.inertia < by_name["k-means(12)"].inertia
    assert by_name["d2-sample"].inertia < by_name["uniform-sample"].inertia
