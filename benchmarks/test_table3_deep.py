"""Table 3 — deep clustering (DKM / IDEC) vs Khatri-Rao variants.

For every dataset: DKM and IDEC with ``k`` latent centroids against
Khatri-Rao DKM / IDEC with two balanced protocentroid sets (sum aggregator,
as the paper recommends for deep clustering) and a Hadamard-compressed
autoencoder.  Reports ACC / ARI / NMI and the parameter ratio (compressed /
dense).

Expected shape (paper): the KR variants stay within a few points of their
bases on ACC while storing a strictly smaller parameter count (ratios
0.15-0.9 in the paper, depending on architecture/data size).

Runtime note: the numpy autodiff substrate makes full-paper epochs
infeasible, so this harness uses small encoders and few epochs; the
comparison remains like-for-like because every algorithm shares the recipe.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro.core import balanced_factor_pair
from repro.datasets import dataset_names, load_dataset
from repro.deep import DKM, IDEC, KhatriRaoDKM, KhatriRaoIDEC
from repro.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    unsupervised_clustering_accuracy,
)

CONFIG = dict(
    hidden_dims=(64, 32, 10),
    pretrain_epochs=20,
    clustering_epochs=10,
    batch_size=256,
    kmeans_n_init=10,
)
SCALES = {
    "mnist": 0.015,
    "double_mnist": 0.04,
    "har": 0.04,
    "olivetti_faces": 1.0,
    "cmu_faces": 0.7,
    "symbols": 0.4,
    "stickfigures": 0.45,
    "optdigits": 0.08,
    "classification": 0.1,
    "chameleon": 0.04,
    "soybean_large": 0.8,
    "blobs": 0.1,
    "r15": 0.7,
}


def _metrics(y, labels):
    return (
        adjusted_rand_index(y, labels),
        unsupervised_clustering_accuracy(y, labels),
        normalized_mutual_information(y, labels),
    )


def _run_dataset(name: str):
    ds = load_dataset(name, scale=scaled(SCALES[name]), random_state=0)
    k = ds.n_labels
    h1, h2 = balanced_factor_pair(k)
    if h2 == 1:
        h1, h2 = balanced_factor_pair(k + 1)
    X, y = ds.data, ds.labels

    results = {}
    dkm = DKM(k, random_state=0, **CONFIG).fit(X)
    kr_dkm = KhatriRaoDKM((h1, h2), random_state=0, **CONFIG).fit(X)
    idec = IDEC(k, random_state=0, **CONFIG).fit(X)
    kr_idec = KhatriRaoIDEC((h1, h2), random_state=0, **CONFIG).fit(X)

    results["dataset"] = name
    results["idec"] = _metrics(y, idec.labels_)
    results["kr_idec"] = _metrics(y, kr_idec.labels_)
    results["dkm"] = _metrics(y, dkm.labels_)
    results["kr_dkm"] = _metrics(y, kr_dkm.labels_)
    results["params_ratio"] = kr_dkm.result().parameter_ratio
    return results


def test_table3_all_datasets(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run_dataset(name) for name in dataset_names()],
        rounds=1,
        iterations=1,
    )
    print_header("Table 3: deep clustering vs Khatri-Rao variants (ARI/ACC/NMI)")
    header = (f"{'dataset':<16} | {'IDEC':>16} | {'KR-IDEC':>16} | "
              f"{'DKM':>16} | {'KR-DKM':>16} | {'params':>6}")
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in ("idec", "kr_idec", "dkm", "kr_dkm"):
            ari, acc, nmi = row[key]
            cells.append(f"{ari:.2f}/{acc:.2f}/{nmi:.2f}")
        print(f"{row['dataset']:<16} | "
              + " | ".join(f"{c:>16}" for c in cells)
              + f" | {row['params_ratio']:>6.2f}")

    # Shape 1: every KR variant stores strictly fewer parameters.
    for row in rows:
        assert row["params_ratio"] < 1.0

    # Shape 2: on average across datasets, the ACC gap between KR variants
    # and their bases is small ("negligible loss in accuracy").
    dkm_gap = np.mean([row["dkm"][1] - row["kr_dkm"][1] for row in rows])
    idec_gap = np.mean([row["idec"][1] - row["kr_idec"][1] for row in rows])
    assert dkm_gap < 0.15
    assert idec_gap < 0.15

    # Shape 3: KR variants match or beat their base on several datasets —
    # the paper's "implicit regularization" observation.
    kr_wins = sum(
        1 for row in rows
        if row["kr_dkm"][1] >= row["dkm"][1] - 0.02
        or row["kr_idec"][1] >= row["idec"][1] - 0.02
    )
    assert kr_wins >= 4

    # Shape 4: stickfigures is bimodal at this reduced budget — the joint
    # optimum (ACC 1.0, as the paper reports with 20 pipeline restarts and
    # 1000-epoch compressed pretraining) or a 6-of-9-cluster local minimum
    # (ACC ≈ 0.67).  Either way the summary keeps most of the structure.
    stick = next(row for row in rows if row["dataset"] == "stickfigures")
    assert stick["kr_dkm"][1] >= 0.6
