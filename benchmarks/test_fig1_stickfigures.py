"""Figure 1 — two sets of 3 protocentroids generate the 9 stickfigure
centroids.

Fits Khatri-Rao-k-Means with the sum aggregator on the stickfigures dataset
and verifies the paper's headline example: the 9 clusters are summarized by
6 stored images with no loss in clustering accuracy, and the protocentroids
split into an "upper-body" set and a "lower-body" set.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans
from repro.datasets import load_dataset
from repro.metrics import summary_parameter_count, unsupervised_clustering_accuracy


def test_fig1_protocentroids_summarize_stickfigures(benchmark):
    ds = load_dataset("stickfigures", scale=scaled(0.3), random_state=0)

    def run():
        return KhatriRaoKMeans(
            (3, 3), aggregator="sum", n_init=20, random_state=0
        ).fit(ds.data)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    accuracy = unsupervised_clustering_accuracy(ds.labels, model.labels_)
    kr_params = model.parameter_count()
    full_params = summary_parameter_count(ds.n_features, n_centroids=9)

    print_header("Figure 1: stickfigures, 2 sets of 3 protocentroids (sum)")
    print(f"clusters represented : {model.n_clusters}")
    print(f"stored vectors       : {model.n_protocentroids} (vs 9 centroids)")
    print(f"parameters           : {kr_params} vs {full_params} "
          f"({kr_params / full_params:.2f}x)")
    print(f"unsupervised ACC     : {accuracy:.3f}")

    assert model.n_protocentroids == 6
    assert kr_params == full_params * 6 // 9
    assert accuracy > 0.95  # the paper reports a perfect summary

    # Upper/lower decomposition: protocentroids in one set vary only in the
    # half of the image their set explains (up to the shared torso).
    side = int(np.sqrt(ds.n_features))
    set_variances = []
    for theta in model.protocentroids_:
        images = theta.reshape(-1, side, side)
        top_var = float(np.var(images[:, : side // 2], axis=0).mean())
        bottom_var = float(np.var(images[:, side // 2 :], axis=0).mean())
        set_variances.append((top_var, bottom_var))
    ratios = [top / (bottom + 1e-12) for top, bottom in set_variances]
    assert max(ratios) > 1.0 > min(ratios)  # one set explains each half
