"""Figure 8 — runtime and peak memory by n, m and k on Blobs.

Sweeps the number of data points, features and centroids (reduced from the
paper's ranges) and measures wall-clock runtime and tracemalloc peak memory
for: naïve two-phase, k-Means(h1+h2), k-Means(h1·h2), KR-k-Means sum and
product.  k-Means mirrors the KR implementation (both share the distance
kernels), as the paper does for fairness.

Expected shape (paper): KR-k-Means carries a near-constant runtime overhead
over k-Means(h1·h2); its memory tracks k-Means(h1+h2) while k-Means(h1·h2)
grows multiplicatively with the centroid count.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans, KMeans, NaiveKhatriRao
from repro.datasets import make_blobs
from repro.utils import Timer, track_peak_memory

N_INIT = 1
MAX_ITER = 20


def _measure(model, X):
    with track_peak_memory() as mem:
        with Timer() as timer:
            model.fit(X)
    return timer.elapsed, mem["peak_mib"]


def _algorithms(h):
    return {
        "naive-x": lambda: NaiveKhatriRao((h, h), aggregator="product",
                                          n_init=N_INIT, max_iter=MAX_ITER,
                                          random_state=0),
        "kmeans(h1+h2)": lambda: KMeans(2 * h, n_init=N_INIT,
                                        max_iter=MAX_ITER, random_state=0),
        "kmeans(h1h2)": lambda: KMeans(h * h, n_init=N_INIT,
                                       max_iter=MAX_ITER, random_state=0),
        "kr-+": lambda: KhatriRaoKMeans((h, h), aggregator="sum",
                                        n_init=N_INIT, max_iter=MAX_ITER,
                                        mode="memory", random_state=0),
        "kr-x": lambda: KhatriRaoKMeans((h, h), aggregator="product",
                                        n_init=N_INIT, max_iter=MAX_ITER,
                                        mode="memory", random_state=0),
    }


def _sweep(configs):
    rows = []
    for label, n, m, h in configs:
        X, _ = make_blobs(n, n_features=m, n_clusters=min(100, n // 4),
                          random_state=0)
        measurements = {}
        for name, factory in _algorithms(h).items():
            measurements[name] = _measure(factory(), X)
        rows.append((label, measurements))
    return rows


def _report(title, rows):
    print_header(f"Figure 8: {title}")
    methods = ["naive-x", "kmeans(h1+h2)", "kmeans(h1h2)", "kr-+", "kr-x"]
    header = f"{'config':<14} | " + " | ".join(f"{m:>22}" for m in methods)
    print(header + "    (runtime s / peak MiB)")
    print("-" * len(header))
    for label, measurements in rows:
        print(f"{label:<14} | " + " | ".join(
            f"{measurements[m][0]:>10.3f}/{measurements[m][1]:>10.1f}"
            for m in methods))


def test_fig8_scaling_in_data_points(benchmark):
    base = max(400, int(4000 * scaled(0.25)))
    configs = [(f"n={n}", n, 20, 6) for n in (base, 2 * base, 3 * base)]
    rows = benchmark.pedantic(lambda: _sweep(configs), rounds=1, iterations=1)
    _report("runtime/memory by #data points (h=6)", rows)
    for _, m in rows:
        assert m["kr-+"][0] > 0.0


def test_fig8_scaling_in_features(benchmark):
    base = max(100, int(1000 * scaled(0.2)))
    configs = [(f"m={m}", 500, m, 6) for m in (base, 2 * base, 3 * base)]
    rows = benchmark.pedantic(lambda: _sweep(configs), rounds=1, iterations=1)
    _report("runtime/memory by #features (n=500, h=6)", rows)


def test_fig8_scaling_in_centroids(benchmark):
    configs = [(f"k={h*h}", 2000, 10, h) for h in (8, 12, 16)]
    rows = benchmark.pedantic(lambda: _sweep(configs), rounds=1, iterations=1)
    _report("runtime/memory by #centroids (n=2000, m=10)", rows)
    # Memory shape: at the largest k, the materialized k-means(h1h2) centroid
    # state should not be cheaper than memory-mode KR.
    _, largest = rows[-1]
    assert largest["kr-+"][1] <= largest["kmeans(h1h2)"][1] * 1.5
