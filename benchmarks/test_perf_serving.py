"""Serving-layer load generator: micro-batched vs per-request throughput.

The serving claim (ROADMAP, ISSUE 6): at serving shapes — many concurrent
requests of a few rows each — one coalesced factored kernel call beats
per-request calls by well over the per-call arithmetic difference,
because per-call fixed work (validation, Gram construction against the
protocentroid sets, Python/BLAS dispatch) dominates when requests are
small.  This module measures that win on the real
:class:`~repro.serving.batcher.MicroBatcher` code path and records it to
``.benchmarks/serving_throughput.json``.

Two measurements:

* **Coalescing measurement (the asserted one).**  ``REQUESTS`` requests
  of ``ROWS_PER_REQUEST`` float32 rows are pushed through a synchronous
  batcher (``start=False`` + :meth:`drain`) — the exact production
  coalescing/validation/scatter code with no thread-scheduling noise —
  against the per-request path (a batch-size-1 drain per request, i.e.
  the same machinery denied any coalescing).  Both sides get best-of
  repeats and the retry pattern shared by the suite; the acceptance bar
  is **batched throughput ≥ 1.5× per-request** at equal results.
* **Threaded end-to-end measurement (recorded, not asserted).**  A
  worker-thread batcher under ``N_CLIENTS`` concurrent submitters, with
  per-request submit-to-result latency percentiles for both the batched
  window and the window=0 singleton configuration.  Wall-clock latency
  under thread scheduling is exactly the flaky thing the suite never
  asserts on shared runners; the JSON carries the numbers.

Result correctness is gated before any timing: every request's batched
labels must equal its own single-request call (same dtype, same kernel —
the batcher concatenates rows, and row-independent scoring makes the
per-row results identical).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans, summarize
from repro.serving import MicroBatcher, ModelRegistry
from repro.serving.metrics import percentiles

CARDINALITIES = (8, 8, 8)
N_FEATURES = 64
REQUESTS = 600
ROWS_PER_REQUEST = 8
REPEATS = 3
RETRIES = 3
N_CLIENTS = 8


def _fixture():
    """A fitted float32 serving model plus the request stream."""
    rng = np.random.default_rng(0)
    thetas = [rng.normal(scale=4.0, size=(h, N_FEATURES)) for h in CARDINALITIES]
    flat = rng.integers(int(np.prod(CARDINALITIES)), size=4000)
    tuple_idx = np.unravel_index(flat, CARDINALITIES)
    X_train = sum(t[i] for t, i in zip(thetas, tuple_idx))
    X_train = X_train + rng.normal(scale=0.3, size=X_train.shape)

    model = KhatriRaoKMeans(
        CARDINALITIES, init="kr-k-means++", n_init=1, max_iter=10,
        random_state=0,
    ).fit(X_train)
    registry = ModelRegistry()  # float32 serving dtype
    registry.register("bench", summarize(model))

    n_requests = max(50, int(REQUESTS * scaled(1.0)))
    requests = [
        np.ascontiguousarray(
            X_train[rng.integers(X_train.shape[0], size=ROWS_PER_REQUEST)],
            dtype=np.float32,
        )
        for _ in range(n_requests)
    ]
    return registry, requests


def _drain_all(registry, requests, *, singleton: bool):
    """Push every request through a synchronous batcher; returns seconds.

    ``singleton=True`` is the per-request baseline: the same submit/drain
    machinery but drained after every submit, so each kernel call carries
    exactly one request (batch size 1).
    """
    batcher = MicroBatcher(
        registry, start=False,
        max_batch_requests=64, max_batch_rows=1 << 20,
    )
    tickets = []
    start = time.perf_counter()
    if singleton:
        for req in requests:
            tickets.append(batcher.submit("assign", "bench", req))
            batcher.drain()
    else:
        for req in requests:
            tickets.append(batcher.submit("assign", "bench", req))
        batcher.drain()
    elapsed = time.perf_counter() - start
    return elapsed, tickets, batcher


def _threaded_run(registry, requests, *, window_s: float):
    """N_CLIENTS submitter threads against a live worker batcher.

    Returns (wall_seconds, per-request submit→result latencies).
    """
    batcher = MicroBatcher(
        registry, window_s=window_s, max_batch_requests=64,
        max_batch_rows=1 << 20,
    )
    latencies = [None] * len(requests)
    lock = threading.Lock()
    indices = iter(range(len(requests)))

    def client():
        while True:
            with lock:
                i = next(indices, None)
            if i is None:
                return
            submitted = time.perf_counter()
            ticket = batcher.submit("assign", "bench", requests[i])
            ticket.result(timeout=30.0)
            latencies[i] = time.perf_counter() - submitted

    threads = [threading.Thread(target=client) for _ in range(N_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    batcher.stop()
    return wall, np.asarray(latencies, dtype=np.float64)


def test_serving_throughput():
    registry, requests = _fixture()
    served = registry.get("bench")
    n = len(requests)
    total_rows = n * ROWS_PER_REQUEST

    # ---- correctness gate before timing anything: batched ≡ per-request.
    _, batched_tickets, _ = _drain_all(registry, requests, singleton=False)
    for ticket, req in zip(batched_tickets, requests):
        np.testing.assert_array_equal(
            ticket.result()["labels"], served.assign(req)
        )

    # ---- coalescing measurement (deterministic code path, asserted).
    timings = {}
    for attempt in range(1, RETRIES + 1):
        best_batched = min(
            _drain_all(registry, requests, singleton=False)[0]
            for _ in range(REPEATS)
        )
        best_singleton = min(
            _drain_all(registry, requests, singleton=True)[0]
            for _ in range(REPEATS)
        )
        timings["batched"] = min(timings.get("batched", np.inf), best_batched)
        timings["singleton"] = min(
            timings.get("singleton", np.inf), best_singleton
        )
        if timings["singleton"] >= 1.5 * timings["batched"]:
            break
    speedup = timings["singleton"] / timings["batched"]
    qps = {
        "batched": n / timings["batched"],
        "singleton": n / timings["singleton"],
    }

    # Per-request latency in the synchronous frame: the singleton path
    # pays its own kernel call; a coalesced request's latency is the
    # shared batch call (every member waits for the whole batch).
    batcher_probe = MicroBatcher(
        registry, start=False, max_batch_requests=64, max_batch_rows=1 << 20
    )
    singleton_lat, batched_lat = [], []
    for req in requests:
        t0 = time.perf_counter()
        batcher_probe.submit("assign", "bench", req)
        batcher_probe.drain()
        singleton_lat.append(time.perf_counter() - t0)
    for chunk_start in range(0, n, 64):
        chunk = requests[chunk_start:chunk_start + 64]
        t0 = time.perf_counter()
        for req in chunk:
            batcher_probe.submit("assign", "bench", req)
        batcher_probe.drain()
        batched_lat.extend([time.perf_counter() - t0] * len(chunk))

    # ---- threaded end-to-end measurement (recorded only).
    threaded_wall, threaded_lat = _threaded_run(
        registry, requests, window_s=0.002
    )

    print_header(
        f"Serving throughput: {n} requests x {ROWS_PER_REQUEST} rows, "
        f"m={N_FEATURES}, cardinalities={CARDINALITIES} "
        f"(k={int(np.prod(CARDINALITIES))}), float32 serving dtype"
    )
    print(f"{'singleton (batch=1)':<24}{timings['singleton'] * 1e3:>10.1f} ms"
          f"{qps['singleton']:>12.0f} req/s")
    print(f"{'micro-batched':<24}{timings['batched'] * 1e3:>10.1f} ms"
          f"{qps['batched']:>12.0f} req/s")
    print(f"{'speedup':<24}{speedup:>10.2f}x")
    for name, lat in (("singleton", singleton_lat), ("batched", batched_lat),
                      ("threaded_batched", threaded_lat)):
        p = percentiles(lat)
        print(f"{name + ' latency':<24}p50 {p['p50'] * 1e3:7.3f} ms   "
              f"p99 {p['p99'] * 1e3:7.3f} ms")

    record = {
        "benchmark": "serving_throughput",
        "n_requests": n,
        "rows_per_request": ROWS_PER_REQUEST,
        "total_rows": total_rows,
        "n_features": N_FEATURES,
        "cardinalities": list(CARDINALITIES),
        "n_clusters": int(np.prod(CARDINALITIES)),
        "serving_dtype": "float32",
        "max_batch_requests": 64,
        "timings_seconds": timings,
        "throughput_qps": qps,
        "speedup_batched_vs_singleton": speedup,
        "latency_seconds": {
            "singleton": percentiles(singleton_lat),
            "batched": percentiles(batched_lat),
            "threaded_batched": percentiles(threaded_lat),
        },
        "threaded": {
            "n_clients": N_CLIENTS,
            "window_s": 0.002,
            "wall_seconds": threaded_wall,
            "qps": n / threaded_wall,
        },
        "attempts": attempt,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "serving_throughput.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # The acceptance bar (ISSUE 6): micro-batched assign throughput must
    # be ≥ 1.5× the batch-size-1 path at equal results.  The coalescing
    # measurement is single-threaded and best-of-repeats, so this holds
    # with a wide margin on CI-class hardware (expected ~3-10×); the
    # threaded numbers are recorded but never asserted.
    assert speedup >= 1.5, record
