"""Figure 2 — relative change in parameters and accuracy from the Khatri-Rao
paradigm, for k-Means, DKM and IDEC on Blobs and an optdigits-like dataset.

For each baseline algorithm, reports the percentage change in parameter
count and in unsupervised clustering accuracy when switching to the
Khatri-Rao variant at the same number of represented clusters.

Expected shape (paper): parameter changes are strongly negative (25-85%
reductions) while accuracy changes stay near zero.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans, KMeans
from repro.core import balanced_factor_pair
from repro.datasets import load_dataset
from repro.deep import DKM, IDEC, KhatriRaoDKM, KhatriRaoIDEC
from repro.metrics import unsupervised_clustering_accuracy as acc

DEEP_CONFIG = dict(
    hidden_dims=(64, 32, 10),
    pretrain_epochs=20,
    clustering_epochs=10,
    batch_size=256,
    kmeans_n_init=10,
)


def _relative(before: float, after: float) -> float:
    return 100.0 * (after - before) / before


def _run(ds):
    X, y = ds.data, ds.labels
    k = ds.n_labels
    h1, h2 = balanced_factor_pair(k)
    rows = []

    km = KMeans(k, n_init=3, random_state=0).fit(X)
    kr_km = KhatriRaoKMeans((h1, h2), aggregator="sum", n_init=3,
                            random_state=0).fit(X)
    rows.append((
        "k-Means",
        _relative(km.parameter_count(), kr_km.parameter_count()),
        _relative(acc(y, km.labels_) + 1e-9, acc(y, kr_km.labels_) + 1e-9),
    ))

    dkm = DKM(k, random_state=0, **DEEP_CONFIG).fit(X)
    kr_dkm = KhatriRaoDKM((h1, h2), random_state=0, **DEEP_CONFIG).fit(X)
    rows.append((
        "DKM",
        _relative(dkm.parameter_count(), kr_dkm.parameter_count()),
        _relative(acc(y, dkm.labels_) + 1e-9, acc(y, kr_dkm.labels_) + 1e-9),
    ))

    idec = IDEC(k, random_state=0, **DEEP_CONFIG).fit(X)
    kr_idec = KhatriRaoIDEC((h1, h2), random_state=0, **DEEP_CONFIG).fit(X)
    rows.append((
        "IDEC",
        _relative(idec.parameter_count(), kr_idec.parameter_count()),
        _relative(acc(y, idec.labels_) + 1e-9, acc(y, kr_idec.labels_) + 1e-9),
    ))
    return rows


def _report(name, rows):
    print_header(f"Figure 2: relative change (%) of KR variants on {name}")
    print(f"{'algorithm':<10}{'Δ params %':>12}{'Δ accuracy %':>14}")
    for algo, d_params, d_acc in rows:
        print(f"{algo:<10}{d_params:>12.1f}{d_acc:>14.1f}")


def test_fig2_blobs(benchmark):
    ds = load_dataset("blobs", scale=scaled(0.12), random_state=0)
    rows = benchmark.pedantic(lambda: _run(ds), rounds=1, iterations=1)
    _report("Blobs", rows)
    for algo, d_params, d_acc in rows:
        assert d_params < 0.0, f"{algo} should reduce parameters"
        assert d_acc > -60.0, f"{algo} accuracy should not collapse"


def test_fig2_optdigits(benchmark):
    ds = load_dataset("optdigits", scale=scaled(0.08), random_state=0)
    rows = benchmark.pedantic(lambda: _run(ds), rounds=1, iterations=1)
    _report("optdigits", rows)
    for algo, d_params, d_acc in rows:
        assert d_params < 0.0
        assert d_acc > -60.0
