"""Row-parallel kernel throughput (`.benchmarks/row_parallel.json`).

Certifies the row-block execution layer: the pool must (a) produce a
bit-identical model at every thread count and (b) actually overlap
per-block work.  Two legs, mirroring the restart benchmark:

* **latency-bound** — each row block carries a fixed 60 ms stall
  (``time.sleep`` releases the GIL, standing in for the page-fault /
  straggler latency the pool hides when streaming a memmap).  Overlap
  is deterministic and independent of core count, so the ≥1.7× floor
  on 4 threads is asserted even on a single-core CI box.
* **BLAS-bound** — real blocked ``KhatriRaoKMeans`` fits; recorded for
  the report but *not* asserted, because the speedup tracks physical
  cores (``cpu_count`` is stored alongside so readers can judge it).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_header, print_rows, scaled
from repro import KhatriRaoKMeans
from repro.datasets import make_blobs
from repro.runtime import ParallelConfig, RowBlockPool

N_BLOCKS = 8
STALL_S = 0.06
SPEEDUP_FLOOR = 1.7
BLOCK_ROWS = 512


def _time_block_sweep(n_threads: int):
    def block(start, stop):
        checksum = float(start + stop)
        time.sleep(STALL_S)  # releases the GIL: overlappable latency
        return checksum

    config = ParallelConfig(n_threads, block_rows=BLOCK_ROWS)
    with RowBlockPool(config) as pool:
        start = time.perf_counter()
        results = pool.map(block, N_BLOCKS * BLOCK_ROWS)
    return time.perf_counter() - start, results


def _fit_kr(n_threads, X):
    start = time.perf_counter()
    model = KhatriRaoKMeans(
        (3, 3), n_init=4, max_iter=50, random_state=0,
        n_threads=ParallelConfig(n_threads, block_rows=BLOCK_ROWS),
    ).fit(X)
    return time.perf_counter() - start, model


def test_row_parallel_throughput():
    print_header("Row-parallel kernels: supervised block pool throughput")

    # ---- correctness gate: pool width is invisible in the result
    n = int(16000 * scaled(1.0))
    X, _ = make_blobs(max(n, 2000), n_features=8, n_clusters=9,
                      cluster_std=0.6, random_state=1)
    serial_fit_s, serial_model = _fit_kr(1, X)
    parallel_fit_s, parallel_model = _fit_kr(4, X)
    assert parallel_model.inertia_ == serial_model.inertia_
    assert parallel_model.n_iter_ == serial_model.n_iter_
    assert np.array_equal(parallel_model.labels_, serial_model.labels_)
    for a, b in zip(parallel_model.protocentroids_,
                    serial_model.protocentroids_):
        assert np.array_equal(a, b)

    # ---- latency-bound leg (asserted)
    serial_s, serial_results = _time_block_sweep(1)
    parallel_s, parallel_results = _time_block_sweep(4)
    assert parallel_results == serial_results  # block order, not finish order
    latency_speedup = serial_s / parallel_s

    rows = [
        f"{'latency-bound (8 x 60ms block)':<34}"
        f"{serial_s:>12.3f}s{parallel_s:>12.3f}s{latency_speedup:>9.2f}x",
        f"{'BLAS-bound (blocked KR fit)':<34}"
        f"{serial_fit_s:>12.3f}s{parallel_fit_s:>12.3f}s"
        f"{serial_fit_s / parallel_fit_s:>9.2f}x",
    ]
    print_rows(
        f"{'leg':<34}{'n_threads=1':>13}{'n_threads=4':>13}{'speedup':>10}",
        rows,
    )
    print(f"cpu_count={os.cpu_count()}  "
          f"(BLAS leg tracks physical cores; latency leg does not)")

    record = {
        "n_blocks": N_BLOCKS,
        "block_rows": BLOCK_ROWS,
        "workers": 4,
        "cpu_count": os.cpu_count(),
        "latency_bound": {
            "stall_s": STALL_S,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(latency_speedup, 3),
            "asserted_floor": SPEEDUP_FLOOR,
        },
        "blas_bound": {
            "n_samples": int(X.shape[0]),
            "serial_s": round(serial_fit_s, 4),
            "parallel_s": round(parallel_fit_s, 4),
            "speedup": round(serial_fit_s / parallel_fit_s, 3),
            "asserted": False,
        },
        "bit_identical_fit": True,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "row_parallel.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    assert latency_speedup >= SPEEDUP_FLOOR, (
        f"4-thread block sweep only {latency_speedup:.2f}x faster than "
        f"serial on the latency-bound leg (floor {SPEEDUP_FLOOR}x)"
    )
