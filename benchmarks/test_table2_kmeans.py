"""Table 2 — Khatri-Rao-k-Means vs k-Means on all 13 datasets.

For every dataset: KR-k-Means with sum and product aggregators using two
balanced sets with ``h1 · h2 = k`` (the ground-truth cluster count), against
k-Means with ``h1 + h2`` centroids (equal parameters) and ``h1 · h2``
centroids (the optimistic bound).  Reports ACC / ARI / NMI, inertia
normalized by the k-Means(h1·h2) inertia, and the parameter ratio.

Expected shape (paper): KR variants often (not always) beat the
equal-parameter k-Means; k-Means(h1·h2) is generally best but stores
1/params-ratio times more vectors; on the KR-structured datasets
(stickfigures, double_mnist) KR matches the optimistic bound.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans, KMeans
from repro.core import balanced_factor_pair
from repro.datasets import dataset_names, load_dataset
from repro.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    unsupervised_clustering_accuracy,
)

N_INIT = 3
#: the KR-structured datasets need the paper's 20 restarts to reach their
#: (reachable) global optimum; the rest use a reduced budget.
N_INIT_PER_DATASET = {"stickfigures": 20}
#: per-dataset sample-count scales keeping the harness CPU-friendly.
SCALES = {
    "mnist": 0.03,
    "double_mnist": 0.05,
    "har": 0.06,
    "olivetti_faces": 1.0,
    "cmu_faces": 1.0,
    "symbols": 0.5,
    "stickfigures": 0.5,
    "optdigits": 0.15,
    "classification": 0.15,
    "chameleon": 0.08,
    "soybean_large": 1.0,
    "blobs": 0.15,
    "r15": 1.0,
}


def _metrics(y, labels):
    return (
        adjusted_rand_index(y, labels),
        unsupervised_clustering_accuracy(y, labels),
        normalized_mutual_information(y, labels),
    )


def _run_dataset(name: str):
    ds = load_dataset(name, scale=scaled(SCALES[name]), random_state=0)
    k = ds.n_labels
    h1, h2 = balanced_factor_pair(k)
    if h2 == 1:  # prime k: fall back to the nearest non-trivial split
        h1, h2 = balanced_factor_pair(k + 1)
    X, y = ds.data, ds.labels
    n_init = N_INIT_PER_DATASET.get(name, N_INIT)

    kr_sum = KhatriRaoKMeans((h1, h2), aggregator="sum", n_init=n_init,
                             random_state=0).fit(X)
    kr_prod = KhatriRaoKMeans((h1, h2), aggregator="product", n_init=n_init,
                              random_state=0).fit(X)
    km_small = KMeans(h1 + h2, n_init=N_INIT, random_state=0).fit(X)
    km_full = KMeans(h1 * h2, n_init=N_INIT, random_state=0).fit(X)

    base_inertia = km_full.inertia_ or 1.0
    row = {
        "dataset": name,
        "h": (h1, h2),
        "kr_sum": _metrics(y, kr_sum.labels_) + (kr_sum.inertia_ / base_inertia,),
        "kr_prod": _metrics(y, kr_prod.labels_) + (kr_prod.inertia_ / base_inertia,),
        "km_small": _metrics(y, km_small.labels_) + (km_small.inertia_ / base_inertia,),
        "km_full": _metrics(y, km_full.labels_) + (1.0,),
        "params_ratio": (h1 + h2) / (h1 * h2),
    }
    return row


def test_table2_all_datasets(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run_dataset(name) for name in dataset_names()],
        rounds=1,
        iterations=1,
    )
    print_header("Table 2: KR-k-Means vs k-Means (ARI/ACC/NMI/inertia-ratio)")
    header = (f"{'dataset':<16}{'h1,h2':>7} | "
              f"{'KR-+':>22} | {'KR-x':>22} | {'kM(h1+h2)':>22} | "
              f"{'kM(h1h2)':>22} | {'params':>6}")
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in ("kr_sum", "kr_prod", "km_small", "km_full"):
            ari, acc, nmi, ratio = row[key]
            cells.append(f"{ari:.2f}/{acc:.2f}/{nmi:.2f}/{ratio:5.2f}")
        print(f"{row['dataset']:<16}{str(row['h']):>7} | "
              + " | ".join(f"{c:>22}" for c in cells)
              + f" | {row['params_ratio']:>6.2f}")

    by_name = {row["dataset"]: row for row in rows}

    # Shape 1: the optimistic bound km(h1h2) has the lowest inertia ratio.
    for row in rows:
        assert row["km_full"][3] <= min(row["kr_sum"][3], row["kr_prod"][3]) + 1e-9

    # Shape 2: on the KR-structured stickfigures dataset, KR-+ matches the
    # optimistic bound (paper: inertia ratio 1.00, ACC 1.0).
    stick = by_name["stickfigures"]
    assert stick["kr_sum"][3] < 1.2
    assert stick["kr_sum"][1] > 0.9

    # Shape 3: KR beats the equal-parameter baseline on a majority of the
    # datasets where many clusters must be represented.
    wins = sum(
        1 for row in rows
        if min(row["kr_sum"][3], row["kr_prod"][3]) <= row["km_small"][3] * 1.01
    )
    assert wins >= len(rows) // 2

    # Shape 4: every KR summary stores fewer parameters.
    for row in rows:
        assert row["params_ratio"] < 1.0
