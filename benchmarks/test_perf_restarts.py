"""Parallel restart throughput (`.benchmarks/parallel_restarts.json`).

Certifies the ROADMAP's parallel ``n_init`` leg: the supervised executor
must (a) select a bit-identical model at every worker count and (b)
actually overlap restart work.  Two legs:

* **latency-bound** — each restart carries a fixed 60 ms stall
  (``time.sleep`` releases the GIL, standing in for the I/O / straggler
  latency the executor exists to hide).  Overlap here is deterministic
  and independent of core count, so the ≥1.7× floor on 4 workers is
  asserted even on a single-core CI box.
* **BLAS-bound** — real ``KhatriRaoKMeans`` fits; recorded for the
  report but *not* asserted, because the speedup tracks physical cores
  (``cpu_count`` is stored alongside so readers can judge the number).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_header, print_rows, scaled
from repro import KhatriRaoKMeans
from repro.datasets import make_blobs
from repro.runtime import ExecutorConfig, run_restarts

N_RESTARTS = 8
STALL_S = 0.06
SPEEDUP_FLOOR = 1.7


def _stalled_restart(gen: np.random.Generator, seed_index: int):
    draws = gen.normal(size=16)
    time.sleep(STALL_S)  # releases the GIL: overlappable latency
    return float(np.sum(draws**2)), seed_index


def _time_sweep(n_jobs: int):
    start = time.perf_counter()
    report = run_restarts(
        _stalled_restart, N_RESTARTS, np.random.default_rng(0),
        ExecutorConfig(n_jobs),
    )
    return time.perf_counter() - start, report


def _fit_kr(n_jobs, X):
    start = time.perf_counter()
    model = KhatriRaoKMeans(
        (3, 3), n_init=N_RESTARTS, max_iter=50, random_state=0,
        n_jobs=n_jobs,
    ).fit(X)
    return time.perf_counter() - start, model


def test_parallel_restart_throughput():
    print_header(
        "Parallel n_init restarts: supervised executor throughput"
    )

    # ---- correctness gate: the sweep is invisible in the result
    n = int(4000 * scaled(1.0))
    X, _ = make_blobs(max(n, 400), n_features=8, n_clusters=9,
                      cluster_std=0.6, random_state=1)
    serial_fit_s, serial_model = _fit_kr(ExecutorConfig(1), X)
    parallel_fit_s, parallel_model = _fit_kr(ExecutorConfig(4), X)
    assert parallel_model.inertia_ == serial_model.inertia_
    assert np.array_equal(parallel_model.labels_, serial_model.labels_)
    for a, b in zip(parallel_model.protocentroids_,
                    serial_model.protocentroids_):
        assert np.array_equal(a, b)

    # ---- latency-bound leg (asserted)
    serial_s, serial_report = _time_sweep(1)
    parallel_s, parallel_report = _time_sweep(4)
    assert [o.inertia for o in parallel_report.outcomes] == \
        [o.inertia for o in serial_report.outcomes]
    latency_speedup = serial_s / parallel_s

    rows = [
        f"{'latency-bound (8 x 60ms stall)':<34}"
        f"{serial_s:>10.3f}s{parallel_s:>10.3f}s{latency_speedup:>9.2f}x",
        f"{'BLAS-bound (KR fit, n_init=8)':<34}"
        f"{serial_fit_s:>10.3f}s{parallel_fit_s:>10.3f}s"
        f"{serial_fit_s / parallel_fit_s:>9.2f}x",
    ]
    print_rows(
        f"{'leg':<34}{'n_jobs=1':>11}{'n_jobs=4':>11}{'speedup':>10}", rows
    )
    print(f"cpu_count={os.cpu_count()}  "
          f"(BLAS leg tracks physical cores; latency leg does not)")

    record = {
        "n_restarts": N_RESTARTS,
        "workers": 4,
        "cpu_count": os.cpu_count(),
        "latency_bound": {
            "stall_s": STALL_S,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(latency_speedup, 3),
            "asserted_floor": SPEEDUP_FLOOR,
        },
        "blas_bound": {
            "n_samples": int(X.shape[0]),
            "serial_s": round(serial_fit_s, 4),
            "parallel_s": round(parallel_fit_s, 4),
            "speedup": round(serial_fit_s / parallel_fit_s, 3),
            "asserted": False,
        },
        "bit_identical_selection": True,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "parallel_restarts.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    assert latency_speedup >= SPEEDUP_FLOOR, (
        f"4-worker restart sweep only {latency_speedup:.2f}x faster than "
        f"serial on the latency-bound leg (floor {SPEEDUP_FLOOR}x)"
    )
