"""Figure 7 — inertia as a function of the number of protocentroid sets.

Khatri-Rao-k-Means with a fixed budget of 12 vectors split into
p ∈ {2, 3, 4} sets (6+6 → 36, 4+4+4 → 64, 3+3+3+3 → 81 representable
centroids), against k-Means with h1+h2 = 12 and h1·h2 = 36 centroids and the
naïve approach, on Blobs and Classification with 100 ground-truth clusters.

Expected shape: KR inertia decreases (with diminishing returns) as p grows,
and with p >= 3 it can undercut even k-Means with 36 centroids.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans, KMeans, NaiveKhatriRao
from repro.datasets import make_blobs, make_classification

BUDGET = 12
N_INIT = 4


def _sweep(X):
    results = {}
    for p in (2, 3, 4):
        # Equal split of the budget: p sets of 12/p protocentroids
        # (the balanced allocation Section 8 shows is optimal).
        cards = tuple([BUDGET // p] * p)
        best = np.inf
        for aggregator in ("sum", "product"):
            model = KhatriRaoKMeans(
                cards, aggregator=aggregator, n_init=N_INIT, random_state=0
            ).fit(X)
            best = min(best, model.inertia_)
        results[p] = best
    results["kmeans(12)"] = KMeans(12, n_init=N_INIT, random_state=0).fit(X).inertia_
    results["kmeans(36)"] = KMeans(36, n_init=N_INIT, random_state=0).fit(X).inertia_
    results["naive-x(6,6)"] = NaiveKhatriRao(
        (6, 6), aggregator="product", n_init=N_INIT, random_state=0
    ).fit(X).inertia_
    return results


def _report(name, results):
    print_header(f"Figure 7: {name}, inertia vs #protocentroid sets (12 vectors)")
    for p in (2, 3, 4):
        cards = tuple([BUDGET // p] * p)
        print(f"KR p={p} {str(cards):>14} ({(BUDGET // p) ** p:>3} centroids): "
              f"{results[p]:.1f}")
    for key in ("kmeans(12)", "kmeans(36)", "naive-x(6,6)"):
        print(f"{key:>24}: {results[key]:.1f}")


def test_fig7_blobs(benchmark):
    X, _ = make_blobs(max(600, int(5000 * scaled(0.3))), n_features=2,
                      n_clusters=100, random_state=0)
    results = benchmark.pedantic(lambda: _sweep(X), rounds=1, iterations=1)
    _report("Blobs", results)
    # More sets => more representable centroids => lower (or equal) inertia.
    assert results[4] <= results[2] * 1.10
    # All KR configurations beat k-means with the same 12 vectors.
    assert min(results[2], results[3], results[4]) < results["kmeans(12)"]


def test_fig7_classification(benchmark):
    X, _ = make_classification(max(600, int(5000 * scaled(0.3))),
                               n_features=10, n_clusters=100, random_state=0)
    results = benchmark.pedantic(lambda: _sweep(X), rounds=1, iterations=1)
    _report("Classification", results)
    assert min(results[2], results[3], results[4]) < results["kmeans(12)"]
