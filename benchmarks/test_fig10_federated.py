"""Figure 10 — inertia vs server→client communication cost in federated
clustering (FEMNIST-like, 10 clients).

Runs FkM and Khatri-Rao-FkM (product aggregator, as in the paper's case
study) for increasing numbers of communication rounds and reports the global
inertia achieved per cumulative byte budget.

Expected shape (paper): at parity communication cost, Khatri-Rao-FkM attains
consistently lower inertia — at the smallest budgets the FkM inertia is a
multiple of the KR one, because each KR broadcast carries h1+h2 vectors
instead of h1·h2.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro.datasets import make_federated_digits
from repro.federated import FederatedKMeans, KhatriRaoFederatedKMeans

N_CLIENTS = 10
CARDS = (4, 4)  # 16 clusters from 8 broadcast vectors
ROUNDS = 6


def _run():
    samples = max(40, int(200 * scaled(0.5)))
    shards = make_federated_digits(
        N_CLIENTS, samples, side=14, random_state=0
    )
    # Shift to positive range for the product aggregator.
    shards = [(X + 0.1, y) for X, y in shards]
    fkm = FederatedKMeans(
        CARDS[0] * CARDS[1], n_rounds=ROUNDS, random_state=0
    ).fit(shards)
    kr = KhatriRaoFederatedKMeans(
        CARDS, aggregator="product", n_rounds=ROUNDS, random_state=0
    ).fit(shards)
    return fkm, kr


def _available_inertia(history, initial_inertia, budget):
    """Best inertia a method offers within a byte budget.

    Below the first completed round the clients still hold the initial
    (random, pre-aggregation) model.
    """
    best = initial_inertia
    for cost, inertia in zip(history.communication_bytes, history.inertia):
        if cost <= budget:
            best = min(best, inertia)
    return best


def test_fig10_federated_communication(benchmark):
    fkm, kr = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_header("Figure 10: inertia vs server->client communication (bytes)")
    print(f"{'round':>6} | {'FkM bytes':>12} {'FkM inertia':>13} | "
          f"{'KR bytes':>12} {'KR inertia':>13}")
    print(f"{'init':>6} | {'-':>12} {fkm.initial_inertia_:>13.1f} | "
          f"{'-':>12} {kr.initial_inertia_:>13.1f}")
    for i in range(ROUNDS):
        print(f"{i + 1:>6} | {fkm.history_.communication_bytes[i]:>12} "
              f"{fkm.history_.inertia[i]:>13.1f} | "
              f"{kr.history_.communication_bytes[i]:>12} "
              f"{kr.history_.inertia[i]:>13.1f}")

    # Per round, KR broadcasts fewer bytes (8 vs 16 vectors here).
    assert kr.history_.communication_bytes[0] == fkm.history_.communication_bytes[0] // 2

    # The paper's headline regime: at the smallest communication budget
    # (one KR broadcast), the inertia available from FkM — which has not yet
    # completed a round — is a multiple of Khatri-Rao-FkM's.
    smallest_budget = kr.history_.communication_bytes[0]
    kr_at_smallest = _available_inertia(kr.history_, kr.initial_inertia_,
                                        smallest_budget)
    fkm_at_smallest = _available_inertia(fkm.history_, fkm.initial_inertia_,
                                         smallest_budget)
    print(f"\nsmallest budget {smallest_budget} bytes: "
          f"FkM {fkm_at_smallest:.1f} vs KR {kr_at_smallest:.1f} "
          f"({fkm_at_smallest / kr_at_smallest:.2f}x)")
    assert fkm_at_smallest > kr_at_smallest

    # Both trajectories improve monotonically in communication budget.
    assert kr.history_.inertia[-1] <= kr.history_.inertia[0]
    assert fkm.history_.inertia[-1] <= fkm.history_.inertia[0]
