"""Table 1 — characteristics of the datasets used in the experiments.

Regenerates the dataset summary (points, features, labels, imbalance ratio)
from the registry's synthetic stand-ins.  At full scale the counts match the
paper's Table 1; benchmarks load a reduced scale, preserving features,
label counts and imbalance ratios.
"""

from __future__ import annotations

from conftest import print_header, scaled

from repro.datasets import dataset_summary_table


def test_table1_dataset_characteristics(benchmark):
    table = benchmark.pedantic(
        lambda: dataset_summary_table(scale=scaled(0.05), random_state=0),
        rounds=1,
        iterations=1,
    )
    print_header("Table 1: dataset characteristics (reduced scale)")
    print(table)
    lines = table.splitlines()
    assert len(lines) == 15  # header + rule + 13 datasets
