"""Figure 6 — inertia and purity vs protocentroid-set cardinality.

Blobs and Classification with 100 ground-truth clusters; sweep
``h1 = h2 ∈ {10, 15, 20, 25, 30}`` and compare, at ``h1 + h2`` stored
vectors: the naïve two-phase approach, k-Means(h1+h2), Khatri-Rao-k-Means
with sum and product aggregators — plus the k-Means(h1·h2) optimistic bound.

Expected shape (paper): KR variants dominate the equal-parameter baselines
in inertia and purity; k-Means(h1·h2) is best but uses far more parameters.
"""

from __future__ import annotations

import numpy as np
from conftest import print_header, scaled

from repro import KhatriRaoKMeans, KMeans, NaiveKhatriRao
from repro.datasets import make_blobs, make_classification
from repro.metrics import purity

H_VALUES = (10, 15, 20)
N_INIT = 3


def _dataset(name: str):
    n = max(600, int(5000 * scaled(0.3)))
    if name == "blobs":
        return make_blobs(n, n_features=2, n_clusters=100, random_state=0)
    return make_classification(n, n_features=10, n_clusters=100, random_state=0)


def _sweep(X, y):
    rows = []
    for h in H_VALUES:
        naive = NaiveKhatriRao((h, h), aggregator="product", n_init=N_INIT,
                               random_state=0).fit(X)
        km_small = KMeans(2 * h, n_init=N_INIT, random_state=0).fit(X)
        km_full = KMeans(min(h * h, X.shape[0] // 2), n_init=N_INIT,
                         random_state=0).fit(X)
        kr_sum = KhatriRaoKMeans((h, h), aggregator="sum", n_init=N_INIT,
                                 random_state=0).fit(X)
        kr_prod = KhatriRaoKMeans((h, h), aggregator="product", n_init=N_INIT,
                                  random_state=0).fit(X)
        rows.append(
            {
                "h": h,
                "inertia": {
                    "naive-x": naive.inertia_,
                    "kmeans(h1+h2)": km_small.inertia_,
                    "kmeans(h1h2)": km_full.inertia_,
                    "kr-+": kr_sum.inertia_,
                    "kr-x": kr_prod.inertia_,
                },
                "purity": {
                    "naive-x": purity(y, naive.labels_),
                    "kmeans(h1+h2)": purity(y, km_small.labels_),
                    "kmeans(h1h2)": purity(y, km_full.labels_),
                    "kr-+": purity(y, kr_sum.labels_),
                    "kr-x": purity(y, kr_prod.labels_),
                },
            }
        )
    return rows


def _report(name, rows):
    print_header(f"Figure 6: {name}, inertia & purity vs h1=h2 (100 clusters)")
    methods = ["naive-x", "kmeans(h1+h2)", "kr-+", "kr-x", "kmeans(h1h2)"]
    header = f"{'h':>4} | " + " | ".join(f"{m:>14}" for m in methods)
    print("inertia")
    print(header)
    for row in rows:
        print(f"{row['h']:>4} | " + " | ".join(
            f"{row['inertia'][m]:>14.1f}" for m in methods))
    print("purity")
    print(header)
    for row in rows:
        print(f"{row['h']:>4} | " + " | ".join(
            f"{row['purity'][m]:>14.3f}" for m in methods))


def test_fig6_blobs(benchmark):
    X, y = _dataset("blobs")
    rows = benchmark.pedantic(lambda: _sweep(X, y), rounds=1, iterations=1)
    _report("Blobs", rows)
    for row in rows:
        # KR (best aggregator) beats the equal-parameter baselines ...
        kr_best = min(row["inertia"]["kr-+"], row["inertia"]["kr-x"])
        assert kr_best < row["inertia"]["kmeans(h1+h2)"]
        assert kr_best < row["inertia"]["naive-x"]
        # ... while the h1*h2 k-means bound remains at least as good.
        assert row["inertia"]["kmeans(h1h2)"] <= kr_best * 1.05


def test_fig6_classification(benchmark):
    X, y = _dataset("classification")
    rows = benchmark.pedantic(lambda: _sweep(X, y), rounds=1, iterations=1)
    _report("Classification", rows)
    for row in rows:
        kr_best = min(row["inertia"]["kr-+"], row["inertia"]["kr-x"])
        baseline = row["inertia"]["kmeans(h1+h2)"]
        # The paper reports KR at <= 81% of same-parameter baselines here.
        assert kr_best <= 1.02 * baseline
