"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper's evaluation (Section 9); the mapping lives in ``DESIGN.md`` and
``EXPERIMENTS.md``.  Benchmarks run on reduced dataset scales so the whole
harness completes on a laptop CPU; the *shape* of each result (who wins, by
roughly what factor) is what is being reproduced, not absolute numbers.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — global multiplier on dataset sizes (default 1.0
  applied to the already-reduced per-benchmark scales).
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.exceptions import ConvergenceWarning

#: Global scale multiplier for benchmark dataset sizes.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(fraction: float) -> float:
    """Apply the global benchmark scale, clipped to a sane range."""
    return float(min(1.0, max(0.005, fraction * BENCH_SCALE)))


@pytest.fixture(autouse=True)
def _silence_convergence_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        yield


def print_header(title: str) -> None:
    bar = "=" * max(64, len(title) + 4)
    print(f"\n{bar}\n{title}\n{bar}")


def print_rows(header: str, rows) -> None:
    print(header)
    print("-" * len(header))
    for row in rows:
        print(row)
