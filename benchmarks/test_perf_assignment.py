"""Assignment-step microbenchmark: factored vs materialized kernels.

The paper's complexity analysis (Section 6) pins the cost of Khatri-Rao
k-Means on the assignment step.  This benchmark times one assignment of a
high-dimensional workload (n=5000, m=256, cardinalities=(8,8,8) → k=512)
through the seed materialized path (``khatri_rao_combine`` +
``assign_to_nearest``, ``O(n·k·m)``) and through the factored kernel
(``assign_factored``, ``O(n·m·Σh_q + n·k·p)``), in both full-grid and
chunked (memory) modes, and records the observed speedups to
``.benchmarks/assignment_speedup.json``.

The assertion is deliberately loose (speedup ≥ 1 with retries) — wall-clock
asserts on shared CI hardware are flaky; the recorded JSON carries the real
number, which should be ≥ 2× on CI-class machines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_header, scaled

from repro.core import assign_factored
from repro.core._distances import assign_to_nearest
from repro.linalg import khatri_rao_combine

CARDINALITIES = (8, 8, 8)
N_FEATURES = 256
N_POINTS = 5000
CHUNK_SIZE = 256
REPEATS = 3
RETRIES = 3


def _best_of(repeats, fn):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(X, thetas):
    """Best-of-``REPEATS`` wall time for each assignment strategy."""

    def materialized():
        centroids = khatri_rao_combine(thetas, "sum")
        assign_to_nearest(X, centroids)

    def materialized_chunked():
        centroids = khatri_rao_combine(thetas, "sum")
        assign_to_nearest(X, centroids, chunk_size=CHUNK_SIZE)

    def factored():
        assign_factored(X, thetas, "sum")

    def factored_chunked():
        assign_factored(X, thetas, "sum", chunk_size=CHUNK_SIZE)

    return {
        "materialized": _best_of(REPEATS, materialized),
        "materialized_chunked": _best_of(REPEATS, materialized_chunked),
        "factored": _best_of(REPEATS, factored),
        "factored_chunked": _best_of(REPEATS, factored_chunked),
    }


def test_factored_assignment_speedup():
    n = max(500, int(N_POINTS * scaled(1.0)))
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, N_FEATURES))
    thetas = [rng.normal(size=(h, N_FEATURES)) for h in CARDINALITIES]

    # Correctness gate before timing anything.
    ref_labels, ref_distances = assign_to_nearest(
        X, khatri_rao_combine(thetas, "sum")
    )
    labels, distances = assign_factored(X, thetas, "sum")
    np.testing.assert_array_equal(labels, ref_labels)
    np.testing.assert_allclose(distances, ref_distances, atol=1e-6)

    # Keep the best observed time per strategy across attempts so a single
    # noisy attempt can't record a spurious slowdown for either mode.
    timings = {}
    for attempt in range(1, RETRIES + 1):
        attempt_timings = _measure(X, thetas)
        for name, elapsed in attempt_timings.items():
            timings[name] = min(timings.get(name, np.inf), elapsed)
        if (
            timings["factored"] <= timings["materialized"]
            and timings["factored_chunked"] <= timings["materialized_chunked"]
        ):
            break

    speedup_full = timings["materialized"] / timings["factored"]
    speedup_chunked = timings["materialized_chunked"] / timings["factored_chunked"]

    print_header(
        f"Assignment step: n={n}, m={N_FEATURES}, cardinalities={CARDINALITIES} "
        f"(k={int(np.prod(CARDINALITIES))})"
    )
    for name, elapsed in timings.items():
        print(f"{name:<22}{elapsed * 1e3:>10.2f} ms")
    print(f"{'speedup (full grid)':<22}{speedup_full:>10.2f}x")
    print(f"{'speedup (chunked)':<22}{speedup_chunked:>10.2f}x")

    record = {
        "benchmark": "assignment_speedup",
        "n_points": n,
        "n_features": N_FEATURES,
        "cardinalities": list(CARDINALITIES),
        "n_clusters": int(np.prod(CARDINALITIES)),
        "chunk_size": CHUNK_SIZE,
        "timings_seconds": timings,
        "speedup_full": speedup_full,
        "speedup_chunked": speedup_chunked,
        "attempts": attempt,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "assignment_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Loose bounds on purpose: the JSON records the real factors (≥ 2× full
    # grid expected on CI-class hardware); the asserts only guard against
    # regressions that make a factored kernel *slower* than materializing
    # centroids.  The chunked win is modest (~1.1-1.7×), so its bound gets
    # extra slack for shared-runner noise.
    assert speedup_full >= 1.0, timings
    assert speedup_chunked >= 0.7, timings
