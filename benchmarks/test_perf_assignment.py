"""Assignment-step and pruned-Lloyd benchmarks.

The paper's complexity analysis (Section 6) pins the cost of Khatri-Rao
k-Means on the assignment step.  Two benchmarks attack it from both sides:

* ``test_factored_assignment_speedup`` times one assignment of a
  high-dimensional workload (n=5000, m=256, cardinalities=(8,8,8) → k=512)
  through the seed materialized path (``khatri_rao_combine`` +
  ``assign_to_nearest``, ``O(n·k·m)``) and through the factored kernel
  (``assign_factored``, ``O(n·m·Σh_q + n·k·p)``), in both full-grid and
  chunked (memory) modes → ``.benchmarks/assignment_speedup.json``.

* ``test_bounds_pruning_speedup`` times end-to-end multi-iteration
  ``KhatriRaoKMeans.fit()`` with and without cross-iteration Hamerly bounds
  (the ``pruning`` knob, :mod:`repro.core._bounds`) on KR-structured data,
  and records the per-iteration reassignment fraction — which must collapse
  once the protocentroid drift decays → ``.benchmarks/pruning_speedup.json``.

* ``test_update_speedup`` times one closed-form protocentroid update on an
  update-dominated workload (large ``n·m``, small ``Σ h_q`` — the regime
  left as the per-iteration floor once assignment is factored and pruned)
  through the gather reference (``update_gather``, several ``(n, m)``
  float temporaries per set) and the contingency-table kernel
  (``update_factored``, one fused bincount pass per set)
  → ``.benchmarks/update_speedup.json``.

* ``test_dtype_speedup`` times the assignment path (factored and
  materialized) at ``float32`` against ``float64`` on the same workload
  and records the tracemalloc peak of each call — the serving-shaped
  ``dtype`` knob must buy either ≥ 1.4× wall clock (sgemm vs dgemm plus
  half the score-block bandwidth) or ≥ 40 % peak memory, and the memory
  side is deterministic → ``.benchmarks/dtype_speedup.json``.

Timing assertions are deliberately loose (speedup ≥ 1 with retries) —
wall-clock asserts on shared CI hardware are flaky; the recorded JSON
carries the real numbers (≥ 2× expected for both on CI-class machines).
The *fraction-decay* assertion of the pruning benchmark is deterministic
(seeded, no wall clock) and strict.
"""

from __future__ import annotations

import json
import time
import tracemalloc
import warnings
from pathlib import Path

import numpy as np
from conftest import print_header, scaled

from repro.core import (
    KhatriRaoKMeans,
    assign_factored,
    update_factored,
    update_gather,
)
from repro.core._distances import assign_to_nearest
from repro.exceptions import ConvergenceWarning
from repro.linalg import khatri_rao_combine

CARDINALITIES = (8, 8, 8)
N_FEATURES = 256
N_POINTS = 5000
CHUNK_SIZE = 256
REPEATS = 3
RETRIES = 3


def _best_of(repeats, fn):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(X, thetas):
    """Best-of-``REPEATS`` wall time for each assignment strategy."""

    def materialized():
        centroids = khatri_rao_combine(thetas, "sum")
        assign_to_nearest(X, centroids)

    def materialized_chunked():
        centroids = khatri_rao_combine(thetas, "sum")
        assign_to_nearest(X, centroids, chunk_size=CHUNK_SIZE)

    def factored():
        assign_factored(X, thetas, "sum")

    def factored_chunked():
        assign_factored(X, thetas, "sum", chunk_size=CHUNK_SIZE)

    return {
        "materialized": _best_of(REPEATS, materialized),
        "materialized_chunked": _best_of(REPEATS, materialized_chunked),
        "factored": _best_of(REPEATS, factored),
        "factored_chunked": _best_of(REPEATS, factored_chunked),
    }


def test_factored_assignment_speedup():
    n = max(500, int(N_POINTS * scaled(1.0)))
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, N_FEATURES))
    thetas = [rng.normal(size=(h, N_FEATURES)) for h in CARDINALITIES]

    # Correctness gate before timing anything.
    ref_labels, ref_distances = assign_to_nearest(
        X, khatri_rao_combine(thetas, "sum")
    )
    labels, distances = assign_factored(X, thetas, "sum")
    np.testing.assert_array_equal(labels, ref_labels)
    np.testing.assert_allclose(distances, ref_distances, atol=1e-6)

    # Keep the best observed time per strategy across attempts so a single
    # noisy attempt can't record a spurious slowdown for either mode.
    timings = {}
    for attempt in range(1, RETRIES + 1):
        attempt_timings = _measure(X, thetas)
        for name, elapsed in attempt_timings.items():
            timings[name] = min(timings.get(name, np.inf), elapsed)
        if (
            timings["factored"] <= timings["materialized"]
            and timings["factored_chunked"] <= timings["materialized_chunked"]
        ):
            break

    speedup_full = timings["materialized"] / timings["factored"]
    speedup_chunked = timings["materialized_chunked"] / timings["factored_chunked"]

    print_header(
        f"Assignment step: n={n}, m={N_FEATURES}, cardinalities={CARDINALITIES} "
        f"(k={int(np.prod(CARDINALITIES))})"
    )
    for name, elapsed in timings.items():
        print(f"{name:<22}{elapsed * 1e3:>10.2f} ms")
    print(f"{'speedup (full grid)':<22}{speedup_full:>10.2f}x")
    print(f"{'speedup (chunked)':<22}{speedup_chunked:>10.2f}x")

    record = {
        "benchmark": "assignment_speedup",
        "n_points": n,
        "n_features": N_FEATURES,
        "cardinalities": list(CARDINALITIES),
        "n_clusters": int(np.prod(CARDINALITIES)),
        "chunk_size": CHUNK_SIZE,
        "timings_seconds": timings,
        "speedup_full": speedup_full,
        "speedup_chunked": speedup_chunked,
        "attempts": attempt,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "assignment_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Loose bounds on purpose: the JSON records the real factors (≥ 2× full
    # grid expected on CI-class hardware); the asserts only guard against
    # regressions that make a factored kernel *slower* than materializing
    # centroids.  The chunked win is modest (~1.1-1.7×), so its bound gets
    # extra slack for shared-runner noise.
    assert speedup_full >= 1.0, timings
    assert speedup_chunked >= 0.7, timings


# ----------------------------------------------------------------- update
UPDATE_CARDINALITIES = (4, 4, 4)
UPDATE_N_POINTS = 6000
UPDATE_N_FEATURES = 256


def test_update_speedup():
    """Contingency-table vs gather protocentroid update, update-dominated.

    Large ``n·m`` with small ``Σ h_q`` is exactly the regime where the
    closed-form update is the per-iteration floor (assignment is factored
    and pruned away): the gather reference materializes a ``(n, m)`` rest
    matrix per set (plus same-size temporaries around it) while the
    factored kernel reduces everything through one fused bincount pass per
    set plus ``(h_q, h_r) @ (h_r, m)`` matmuls — same ``Θ(p·n·m)``
    asymptotics, several-fold smaller constants.
    """
    n = max(1000, int(UPDATE_N_POINTS * scaled(1.0)))
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, UPDATE_N_FEATURES))
    thetas = [rng.normal(size=(h, UPDATE_N_FEATURES)) for h in UPDATE_CARDINALITIES]
    k = int(np.prod(UPDATE_CARDINALITIES))
    set_labels = np.stack(
        np.unravel_index(rng.integers(k, size=n), UPDATE_CARDINALITIES), axis=1
    )
    weights = rng.uniform(0.5, 2.0, size=n)

    # Correctness gate before timing anything: same values to last-ulp
    # drift, identical reseed draws (fresh identical rngs per call).
    ref = update_gather(X, thetas, set_labels, "sum", np.random.default_rng(1))
    fac = update_factored(X, thetas, set_labels, "sum", np.random.default_rng(1))
    for r, f in zip(ref, fac):
        np.testing.assert_allclose(f, r, rtol=1e-9, atol=1e-9)

    def gather():
        update_gather(X, thetas, set_labels, "sum", np.random.default_rng(1))

    def factored():
        update_factored(X, thetas, set_labels, "sum", np.random.default_rng(1))

    def gather_weighted():
        update_gather(
            X, thetas, set_labels, "sum", np.random.default_rng(1), weights
        )

    def factored_weighted():
        update_factored(
            X, thetas, set_labels, "sum", np.random.default_rng(1), weights
        )

    # Retry pattern shared by the suite: timing asserts are flaky under CI
    # load, so keep the best observed time per kernel across attempts and
    # stop early once the expected ordering shows up.
    timings = {}
    for attempt in range(1, RETRIES + 1):
        attempt_timings = {
            "gather": _best_of(REPEATS, gather),
            "factored": _best_of(REPEATS, factored),
            "gather_weighted": _best_of(REPEATS, gather_weighted),
            "factored_weighted": _best_of(REPEATS, factored_weighted),
        }
        for name, elapsed in attempt_timings.items():
            timings[name] = min(timings.get(name, np.inf), elapsed)
        if (
            timings["factored"] <= timings["gather"]
            and timings["factored_weighted"] <= timings["gather_weighted"]
        ):
            break

    speedup = timings["gather"] / timings["factored"]
    speedup_weighted = timings["gather_weighted"] / timings["factored_weighted"]

    print_header(
        f"Protocentroid update: n={n}, m={UPDATE_N_FEATURES}, "
        f"cardinalities={UPDATE_CARDINALITIES} (Σh={sum(UPDATE_CARDINALITIES)})"
    )
    for name, elapsed in timings.items():
        print(f"{name:<22}{elapsed * 1e3:>10.2f} ms")
    print(f"{'speedup':<22}{speedup:>10.2f}x")
    print(f"{'speedup (weighted)':<22}{speedup_weighted:>10.2f}x")

    record = {
        "benchmark": "update_speedup",
        "n_points": n,
        "n_features": UPDATE_N_FEATURES,
        "cardinalities": list(UPDATE_CARDINALITIES),
        "n_clusters": k,
        "timings_seconds": timings,
        "speedup": speedup,
        "speedup_weighted": speedup_weighted,
        "attempts": attempt,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "update_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Loose wall-clock guards; the JSON carries the real factors (~4-10× on
    # CI-class hardware, comfortably above the 2× target).
    assert speedup >= 1.0, timings
    assert speedup_weighted >= 1.0, timings


# ------------------------------------------------------------------ dtype
def _assignment_workload(n):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, N_FEATURES))
    thetas = [rng.normal(size=(h, N_FEATURES)) for h in CARDINALITIES]
    return X, thetas


def _peak_bytes(fn):
    """tracemalloc peak of one call (numpy allocations are tracked)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def test_dtype_speedup():
    """float32 vs float64 assignment path: wall clock and peak memory.

    The acceptance bar is a disjunction — ≥ 1.4× assignment speedup OR
    ≥ 40 % peak-memory reduction — because the memory half is
    deterministic (array nbytes halve, tracemalloc sees it) while the
    wall-clock half depends on the BLAS build; the JSON records both.
    """
    n = max(500, int(N_POINTS * scaled(1.0)))
    X64, thetas64 = _assignment_workload(n)
    X32 = X64.astype(np.float32)
    thetas32 = [theta.astype(np.float32) for theta in thetas64]

    # Correctness gate before timing anything, asserting exactly what
    # docs/numerics.md promises: float32 distances inside the expansion-form
    # envelope, and label agreement wherever the float64 top-2 gap exceeds
    # the combined envelope (near-ties inside it may legitimately flip on a
    # different BLAS build, so they are excluded rather than asserted).
    ref_labels, ref_distances, ref_second = assign_factored(
        X64, thetas64, "sum", return_second=True
    )
    labels32, distances32 = assign_factored(X32, thetas32, "sum")
    eps32 = float(np.finfo(np.float32).eps)
    norms = np.einsum("ij,ij->i", X64, X64)
    envelope = 8.0 * (N_FEATURES + 8) * eps32 * (norms + ref_distances)
    assert np.all(np.abs(distances32.astype(np.float64) - ref_distances) <= envelope)
    decided = (ref_second - ref_distances) > 2.0 * envelope
    np.testing.assert_array_equal(labels32[decided], ref_labels[decided])

    def factored64():
        assign_factored(X64, thetas64, "sum")

    def factored32():
        assign_factored(X32, thetas32, "sum")

    def materialized64():
        assign_to_nearest(X64, khatri_rao_combine(thetas64, "sum"))

    def materialized32():
        assign_to_nearest(X32, khatri_rao_combine(thetas32, "sum"))

    timings = {}
    for attempt in range(1, RETRIES + 1):
        attempt_timings = {
            "factored_float64": _best_of(REPEATS, factored64),
            "factored_float32": _best_of(REPEATS, factored32),
            "materialized_float64": _best_of(REPEATS, materialized64),
            "materialized_float32": _best_of(REPEATS, materialized32),
        }
        for name, elapsed in attempt_timings.items():
            timings[name] = min(timings.get(name, np.inf), elapsed)
        if (
            timings["factored_float32"] <= timings["factored_float64"]
            and timings["materialized_float32"] <= timings["materialized_float64"]
        ):
            break

    speedup_factored = timings["factored_float64"] / timings["factored_float32"]
    speedup_materialized = (
        timings["materialized_float64"] / timings["materialized_float32"]
    )
    peaks = {
        "factored_float64": _peak_bytes(factored64),
        "factored_float32": _peak_bytes(factored32),
        "materialized_float64": _peak_bytes(materialized64),
        "materialized_float32": _peak_bytes(materialized32),
    }
    memory_reduction = 1.0 - peaks["factored_float32"] / peaks["factored_float64"]

    print_header(
        f"dtype=float32 assignment path: n={n}, m={N_FEATURES}, "
        f"cardinalities={CARDINALITIES} (k={int(np.prod(CARDINALITIES))})"
    )
    for name, elapsed in timings.items():
        print(f"{name:<24}{elapsed * 1e3:>10.2f} ms{peaks[name] / 1e6:>12.1f} MB peak")
    print(f"{'speedup (factored)':<24}{speedup_factored:>10.2f}x")
    print(f"{'speedup (materialized)':<24}{speedup_materialized:>10.2f}x")
    print(f"{'peak-memory reduction':<24}{memory_reduction:>10.1%}")

    record = {
        "benchmark": "dtype_speedup",
        "n_points": n,
        "n_features": N_FEATURES,
        "cardinalities": list(CARDINALITIES),
        "n_clusters": int(np.prod(CARDINALITIES)),
        "timings_seconds": timings,
        "peak_bytes": peaks,
        "speedup_factored": speedup_factored,
        "speedup_materialized": speedup_materialized,
        "memory_reduction_factored": memory_reduction,
        "attempts": attempt,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "dtype_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # The acceptance disjunction: the memory leg is deterministic (~50 %
    # on any build: every hot array literally halves), so the assert
    # cannot flake even when a shared runner eats the wall-clock leg.
    assert speedup_factored >= 1.4 or memory_reduction >= 0.4, record
PRUNE_CARDINALITIES = (24, 24)
PRUNE_N_POINTS = 6000
PRUNE_N_FEATURES = 64
PRUNE_MAX_ITER = 60


def _kr_structured_data(n, m, cardinalities, *, seed=0, scale=8.0, noise=0.2):
    """Points around centers that form an exact Khatri-Rao (sum) grid.

    This is the paper's own generative setting: the optimum is
    KR-representable, so Lloyd actually converges and the late iterations
    are where an unpruned implementation keeps paying full price for a
    re-assignment that cannot change.
    """
    rng = np.random.default_rng(seed)
    thetas = [rng.normal(scale=scale, size=(h, m)) for h in cardinalities]
    flat = rng.integers(int(np.prod(cardinalities)), size=n)
    tuple_indices = np.unravel_index(flat, cardinalities)
    centers = sum(theta[idx] for theta, idx in zip(thetas, tuple_indices))
    return centers + rng.normal(scale=noise, size=(n, m))


def _timed_fit(X, *, assignment, pruning):
    model = KhatriRaoKMeans(
        PRUNE_CARDINALITIES,
        init="kr-k-means++",
        n_init=1,
        max_iter=PRUNE_MAX_ITER,
        tol=0.0,  # fixed-iteration workload: every iteration pays assignment
        assignment=assignment,
        pruning=pruning,
        random_state=0,
    )
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        model.fit(X)
    return time.perf_counter() - start, model


def test_bounds_pruning_speedup():
    n = max(1000, int(PRUNE_N_POINTS * scaled(1.0)))
    X = _kr_structured_data(n, PRUNE_N_FEATURES, PRUNE_CARDINALITIES)

    # Correctness gate before timing anything: pruned ≡ unpruned, exactly.
    _, ref = _timed_fit(X, assignment="factored", pruning="none")
    _, pruned = _timed_fit(X, assignment="factored", pruning="bounds")
    np.testing.assert_array_equal(ref.labels_, pruned.labels_)
    assert ref.inertia_ == pruned.inertia_
    assert ref.n_iter_ == pruned.n_iter_

    timings = {}
    fractions = {}
    for attempt in range(1, RETRIES + 1):
        for assignment in ("materialized", "factored"):
            for pruning in ("none", "bounds"):
                elapsed, model = _timed_fit(X, assignment=assignment, pruning=pruning)
                key = f"{assignment}_{pruning}"
                timings[key] = min(timings.get(key, np.inf), elapsed)
                if pruning == "bounds":
                    fractions[assignment] = model.reassignment_fractions_
        if timings["materialized_none"] >= timings["materialized_bounds"]:
            break

    speedups = {
        assignment: timings[f"{assignment}_none"] / timings[f"{assignment}_bounds"]
        for assignment in ("materialized", "factored")
    }

    print_header(
        f"Bounds-pruned Lloyd: n={n}, m={PRUNE_N_FEATURES}, "
        f"cardinalities={PRUNE_CARDINALITIES} "
        f"(k={int(np.prod(PRUNE_CARDINALITIES))}), {PRUNE_MAX_ITER} iterations"
    )
    for name, elapsed in timings.items():
        print(f"{name:<24}{elapsed * 1e3:>10.1f} ms")
    for assignment, factor in speedups.items():
        print(f"{'speedup (' + assignment + ')':<24}{factor:>10.2f}x")
    decayed = fractions["materialized"]
    tail = decayed[len(decayed) // 3:]
    print(f"{'reassignment tail max':<24}{max(tail):>10.4f}")

    record = {
        "benchmark": "pruning_speedup",
        "n_points": n,
        "n_features": PRUNE_N_FEATURES,
        "cardinalities": list(PRUNE_CARDINALITIES),
        "n_clusters": int(np.prod(PRUNE_CARDINALITIES)),
        "max_iter": PRUNE_MAX_ITER,
        "timings_seconds": timings,
        "speedup_materialized": speedups["materialized"],
        "speedup_factored": speedups["factored"],
        "reassignment_fractions": {
            name: [round(float(f), 4) for f in values]
            for name, values in fractions.items()
        },
        "attempts": attempt,
    }
    out_dir = Path(__file__).resolve().parents[1] / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "pruning_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Deterministic (seeded, no wall clock): the workload runs ≥ 30
    # iterations and late iterations re-score almost nobody.
    assert len(decayed) >= 30
    assert max(tail) < 0.10, tail

    # Loose wall-clock guards; the JSON carries the real factors (~3× for
    # the materialized path, ~1.3-1.7× for the already-cheap factored
    # kernel on CI-class hardware).
    assert speedups["materialized"] >= 1.0, timings
    assert speedups["factored"] >= 0.7, timings
