"""Setup shim enabling editable installs in offline environments.

The sandboxed environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` — and plain
``pip install -e .`` on modern toolchains — work everywhere.

The ``test`` extra pins what the CI unit-test step installs: ``hypothesis``
powers the property-based equivalence suites (factored assignment, bounds
pruning, contingency-table updates).
"""

from setuptools import setup

setup(
    extras_require={
        "test": ["pytest", "hypothesis"],
    },
)
