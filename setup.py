"""Setup shim enabling editable installs in offline environments.

The sandboxed environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` — and plain
``pip install -e .`` on modern toolchains — work everywhere.

The ``test`` extra pins what the CI unit-test step installs: ``pytest``
collects the suites and ``hypothesis`` powers the property-based
equivalence grids (factored assignment, bounds pruning, contingency-table
updates, dtype envelopes).  The serving suites and load-generator
benchmark deliberately fit inside the same extra — the server and its
clients are stdlib-only (http.server, urllib, json, threading), so
testing them adds no dependency.  Supported Python versions are declared
both as ``python_requires`` and as trove classifiers so the two can never
drift apart silently.
"""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).resolve().parent

# PyPI-facing description sourced from the README so the docs entry points
# (docs/architecture.md, docs/numerics.md, docs/serving.md, the knob table
# and the `repro.cli serve` quickstart) are advertised wherever the package
# metadata is rendered.
_README = _HERE / "README.md"
LONG_DESCRIPTION = (
    _README.read_text(encoding="utf-8") if _README.exists() else ""
)

# One source of truth for the version floor; mirrored into classifiers.
PYTHON_REQUIRES = ">=3.9"
SUPPORTED_PYTHONS = ("3.9", "3.10", "3.11", "3.12")

setup(
    name="repro",
    version="1.0.0",
    description="Khatri-Rao clustering for data summarization (EDBT 2026 reproduction)",
    package_dir={"": "src"},
    # Picks up every subpackage with an __init__.py — including
    # repro.serving, the stdlib-only batched model server (http.server +
    # json; no additions to install_requires, and the serving load
    # generator in benchmarks/ needs nothing beyond the `test` extra).
    # tests/test_packaging.py pins this resolution.
    packages=find_packages("src"),
    # `import repro` reaches scipy unconditionally (metrics.clustering's
    # Hungarian matching, core.gmeans's Anderson-Darling test), so both are
    # hard requirements, matching what CI installs.
    install_requires=["numpy", "scipy"],
    python_requires=PYTHON_REQUIRES,
    long_description=LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    classifiers=[
        "Programming Language :: Python :: 3",
        *(
            f"Programming Language :: Python :: {version}"
            for version in SUPPORTED_PYTHONS
        ),
        "Operating System :: OS Independent",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering",
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
    },
)
