"""Federated client dropout: participation policies, quorum, renormalization.

A federated round must tolerate clients vanishing: the aggregation
renormalizes over the survivors (a dropped client contributes nothing —
not stale statistics), byte accounting only charges broadcasts actually
sent, and a round below the ``min_clients`` quorum fails typed instead of
silently aggregating a biased model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import QuorumError, ValidationError
from repro.faults import DropoutSchedule
from repro.federated import (
    FederatedKMeans,
    KhatriRaoFederatedKMeans,
    communication_cost_bytes,
)


@pytest.fixture
def shards():
    rng = np.random.default_rng(0)
    return [(rng.normal(size=(40, 6)), None) for _ in range(5)]


def _per_round_bytes(model):
    return np.diff([0] + model.history_.communication_bytes).tolist()


# ------------------------------------------------------------- back-compat
def test_full_participation_is_bit_compatible(shards):
    legacy = FederatedKMeans(4, n_rounds=4, random_state=7).fit(shards)
    explicit = FederatedKMeans(
        4, n_rounds=4, random_state=7, participation=None, min_clients=1
    ).fit(shards)
    assert np.array_equal(legacy.cluster_centers_, explicit.cluster_centers_)
    assert legacy.history_.inertia == explicit.history_.inertia
    assert (legacy.history_.communication_bytes
            == explicit.history_.communication_bytes)


def test_kr_full_participation_is_bit_compatible(shards):
    legacy = KhatriRaoFederatedKMeans(
        [2, 3], n_rounds=3, random_state=3
    ).fit(shards)
    explicit = KhatriRaoFederatedKMeans(
        [2, 3], n_rounds=3, random_state=3, participation=None
    ).fit(shards)
    for a, b in zip(legacy.protocentroids_, explicit.protocentroids_):
        assert np.array_equal(a, b)
    assert legacy.history_.inertia == explicit.history_.inertia


# ----------------------------------------------------------------- dropout
def test_bytes_account_only_surviving_broadcasts(shards):
    schedule = DropoutSchedule.from_spec({1: [0, 2], 3: [4]})
    model = FederatedKMeans(
        4, n_rounds=4, random_state=7, participation=schedule
    ).fit(shards)
    per_client = communication_cost_bytes(4, 6, 1, 1)
    assert _per_round_bytes(model) == [
        5 * per_client, 3 * per_client, 5 * per_client, 4 * per_client
    ]


def test_kr_bytes_account_only_surviving_broadcasts(shards):
    schedule = DropoutSchedule.from_spec({1: [0, 2], 2: [4]})
    model = KhatriRaoFederatedKMeans(
        [2, 3], n_rounds=3, random_state=3, participation=schedule
    ).fit(shards)
    per_client = communication_cost_bytes(5, 6, 1, 1)
    assert _per_round_bytes(model) == [
        5 * per_client, 3 * per_client, 4 * per_client
    ]


def test_dropped_client_cannot_influence_the_model():
    """Renormalization: a permanently dropped outlier shard leaves no trace."""
    rng = np.random.default_rng(1)
    near = [(rng.normal(size=(50, 3)), None) for _ in range(3)]
    outlier = (rng.normal(loc=1000.0, size=(50, 3)), None)
    schedule = DropoutSchedule.from_spec(
        {r: [3] for r in range(6)}
    )
    model = FederatedKMeans(
        3, n_rounds=6, random_state=5, participation=schedule
    ).fit(near + [outlier])
    # Every aggregated center stays in the participating clients' range;
    # had client 3's statistics leaked in, at least one center would sit
    # near 1000 (or be dragged far from the origin blob).
    assert np.all(np.abs(model.cluster_centers_) < 100.0)


def test_inertia_history_still_covers_all_shards(shards):
    # Dropped clients skip *aggregation*, not evaluation: the per-round
    # global inertia keeps measuring the full federation.
    schedule = DropoutSchedule.from_spec({0: [1], 1: [1], 2: [1]})
    model = FederatedKMeans(
        4, n_rounds=3, random_state=7, participation=schedule
    ).fit(shards)
    assert len(model.history_.inertia) == 3
    evaluated = model.history_.inertia[-1]
    manual = 0.0
    for X, _ in shards:
        labels = model.predict(X)
        manual += float(
            ((np.asarray(X) - model.cluster_centers_[labels]) ** 2).sum()
        )
    assert evaluated == pytest.approx(manual, rel=1e-9)


def test_random_dropout_schedule_is_deterministic(shards):
    schedule = DropoutSchedule.random(seed=11, n_rounds=5, n_clients=5,
                                      p_drop=0.4)
    fits = [
        KhatriRaoFederatedKMeans(
            [2, 2], aggregator="sum", n_rounds=5, random_state=1,
            participation=schedule,
        ).fit(shards)
        for _ in range(2)
    ]
    assert fits[0].history_.inertia == fits[1].history_.inertia
    assert (fits[0].history_.communication_bytes
            == fits[1].history_.communication_bytes)
    for a, b in zip(fits[0].protocentroids_, fits[1].protocentroids_):
        assert np.array_equal(a, b)


def test_boolean_mask_policies_are_accepted(shards):
    def mask_policy(round_index, n_clients):
        mask = np.ones(n_clients, dtype=bool)
        mask[round_index % n_clients] = False
        return mask

    model = FederatedKMeans(
        3, n_rounds=2, random_state=0, participation=mask_policy
    ).fit(shards)
    per_client = communication_cost_bytes(3, 6, 1, 1)
    assert _per_round_bytes(model) == [4 * per_client, 4 * per_client]


# ------------------------------------------------------------------ quorum
def test_quorum_violation_is_typed(shards):
    schedule = DropoutSchedule.from_spec({1: [0, 1, 2, 3]})
    with pytest.raises(QuorumError) as excinfo:
        FederatedKMeans(
            4, n_rounds=3, random_state=7, participation=schedule,
            min_clients=2,
        ).fit(shards)
    assert excinfo.value.round_index == 1
    assert excinfo.value.participating == 1
    assert excinfo.value.required == 2


def test_kr_quorum_violation_is_typed(shards):
    schedule = DropoutSchedule.from_spec({0: [0, 1, 2, 3, 4]})
    with pytest.raises(QuorumError):
        KhatriRaoFederatedKMeans(
            [2, 3], n_rounds=2, random_state=3, participation=schedule,
        ).fit(shards)


def test_quorum_error_is_a_runtime_error(shards):
    schedule = DropoutSchedule.from_spec({0: [0, 1, 2, 3]})
    with pytest.raises(RuntimeError):
        FederatedKMeans(
            2, n_rounds=1, random_state=0, participation=schedule,
            min_clients=3,
        ).fit(shards)


# -------------------------------------------------------------- validation
def test_participation_must_be_callable():
    with pytest.raises(ValidationError):
        FederatedKMeans(3, participation="half")
    with pytest.raises(ValidationError):
        KhatriRaoFederatedKMeans([2, 2], participation=0.5)


def test_min_clients_must_be_positive():
    with pytest.raises(ValidationError):
        FederatedKMeans(3, min_clients=0)


def test_out_of_range_indices_are_rejected(shards):
    with pytest.raises(ValidationError):
        FederatedKMeans(
            3, n_rounds=1, random_state=0,
            participation=lambda r, n: [0, 99],
        ).fit(shards)


def test_wrong_shape_mask_is_rejected(shards):
    with pytest.raises(ValidationError):
        FederatedKMeans(
            3, n_rounds=1, random_state=0,
            participation=lambda r, n: np.ones(2, dtype=bool),
        ).fit(shards)
