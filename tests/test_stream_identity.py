"""The point-identity ``partial_fit`` protocol and its contracts.

Acceptance grid: an indexed (bounds-pruned) online stream must be
**bit-identical** — labels, inertia, protocentroid bytes, fraction log —
to the same stream run anonymously (fully re-scored), across the
dtype × aggregator grid.  Plus: the identity-violation degradation path,
index validation, the ``reassignment_fractions_`` contract, and
checkpoint/resume of a live stream (model-level and monitored).
"""

import numpy as np
import pytest

from repro import MiniBatchKhatriRaoKMeans
from repro.datasets import make_blobs
from repro.exceptions import (
    CheckpointError,
    MonitoringError,
    NotFittedError,
    ValidationError,
)
from repro.monitoring import DriftEngine, MonitoredStream


def stream_batches(n_batches=12, batch_size=60, pool=300, seed=5,
                   dtype=np.float64):
    pool_X, _ = make_blobs(pool, n_clusters=9, random_state=3)
    pool_X = pool_X.astype(dtype)
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_batches):
        idx = rng.choice(pool, size=batch_size, replace=False)
        out.append((pool_X[idx].copy(), idx.astype(np.int64)))
    return out


def run_stream(batches, *, use_index, dtype="float64", aggregator="sum",
               seed=0):
    model = MiniBatchKhatriRaoKMeans(
        (3, 3), aggregator=aggregator, dtype=dtype, random_state=seed
    )
    trace = []
    for batch, idx in batches:
        model.partial_fit(batch, index=idx if use_index else None)
        stats = model.last_batch_stats_
        trace.append((stats.labels.tobytes(), stats.inertia, stats.shift))
    return model, trace


class TestIndexedStreamBitIdentity:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_indexed_equals_anonymous(self, dtype, aggregator):
        np_dtype = np.dtype(dtype).type
        batches = stream_batches(dtype=np_dtype)
        anon, anon_trace = run_stream(
            batches, use_index=False, dtype=dtype, aggregator=aggregator
        )
        indexed, indexed_trace = run_stream(
            batches, use_index=True, dtype=dtype, aggregator=aggregator
        )
        assert anon_trace == indexed_trace  # labels, inertia, shift, per step
        for theta_a, theta_i in zip(
            anon.protocentroids_, indexed.protocentroids_
        ):
            assert theta_a.dtype == np.dtype(dtype)
            assert theta_a.tobytes() == theta_i.tobytes()

    def test_indexed_stream_actually_prunes(self):
        batches = stream_batches()
        model, _ = run_stream(batches, use_index=True)
        fractions = model.reassignment_fractions_
        assert len(fractions) == len(batches)
        assert fractions[0] == 1.0          # nothing known yet
        assert min(fractions) < 1.0         # bounds certified someone
        assert model._stream_state is not None
        assert model._stream_state.size > 0

    def test_product_aggregator_falls_back_transparently(self):
        batches = stream_batches()
        model, _ = run_stream(batches, use_index=True, aggregator="product")
        assert not model.uses_pruning
        assert model.reassignment_fractions_ is None
        assert model._stream_state is None

    def test_mixed_identified_and_anonymous_batches_stay_identical(self):
        batches = stream_batches()
        anon, anon_trace = run_stream(batches, use_index=False)
        model = MiniBatchKhatriRaoKMeans((3, 3), random_state=0)
        trace = []
        for i, (batch, idx) in enumerate(batches):
            model.partial_fit(batch, index=idx if i % 3 else None)
            stats = model.last_batch_stats_
            trace.append((stats.labels.tobytes(), stats.inertia, stats.shift))
        assert trace == anon_trace
        # Anonymous steps in a pruned stream are logged as fraction 1.0.
        assert all(model.reassignment_fractions_[i] == 1.0
                   for i in range(0, len(batches), 3))


class TestIdentityViolations:
    def test_changed_point_under_same_id_is_rescored(self):
        batches = stream_batches()
        model, _ = run_stream(batches[:6], use_index=True)
        state = model._stream_state
        batch, idx = batches[6]
        known_before = state.known.copy()
        # Violate the contract: same ids, shifted points.
        model.partial_fit(batch + 100.0, index=idx)
        # Every violated id was invalidated and exactly re-scored.
        assert model.reassignment_fractions_[-1] == 1.0
        assert known_before[idx].any()  # the violation actually hit cache

    @pytest.mark.parametrize("bad_index, message", [
        (np.arange(6).reshape(2, 3), "1-D"),
        (np.arange(3), "per batch row"),
        (np.array([0.5, 1.5, 2.5, 3.5, 4.5]), "integer"),
        (np.array([0, 1, 2, 3, -1]), "non-negative"),
        (np.array([0, 1, 2, 2, 3]), "repeat"),
    ])
    def test_index_validation(self, bad_index, message):
        model = MiniBatchKhatriRaoKMeans((2, 2), random_state=0)
        batch = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError, match=message):
            model.partial_fit(batch, index=bad_index)


class TestFractionContract:
    """``reassignment_fractions_`` is None iff pruning is off; otherwise
    exactly one entry per completed step — the PR's normalized contract."""

    def test_none_iff_pruning_disabled(self):
        batches = stream_batches(n_batches=4)
        for aggregator, pruning, expect_none in (
            ("sum", "auto", False),
            ("sum", "none", True),
            ("product", "auto", True),
        ):
            model = MiniBatchKhatriRaoKMeans(
                (3, 3), aggregator=aggregator, pruning=pruning, random_state=0
            )
            for batch, idx in batches:
                model.partial_fit(batch, index=idx)
            if expect_none:
                assert model.reassignment_fractions_ is None
            else:
                assert len(model.reassignment_fractions_) == model.n_steps_

    def test_fit_then_stream_keeps_one_entry_per_step(self, ):
        X, _ = make_blobs(200, n_clusters=9, random_state=0)
        model = MiniBatchKhatriRaoKMeans(
            (3, 3), batch_size=50, max_steps=5, reassignment_tol=0.0,
            random_state=0,
        ).fit(X)
        assert len(model.reassignment_fractions_) == model.n_steps_
        for batch, idx in stream_batches(n_batches=3):
            model.partial_fit(batch, index=idx)
        assert len(model.reassignment_fractions_) == model.n_steps_

    def test_unpruned_estimator_stays_none_through_fit(self):
        X, _ = make_blobs(200, n_clusters=9, random_state=0)
        model = MiniBatchKhatriRaoKMeans(
            (3, 3), pruning="none", batch_size=50, max_steps=5,
            random_state=0,
        ).fit(X)
        assert model.reassignment_fractions_ is None


class TestStreamCheckpointResume:
    def test_interrupted_stream_is_bit_identical(self, tmp_path):
        batches = stream_batches()
        straight, straight_trace = run_stream(batches, use_index=True)

        model = MiniBatchKhatriRaoKMeans((3, 3), random_state=0)
        trace = []

        def note():
            stats = model.last_batch_stats_
            trace.append((stats.labels.tobytes(), stats.inertia, stats.shift))

        for batch, idx in batches[:7]:
            model.partial_fit(batch, index=idx)
            note()
        path = model.save_stream(tmp_path / "stream.npz")

        model = MiniBatchKhatriRaoKMeans((3, 3), random_state=0)
        model.load_stream(path)
        for batch, idx in batches[7:]:
            model.partial_fit(batch, index=idx)
            note()

        assert trace == straight_trace
        for theta_a, theta_b in zip(
            straight.protocentroids_, model.protocentroids_
        ):
            assert theta_a.tobytes() == theta_b.tobytes()
        assert (straight.reassignment_fractions_
                == model.reassignment_fractions_)
        # Bounds decisions, not just outputs: identical cached state.
        for key, value in straight._stream_state.state_arrays().items():
            assert value.tobytes() == \
                model._stream_state.state_arrays()[key].tobytes(), key
        assert straight._stream_state.cum_max == model._stream_state.cum_max

    def test_param_mismatch_is_typed(self, tmp_path):
        batches = stream_batches(n_batches=2)
        model, _ = run_stream(batches, use_index=True)
        path = model.save_stream(tmp_path / "stream.npz")
        other = MiniBatchKhatriRaoKMeans((3, 3), batch_size=999,
                                         random_state=0)
        with pytest.raises(CheckpointError, match="params"):
            other.load_stream(path)

    def test_unfitted_save_is_typed(self, tmp_path):
        with pytest.raises(NotFittedError):
            MiniBatchKhatriRaoKMeans((3, 3)).save_stream(tmp_path / "x.npz")

    def test_monitored_stream_resume_is_bit_identical(self, tmp_path):
        batches = stream_batches(n_batches=14)

        def build():
            return MonitoredStream(
                MiniBatchKhatriRaoKMeans((3, 3), random_state=0),
                engine=DriftEngine(warmup_steps=3,
                                   reassignment_threshold=0.75),
                policy={"name": "trigger_refine", "min_severity": "warning",
                        "cooldown": 4},
            )

        straight = build()
        for batch, idx in batches:
            straight.process(batch, index=idx)

        stream = build()
        for batch, idx in batches[:8]:
            stream.process(batch, index=idx)
        path = stream.save(tmp_path / "monitored.npz")

        resumed = build().load(path)
        for batch, idx in batches[8:]:
            stream.process(batch, index=idx)
            resumed.process(batch, index=idx)

        assert stream.timeline() == straight.timeline()
        assert resumed.timeline() == straight.timeline()
        assert resumed.engine.state_dict() == straight.engine.state_dict()
        assert resumed.policy.state_dict() == straight.policy.state_dict()
        for theta_a, theta_b in zip(
            straight.model.protocentroids_, resumed.model.protocentroids_
        ):
            assert theta_a.tobytes() == theta_b.tobytes()

    def test_monitored_load_rejects_plain_stream_checkpoint(self, tmp_path):
        batches = stream_batches(n_batches=2)
        model, _ = run_stream(batches, use_index=True)
        path = model.save_stream(tmp_path / "plain.npz")
        fresh = MonitoredStream(
            MiniBatchKhatriRaoKMeans((3, 3), random_state=0)
        )
        with pytest.raises(MonitoringError, match="monitor state"):
            fresh.load(path)

    def test_extra_header_key_collision_is_typed(self, tmp_path):
        batches = stream_batches(n_batches=2)
        model, _ = run_stream(batches, use_index=True)
        with pytest.raises(ValidationError, match="collides"):
            model.save_stream(tmp_path / "x.npz", extra_header={"step": 1})


class TestReinitialize:
    def test_reinitialize_restarts_schedule_but_keeps_history(self):
        batches = stream_batches(n_batches=6)
        model, _ = run_stream(batches, use_index=True)
        steps_before = model.n_steps_
        fractions_before = list(model.reassignment_fractions_)
        model.reinitialize(batches[0][0],
                           random_state=np.random.default_rng(1))
        assert model.n_steps_ == steps_before
        assert model.reassignment_fractions_ == fractions_before
        assert model._stream_state is None
        assert all(np.all(c == 0.0) for c in model._counts)
        # The stream continues; bounds rebuild from scratch.
        model.partial_fit(batches[1][0], index=batches[1][1])
        assert model.n_steps_ == steps_before + 1
        assert model.reassignment_fractions_[-1] == 1.0

    def test_reinitialize_is_deterministic_in_the_given_rng(self):
        batch, _ = stream_batches(n_batches=1)[0]
        thetas = []
        for _ in range(2):
            model = MiniBatchKhatriRaoKMeans((3, 3), random_state=0)
            model.reinitialize(batch, random_state=np.random.default_rng(9))
            thetas.append([t.tobytes() for t in model.protocentroids_])
        assert thetas[0] == thetas[1]
