"""Equivalence tests for the factored assignment subsystem.

The factored kernel (:mod:`repro.core._factored`) must be a drop-in
replacement for materializing all ``∏ h_q`` centroids: identical labels and
squared distances (within float tolerance) across aggregators, numbers of
sets, uneven cardinalities, sample weights, and the chunked memory mode.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KhatriRaoKMeans
from repro.core import MiniBatchKhatriRaoKMeans, assign_factored, grouped_row_sum
from repro.core._distances import assign_to_nearest, row_norms_squared
from repro.exceptions import ValidationError
from repro.linalg import ProductAggregator, SumAggregator, khatri_rao_combine

CARDINALITY_SETS = [(4,), (3, 5), (2, 3, 4), (5, 2), (2, 2, 2)]


def _random_problem(seed, cardinalities, n=40, m=6):
    rng = np.random.default_rng(seed)
    thetas = [rng.normal(size=(h, m)) for h in cardinalities]
    X = rng.normal(size=(n, m))
    return X, thetas


class TestKernelEquivalence:
    @given(
        seed=st.integers(0, 1000),
        cards_index=st.integers(0, len(CARDINALITY_SETS) - 1),
        chunk_size=st.integers(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_materialized(self, seed, cards_index, chunk_size):
        cardinalities = CARDINALITY_SETS[cards_index]
        X, thetas = _random_problem(seed, cardinalities)
        centroids = khatri_rao_combine(thetas, "sum")
        ref_labels, ref_distances = assign_to_nearest(X, centroids)
        labels, distances = assign_factored(
            X, thetas, "sum", chunk_size=chunk_size
        )
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_allclose(distances, ref_distances, atol=1e-9)

    @pytest.mark.parametrize("cardinalities", CARDINALITY_SETS)
    def test_precomputed_norms_match(self, cardinalities):
        X, thetas = _random_problem(7, cardinalities)
        labels, distances = assign_factored(X, thetas, "sum")
        labels_pre, distances_pre = assign_factored(
            X, thetas, "sum", x_squared_norms=row_norms_squared(X)
        )
        np.testing.assert_array_equal(labels, labels_pre)
        np.testing.assert_allclose(distances, distances_pre, atol=1e-12)

    def test_fewer_points_than_protocentroids(self):
        # n < Σ h_q must still work: 5 points against 4+4 protocentroids.
        X, thetas = _random_problem(11, (4, 4), n=5)
        centroids = khatri_rao_combine(thetas, "sum")
        ref_labels, ref_distances = assign_to_nearest(X, centroids)
        for chunk_size in (0, 3):
            labels, distances = assign_factored(
                X, thetas, "sum", chunk_size=chunk_size
            )
            np.testing.assert_array_equal(labels, ref_labels)
            np.testing.assert_allclose(distances, ref_distances, atol=1e-9)

    def test_product_aggregator_rejected(self):
        X, thetas = _random_problem(3, (3, 3))
        with pytest.raises(ValidationError):
            assign_factored(X, thetas, "product")


class TestAggregatorHooks:
    @pytest.mark.parametrize("cardinalities", CARDINALITY_SETS)
    def test_self_interaction_is_centroid_norms(self, cardinalities):
        _, thetas = _random_problem(5, cardinalities)
        agg = SumAggregator()
        centroids = khatri_rao_combine(thetas, agg)
        expected = np.einsum("ij,ij->i", centroids, centroids)
        np.testing.assert_allclose(agg.self_interaction(thetas), expected, atol=1e-9)

    @pytest.mark.parametrize("cardinalities", CARDINALITY_SETS)
    def test_self_interaction_blocks_match_full_grid(self, cardinalities):
        _, thetas = _random_problem(6, cardinalities)
        agg = SumAggregator()
        expected = agg.self_interaction(thetas)
        block = agg.self_interaction_blocks(thetas)
        k = int(np.prod(cardinalities))
        for start, stop in [(0, k), (0, 1), (1, min(4, k)), (k - 2, k)]:
            indices = np.unravel_index(np.arange(start, stop), cardinalities)
            np.testing.assert_allclose(
                block(indices), expected[start:stop], atol=1e-9
            )

    def test_chunked_assignment_never_builds_full_grid(self):
        # The chunked sweep must get self-interactions from the block
        # closure, not from the O(∏ h_q) flat vector — that allocation is
        # exactly what memory mode exists to avoid.
        X, thetas = _random_problem(13, (3, 4))

        class NoFullGrid(SumAggregator):
            def self_interaction(self, thetas):
                raise AssertionError(
                    "chunked assignment materialized the full grid"
                )

        labels, distances = assign_factored(X, thetas, NoFullGrid(), chunk_size=5)
        ref_labels, ref_distances = assign_to_nearest(
            X, khatri_rao_combine(thetas, "sum")
        )
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_allclose(distances, ref_distances, atol=1e-9)

    @pytest.mark.parametrize("cardinalities", CARDINALITY_SETS)
    def test_factored_shift_matches_materialized(self, cardinalities):
        _, old = _random_problem(8, cardinalities)
        _, new = _random_problem(9, cardinalities)
        agg = SumAggregator()
        expected = float(
            np.sum(
                (khatri_rao_combine(new, agg) - khatri_rao_combine(old, agg)) ** 2
            )
        )
        assert agg.factored_shift(old, new) == pytest.approx(expected, rel=1e-9)

    def test_capability_flags(self):
        assert SumAggregator().supports_factored_assignment
        assert not ProductAggregator().supports_factored_assignment
        with pytest.raises(ValidationError):
            ProductAggregator().cross_gram(np.zeros((2, 2)), [np.zeros((2, 2))])


class TestGroupedRowSum:
    @given(seed=st.integers(0, 500), num_groups=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_matches_scatter_add(self, seed, num_groups):
        rng = np.random.default_rng(seed)
        assignments = rng.integers(0, num_groups, size=50)
        values = rng.normal(size=(50, 4))
        expected = np.zeros((num_groups, 4))
        np.add.at(expected, assignments, values)
        np.testing.assert_allclose(
            grouped_row_sum(assignments, values, num_groups), expected, atol=1e-12
        )


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    @pytest.mark.parametrize("mode", ["time", "memory"])
    @pytest.mark.parametrize("cardinalities", [(4,), (3, 3), (2, 2, 2)])
    def test_fit_matches_materialized(self, aggregator, mode, cardinalities):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        kwargs = dict(
            aggregator=aggregator, mode=mode, n_init=2, max_iter=25, random_state=0
        )
        ref = KhatriRaoKMeans(
            cardinalities, assignment="materialized", **kwargs
        ).fit(X)
        fac = KhatriRaoKMeans(cardinalities, assignment="factored", **kwargs).fit(X)
        np.testing.assert_array_equal(ref.labels_, fac.labels_)
        np.testing.assert_array_equal(ref.set_labels_, fac.set_labels_)
        assert fac.inertia_ == pytest.approx(ref.inertia_, abs=1e-9, rel=1e-9)

    def test_first_iteration_shift_consistent_across_modes(self):
        # Regression: the materialized memory path used to return an infinite
        # shift on iteration 1 (no cached previous protocentroids yet) while
        # the factored path measured a real one, so a loose tol made the two
        # strategies stop at different iterations with different labels.
        X = np.random.default_rng(0).normal(size=(60, 4))
        runs = {
            (assignment, mode): KhatriRaoKMeans(
                (3, 3), mode=mode, assignment=assignment,
                n_init=1, tol=20.0, random_state=0,
            ).fit(X)
            for assignment in ("materialized", "factored")
            for mode in ("time", "memory")
        }
        reference = runs[("materialized", "time")]
        for model in runs.values():
            assert model.n_iter_ == reference.n_iter_
            np.testing.assert_array_equal(model.labels_, reference.labels_)

    def test_fit_with_sample_weights(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3))
        weights = rng.uniform(0.1, 3.0, size=50)
        kwargs = dict(n_init=2, max_iter=25, random_state=1)
        ref = KhatriRaoKMeans((3, 3), assignment="materialized", **kwargs).fit(
            X, sample_weight=weights
        )
        fac = KhatriRaoKMeans((3, 3), assignment="factored", **kwargs).fit(
            X, sample_weight=weights
        )
        np.testing.assert_array_equal(ref.labels_, fac.labels_)
        assert fac.inertia_ == pytest.approx(ref.inertia_, abs=1e-9, rel=1e-9)

    def test_auto_defaults_to_factored_for_sum(self):
        model = KhatriRaoKMeans((2, 2))
        assert model.assignment == "auto"
        assert model.uses_factored_assignment
        assert not KhatriRaoKMeans(
            (2, 2), aggregator="product"
        ).uses_factored_assignment
        assert MiniBatchKhatriRaoKMeans((2, 2)).uses_factored_assignment
        assert not MiniBatchKhatriRaoKMeans(
            (2, 2), assignment="materialized"
        ).uses_factored_assignment

    def test_predict_matches_materialized(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(80, 3))
        X_new = rng.normal(size=(30, 3))
        ref = KhatriRaoKMeans(
            (3, 3), assignment="materialized", n_init=2, random_state=0
        ).fit(X)
        fac = KhatriRaoKMeans(
            (3, 3), assignment="factored", n_init=2, random_state=0
        ).fit(X)
        np.testing.assert_array_equal(ref.predict(X_new), fac.predict(X_new))

    def test_predict_honors_factored_kernel(self, monkeypatch):
        # Out-of-sample assignment must get the same factored speedup as
        # fit(): with a decomposable aggregator, predict() may never
        # materialize the centroid grid.
        rng = np.random.default_rng(8)
        X = rng.normal(size=(60, 3))
        model = KhatriRaoKMeans(
            (3, 3), assignment="factored", n_init=2, random_state=0
        ).fit(X)

        def _no_materialize(*args, **kwargs):
            raise AssertionError("predict materialized the centroid grid")

        import repro.core.kr_kmeans as kr_module

        monkeypatch.setattr(kr_module, "khatri_rao_combine", _no_materialize)
        labels = model.predict(rng.normal(size=(20, 3)))
        assert labels.shape == (20,)

    def test_summary_assign_honors_factored_kernel(self, monkeypatch):
        from repro import summary as summary_module
        from repro.summary import summarize

        rng = np.random.default_rng(9)
        X = rng.normal(size=(60, 3))
        model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
        data_summary = summarize(model)
        X_new = rng.normal(size=(25, 3))
        expected = assign_to_nearest(X_new, data_summary.centroids())[0]

        def _no_materialize(*args, **kwargs):
            raise AssertionError("summary assignment materialized the grid")

        monkeypatch.setattr(
            summary_module, "assign_to_nearest", _no_materialize
        )
        np.testing.assert_array_equal(data_summary.assign(X_new), expected)
        assert np.isfinite(data_summary.inertia(X_new))

    def test_invalid_assignment_rejected(self):
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((2, 2), assignment="bogus")
        with pytest.raises(ValidationError):
            MiniBatchKhatriRaoKMeans((2, 2), assignment="bogus")

    def test_factored_falls_back_for_product(self):
        # Explicit "factored" with the product aggregator must transparently
        # use the materialized path, not crash.
        rng = np.random.default_rng(5)
        X = np.abs(rng.normal(size=(40, 3))) + 0.5
        ref = KhatriRaoKMeans(
            (2, 2), aggregator="product", assignment="materialized",
            n_init=2, random_state=0,
        ).fit(X)
        fac = KhatriRaoKMeans(
            (2, 2), aggregator="product", assignment="factored",
            n_init=2, random_state=0,
        ).fit(X)
        np.testing.assert_array_equal(ref.labels_, fac.labels_)

    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_minibatch_matches_materialized(self, aggregator):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(200, 3))
        kwargs = dict(
            aggregator=aggregator, batch_size=32, max_steps=15, random_state=0
        )
        ref = MiniBatchKhatriRaoKMeans(
            (3, 3), assignment="materialized", **kwargs
        ).fit(X)
        fac = MiniBatchKhatriRaoKMeans((3, 3), assignment="factored", **kwargs).fit(X)
        np.testing.assert_array_equal(ref.labels_, fac.labels_)
        assert fac.inertia_ == pytest.approx(ref.inertia_, abs=1e-9, rel=1e-9)
