"""Unit and property tests for the sum/product aggregators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.linalg import ProductAggregator, SumAggregator, get_aggregator

finite_vectors = arrays(
    np.float64,
    st.integers(1, 8),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestGetAggregator:
    @pytest.mark.parametrize("name", ["sum", "+", "add", "SUM"])
    def test_sum_aliases(self, name):
        assert isinstance(get_aggregator(name), SumAggregator)

    @pytest.mark.parametrize("name", ["product", "*", "x", "prod", "mul"])
    def test_product_aliases(self, name):
        assert isinstance(get_aggregator(name), ProductAggregator)

    def test_instance_passthrough(self):
        agg = SumAggregator()
        assert get_aggregator(agg) is agg

    def test_unknown_raises(self):
        with pytest.raises(ValidationError):
            get_aggregator("minimum")

    def test_non_string_raises(self):
        with pytest.raises(ValidationError):
            get_aggregator(3)


class TestSumAggregator:
    def test_combine_two(self):
        agg = SumAggregator()
        out = agg.combine([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_combine_three(self):
        agg = SumAggregator()
        out = agg.combine([np.ones(3)] * 3)
        np.testing.assert_allclose(out, 3 * np.ones(3))

    def test_combine_empty_raises(self):
        with pytest.raises(ValidationError):
            SumAggregator().combine([])

    def test_identity(self):
        np.testing.assert_array_equal(SumAggregator().identity((2, 3)), np.zeros((2, 3)))

    def test_identity_is_neutral(self):
        agg = SumAggregator()
        v = np.array([1.5, -2.0])
        np.testing.assert_allclose(agg.pair(v, agg.identity(v.shape)), v)

    def test_combine_does_not_mutate_inputs(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        SumAggregator().combine([a, b])
        np.testing.assert_array_equal(a, [1.0, 2.0])

    @given(finite_vectors, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_split_roundtrip(self, vector, parts):
        agg = SumAggregator()
        pieces = agg.split(vector, parts)
        assert len(pieces) == parts
        np.testing.assert_allclose(agg.combine(pieces), vector, atol=1e-9)

    def test_split_invalid_parts(self):
        with pytest.raises(ValidationError):
            SumAggregator().split(np.ones(2), 0)


class TestProductAggregator:
    def test_combine_is_hadamard(self):
        agg = ProductAggregator()
        out = agg.combine([np.array([2.0, 3.0]), np.array([4.0, -1.0])])
        np.testing.assert_allclose(out, [8.0, -3.0])

    def test_identity(self):
        np.testing.assert_array_equal(ProductAggregator().identity(4), np.ones(4))

    def test_identity_is_neutral(self):
        agg = ProductAggregator()
        v = np.array([1.5, -2.0, 0.0])
        np.testing.assert_allclose(agg.pair(v, agg.identity(v.shape)), v)

    @given(finite_vectors, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_split_roundtrip(self, vector, parts):
        agg = ProductAggregator()
        pieces = agg.split(vector, parts)
        assert len(pieces) == parts
        np.testing.assert_allclose(agg.combine(pieces), vector, atol=1e-7, rtol=1e-7)

    def test_split_handles_negative_entries(self):
        agg = ProductAggregator()
        vector = np.array([-8.0, 27.0])
        pieces = agg.split(vector, 3)
        np.testing.assert_allclose(agg.combine(pieces), vector, rtol=1e-9)

    def test_split_handles_zeros(self):
        agg = ProductAggregator()
        pieces = agg.split(np.array([0.0, 1.0]), 2)
        np.testing.assert_allclose(agg.combine(pieces), [0.0, 1.0])

    def test_combine_broadcasts_in_pair(self):
        agg = ProductAggregator()
        out = agg.pair(np.ones((2, 1, 3)), 2.0 * np.ones((1, 4, 3)))
        assert out.shape == (2, 4, 3)
        assert np.all(out == 2.0)
