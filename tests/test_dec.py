"""Tests for the DEC baseline and its Khatri-Rao variant."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.deep import DEC, IDEC, KhatriRaoDEC
from repro.metrics import unsupervised_clustering_accuracy as acc

FAST = dict(hidden_dims=(32, 8), pretrain_epochs=4, clustering_epochs=4,
            batch_size=128, kmeans_n_init=3)


@pytest.fixture(scope="module")
def deep_blobs():
    return make_blobs(300, n_features=16, n_clusters=4, cluster_std=0.5,
                      random_state=0)


class TestDEC:
    def test_reconstruction_weight_is_zero(self):
        model = DEC(3, **FAST)
        assert model.w_rec == 0.0

    def test_fit_recovers_blobs(self, deep_blobs):
        X, y = deep_blobs
        model = DEC(4, random_state=0, **FAST).fit(X)
        assert acc(y, model.labels_) > 0.85

    def test_differs_from_idec_training(self, deep_blobs):
        X, _ = deep_blobs
        dec = DEC(4, random_state=0, **FAST).fit(X)
        idec = IDEC(4, random_state=0, **FAST).fit(X)
        # Same pretraining, but the clustering-phase objectives differ, so
        # the learned centroids drift apart.
        assert not np.allclose(dec.centroids(), idec.centroids())


class TestKhatriRaoDEC:
    def test_fit_and_compression(self, deep_blobs):
        X, y = deep_blobs
        model = KhatriRaoDEC((2, 2), random_state=0, **FAST).fit(X)
        assert model.w_rec == 0.0
        assert model.n_clusters == 4
        assert acc(y, model.labels_) > 0.6
        assert model.result().parameter_ratio < 1.0

    def test_loss_name(self):
        assert KhatriRaoDEC((2, 2), **FAST).loss_name == "dec"
