"""Tests for the reporting helpers and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import make_blobs
from repro.reporting import compare_methods, evaluate_summary, render_comparison


class TestReporting:
    def test_evaluate_summary_panel(self):
        X, y = make_blobs(200, n_clusters=4, cluster_std=0.1, random_state=0)
        from repro import KMeans

        model = KMeans(4, n_init=5, random_state=0).fit(X)
        panel = evaluate_summary(X, y, model.labels_, model.cluster_centers_)
        assert set(panel) == {"ari", "acc", "nmi", "inertia"}
        assert panel["acc"] > 0.9
        assert panel["inertia"] == pytest.approx(model.inertia_)

    def test_compare_methods_order_and_budget(self):
        X, y = make_blobs(300, n_clusters=9, random_state=1)
        results = compare_methods(X, y, 9, n_init=3, random_state=0)
        assert len(results) == 4
        # First two are the KR variants at (3, 3).
        assert results[0].method.startswith("Khatri-Rao-k-Means-+")
        assert results[1].method.startswith("Khatri-Rao-k-Means-x")
        # Equal-parameter baseline, then the optimistic bound.
        assert results[2].parameters == results[0].parameters
        assert results[3].parameters > results[0].parameters

    def test_compare_methods_prime_k_fallback(self):
        X, y = make_blobs(200, n_clusters=7, random_state=2)
        results = compare_methods(X, y, 7, n_init=2, random_state=0)
        # 7 is prime: the protocol falls back to factoring 8 -> (4, 2).
        assert "(4, 2)" in results[0].method

    def test_render_comparison(self):
        X, y = make_blobs(200, n_clusters=4, random_state=3)
        block = render_comparison(compare_methods(X, y, 4, n_init=2,
                                                  random_state=0))
        assert "ARI" in block and "params*" in block
        assert len(block.splitlines()) == 7  # header, rule, 4 rows, footnote


class TestCLI:
    def test_parser_version_and_commands(self):
        parser = build_parser()
        for command in ("datasets", "fit", "summary", "quantize", "serve"):
            args = parser.parse_args(
                [command] + (["--dataset", "r15"] if command == "fit" else [])
                + (["x.npz"] if command == "summary" else [])
                + (["--model", "m=x.npz"] if command == "serve" else [])
            )
            assert args.command == command

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "stickfigures" in out

    def test_fit_command_with_save(self, tmp_path, capsys):
        target = tmp_path / "summary.npz"
        code = main([
            "fit", "--dataset", "r15", "--scale", "0.3", "--n-init", "2",
            "--cardinalities", "5", "3", "--save", str(target),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Khatri-Rao-k-Means-+" in out
        assert target.exists()

        assert main(["summary", str(target)]) == 0
        out = capsys.readouterr().out
        assert "15 clusters" in out

    def test_quantize_command(self, capsys):
        assert main(["quantize", "--colors", "3", "3"]) == 0
        out = capsys.readouterr().out
        assert "khatri-rao-k-means" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIServe:
    """The serve command's parser defaults and server construction.

    serve_forever itself is exercised end-to-end by the smoke harness
    (python -m repro.serving._smoke) and the CI serving-smoke step; here
    we build the exact CLI-shaped server without entering the loop.
    """

    @pytest.fixture
    def saved_summary(self, tmp_path):
        from repro import KhatriRaoKMeans, summarize

        X, _ = make_blobs(200, n_clusters=9, random_state=0)
        model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
        return summarize(model).save(tmp_path / "m.npz")

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m=x.npz"])
        assert args.dtype == "float32"          # float32 is the hot path
        assert args.window_ms == pytest.approx(5.0)
        assert args.port == 8080
        assert args.rate_limit is None

    def test_build_server_from_args(self, saved_summary):
        from repro.cli import build_server_from_args

        args = build_parser().parse_args([
            "serve", "--model", f"demo={saved_summary}",
            "--port", "0", "--window-ms", "2", "--rate-limit", "100",
            "--quiet",
        ])
        server = build_server_from_args(args)
        try:
            assert server.registry.get("demo").dtype == np.float32
            assert server.batcher.window_s == pytest.approx(0.002)
            assert server.bucket is not None
            assert server.log_requests is False
            assert server.server_address[1] > 0
        finally:
            server.stop()

    def test_build_server_native_dtype(self, saved_summary):
        from repro.cli import build_server_from_args

        args = build_parser().parse_args([
            "serve", "--model", f"demo={saved_summary}",
            "--dtype", "native", "--port", "0", "--quiet",
        ])
        server = build_server_from_args(args)
        try:
            assert server.registry.get("demo").dtype == np.float64
        finally:
            server.stop()

    def test_bad_model_spec_rejected(self, saved_summary):
        from repro.cli import build_server_from_args
        from repro.exceptions import ValidationError

        args = build_parser().parse_args([
            "serve", "--model", "just-a-name", "--port", "0",
        ])
        with pytest.raises(ValidationError, match="NAME=PATH"):
            build_server_from_args(args)

    def test_malformed_artifact_refused_at_startup(self, tmp_path):
        from repro.cli import build_server_from_args
        from repro.exceptions import SummaryFormatError

        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"garbage")
        args = build_parser().parse_args([
            "serve", "--model", f"bad={bad}", "--port", "0",
        ])
        with pytest.raises(SummaryFormatError):
            build_server_from_args(args)
