"""Supervised parallel restarts: determinism, retries, timeouts, tolerance.

The executor's contract is that supervision is *invisible* in the result:
``n_jobs=1`` and ``n_jobs=8`` consume identical randomness and select the
same winner, retries draw deterministic fresh streams keyed by the failed
restart (not by wall-clock), and every permanent failure surfaces as a
typed :class:`~repro.exceptions.RestartFailedError` naming the dead seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RestartFailedError, ValidationError
from repro.faults import InjectedKernelError, RestartFaultPlan, WorkerKill
from repro.runtime import ExecutorConfig, resolve_executor, run_restarts


def toy_run(gen: np.random.Generator, seed_index: int):
    """A deterministic stand-in for one Lloyd restart."""
    draws = gen.normal(size=8)
    inertia = float(np.sum(draws**2))
    return inertia, {"seed_index": seed_index, "draws": draws}


def _outcome_signature(report):
    return [
        (o.seed_index, o.inertia, o.payload["draws"].tolist())
        for o in report.outcomes
    ]


# ------------------------------------------------------------ determinism
@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_parallel_identical_to_serial(n_jobs):
    serial = run_restarts(toy_run, 6, np.random.default_rng(0),
                          ExecutorConfig(1))
    parallel = run_restarts(toy_run, 6, np.random.default_rng(0),
                            ExecutorConfig(n_jobs))
    assert _outcome_signature(parallel) == _outcome_signature(serial)
    assert parallel.best().seed_index == serial.best().seed_index
    assert parallel.best().inertia == serial.best().inertia


def test_selection_breaks_ties_by_seed_index():
    def tied(gen, seed_index):
        gen.normal()  # still consume the stream
        return 1.0, seed_index

    report = run_restarts(tied, 5, np.random.default_rng(0), ExecutorConfig(4))
    assert report.best().seed_index == 0


def test_retry_streams_are_deterministic():
    """A retried restart lands on the same model no matter the width."""
    reports = []
    for n_jobs in (1, 4):
        plan = RestartFaultPlan({(2, 0): "raise"})
        reports.append(run_restarts(
            toy_run, 5, np.random.default_rng(3),
            ExecutorConfig(n_jobs, max_retries=1, fault_hook=plan),
        ))
        assert plan.fired == [(2, 0, "raise")]
    assert _outcome_signature(reports[0]) == _outcome_signature(reports[1])
    retried = [o for o in reports[0].outcomes if o.seed_index == 2][0]
    assert retried.attempts == 2
    clean = run_restarts(toy_run, 5, np.random.default_rng(3),
                         ExecutorConfig(1))
    # The retry consumed a fresh spawned stream, not restart 2's original.
    clean_2 = [o for o in clean.outcomes if o.seed_index == 2][0]
    assert retried.inertia != clean_2.inertia
    # ... and every other restart is untouched by the failure.
    assert [o.inertia for o in reports[0].outcomes if o.seed_index != 2] == \
        [o.inertia for o in clean.outcomes if o.seed_index != 2]


# ------------------------------------------------------- failure handling
def test_worker_kill_escapes_except_exception_but_is_retried():
    plan = RestartFaultPlan({(1, 0): "kill"})
    report = run_restarts(
        toy_run, 3, np.random.default_rng(1),
        ExecutorConfig(2, max_retries=1, fault_hook=plan),
    )
    assert len(report.outcomes) == 3 and not report.failures
    assert [o.attempts for o in report.outcomes] == [1, 2, 1]


def test_exhausted_retries_raise_typed_error():
    plan = RestartFaultPlan({(1, 0): "kill", (1, 1): "raise"})
    with pytest.raises(RestartFailedError) as excinfo:
        run_restarts(
            toy_run, 3, np.random.default_rng(1),
            ExecutorConfig(2, max_retries=1, fault_hook=plan),
        )
    assert excinfo.value.seeds == (1,)
    assert isinstance(excinfo.value.causes[0], InjectedKernelError)


def test_max_failures_tolerates_dead_restarts():
    plan = RestartFaultPlan({(1, 0): "raise", (1, 1): "raise"})
    report = run_restarts(
        toy_run, 4, np.random.default_rng(1),
        ExecutorConfig(2, max_retries=1, max_failures=1, fault_hook=plan),
    )
    assert [o.seed_index for o in report.outcomes] == [0, 2, 3]
    assert len(report.failures) == 1
    assert report.failures[0].seed_index == 1
    assert report.failures[0].attempts == 2
    # The survivors still selected deterministically.
    clean = run_restarts(toy_run, 4, np.random.default_rng(1),
                         ExecutorConfig(1))
    surviving = {o.seed_index: o.inertia for o in clean.outcomes
                 if o.seed_index != 1}
    assert {o.seed_index: o.inertia for o in report.outcomes} == surviving


def test_timeout_abandons_straggler_and_retries():
    plan = RestartFaultPlan({(0, 0): ("sleep", 5.0)})
    report = run_restarts(
        toy_run, 3, np.random.default_rng(7),
        ExecutorConfig(2, timeout=0.2, max_retries=1, fault_hook=plan),
    )
    assert len(report.outcomes) == 3 and not report.failures
    straggler = [o for o in report.outcomes if o.seed_index == 0][0]
    assert straggler.attempts == 2


def test_timeout_without_retry_is_a_typed_failure():
    plan = RestartFaultPlan({(0, 0): ("sleep", 5.0)})
    with pytest.raises(RestartFailedError) as excinfo:
        run_restarts(
            toy_run, 2, np.random.default_rng(7),
            ExecutorConfig(2, timeout=0.2, max_retries=0, fault_hook=plan),
        )
    assert excinfo.value.seeds == (0,)
    assert isinstance(excinfo.value.causes[0], TimeoutError)


def test_keyboard_interrupt_keeps_completed_outcomes():
    state = {"runs": 0}

    def interrupting(gen, seed_index):
        state["runs"] += 1
        if seed_index == 2:
            raise KeyboardInterrupt
        return toy_run(gen, seed_index)

    report = run_restarts(interrupting, 4, np.random.default_rng(0),
                          ExecutorConfig(1))
    assert report.interrupted
    assert [o.seed_index for o in report.outcomes] == [0, 1]
    assert report.best().seed_index in (0, 1)


# ------------------------------------------------------------- validation
def test_resolve_executor_contract():
    assert resolve_executor(None) is None
    config = resolve_executor(4)
    assert isinstance(config, ExecutorConfig) and config.n_jobs == 4
    assert resolve_executor(config) is config
    with pytest.raises(ValidationError):
        resolve_executor(True)
    with pytest.raises(ValidationError):
        resolve_executor("four")
    with pytest.raises(ValidationError):
        ExecutorConfig(0)
    with pytest.raises(ValidationError):
        ExecutorConfig(1, timeout=0.0)
    with pytest.raises(ValidationError):
        ExecutorConfig(1, max_retries=-1)
    with pytest.raises(ValidationError):
        run_restarts(toy_run, 0, np.random.default_rng(0))
