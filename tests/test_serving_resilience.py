"""Chaos suite for the serving resilience layer (PR 7).

The invariant under test: **every submitted ticket resolves** — with a
result or a typed, retriable error — under injected kernel faults,
worker kills, hung kernels, mid-flight evictions and expired deadlines.
Deterministic pieces (breakers, health, deadlines, backpressure) are
driven with injectable clocks and explicit fault schedules; the soak
test at the end runs a seeded random schedule against a live worker +
watchdog and accounts for every outcome.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import KhatriRaoKMeans, summarize
from repro.datasets import make_blobs
from repro.exceptions import (
    BatcherStoppedError,
    CircuitOpenError,
    DeadlineExceededError,
    ModelNotFoundError,
    OverloadedError,
    WorkerCrashedError,
)
from repro.serving import (
    BreakerBoard,
    CircuitBreaker,
    HealthTracker,
    MicroBatcher,
    ModelRegistry,
    ServingMetrics,
    Watchdog,
    create_server,
)
from repro.serving.faults import (
    FaultInjector,
    FaultSchedule,
    InjectedKernelError,
)

# Injected WorkerKill faults die on the worker thread *by design* — that
# is the scenario under test, not an accident to warn about.
pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


@pytest.fixture(scope="module")
def data_and_summary():
    X, _ = make_blobs(300, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
    return X, summarize(model)


@pytest.fixture
def registry(data_and_summary):
    _, summary = data_and_summary
    registry = ModelRegistry()
    registry.register("m", summary)
    return registry


class FakeClock:
    """An injectable monotonic clock tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_expired_ticket_is_shed_before_the_kernel_runs(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, start=False)
        ticket = batcher.submit(
            "assign", "m", X[:4], deadline=time.monotonic() - 0.01
        )
        batcher.drain()
        with pytest.raises(DeadlineExceededError, match="shed it at coalesce"):
            ticket.result()
        assert batcher.metrics.counter("deadline_expired_total") == 1
        # The kernel never ran for nobody.
        assert batcher.metrics.counter("batches_total") == 0

    def test_live_batchmates_survive_an_expired_ticket(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, start=False)
        live = batcher.submit("assign", "m", X[:4])
        dead = batcher.submit(
            "assign", "m", X[4:8], deadline=time.monotonic() - 0.01
        )
        batcher.drain()
        assert live.result()["labels"].shape == (4,)
        with pytest.raises(DeadlineExceededError):
            dead.result()
        assert batcher.metrics.counter("batched_requests_total") == 1

    def test_result_wait_maps_deadline_expiry_to_typed_504_error(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, start=False)  # nobody will serve it
        ticket = batcher.submit(
            "assign", "m", X[:4], deadline=time.monotonic() + 0.02
        )
        with pytest.raises(DeadlineExceededError, match="deadline expired"):
            ticket.result()
        # Giving up cancelled the ticket: a later drain sheds the work.
        batcher.drain()
        assert batcher.metrics.counter("deadline_expired_total") == 1
        assert batcher.metrics.counter("batches_total") == 0

    def test_result_timeout_without_deadline_cancels_too(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, start=False)
        ticket = batcher.submit("assign", "m", X[:4])
        with pytest.raises(DeadlineExceededError, match="did not complete"):
            ticket.result(timeout=0.02)
        batcher.drain()
        assert batcher.metrics.counter("batches_total") == 0

    def test_first_wins_resolution_never_clobbers(self):
        from repro.serving import Ticket

        ticket = Ticket("assign", 1, 0.0)
        ticket._resolve({"labels": "first"})
        ticket._fail(RuntimeError("late verdict"))
        ticket._resolve({"labels": "later"})
        assert ticket.result() == {"labels": "first"}


# ----------------------------------------------------------------- breakers
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(3, 10.0)
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(0.0) is False
        breaker.record_success()  # any success resets the streak
        assert breaker.record_failure(1.0) is False
        assert breaker.record_failure(1.0) is False
        assert breaker.record_failure(1.0) is True
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_open_rejects_with_remaining_timeout(self):
        breaker = CircuitBreaker(1, 10.0)
        breaker.record_failure(0.0)
        admitted, retry_after = breaker.allow(4.0)
        assert admitted is False
        assert retry_after == pytest.approx(6.0)

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker(1, 10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0) == (True, 0.0)  # the probe
        admitted, retry_after = breaker.allow(10.5)
        assert admitted is False and retry_after > 0
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow(10.6) == (True, 0.0)

    def test_failed_probe_reopens_for_a_full_timeout(self):
        breaker = CircuitBreaker(1, 10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)[0] is True
        assert breaker.record_failure(10.0) is True  # probe failed
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.allow(15.0)[0] is False
        assert breaker.allow(20.0)[0] is True  # next probe

    def test_lost_probe_does_not_wedge_the_breaker(self):
        # A probe whose batch is shed (deadline, eviction) never reports
        # back; the breaker must eventually re-admit a probe.
        breaker = CircuitBreaker(1, 10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)[0] is True  # probe admitted ... and lost
        assert breaker.allow(15.0)[0] is False
        assert breaker.allow(20.0)[0] is True  # replacement probe


class TestBreakerBoard:
    def test_check_raises_typed_retriable_error_and_counts(self):
        clock = FakeClock()
        metrics = ServingMetrics()
        board = BreakerBoard(
            failure_threshold=2, reset_timeout_s=5.0,
            metrics=metrics, clock=clock,
        )
        key = ("m", "assign")
        board.check(key)  # closed: no-op
        board.record_failure(key)
        board.record_failure(key)
        assert metrics.counter("breaker_open_total") == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            board.check(key)
        assert excinfo.value.retry_after == pytest.approx(5.0)
        assert metrics.counter("breaker_fastfail_total") == 1
        # Other keys are unaffected.
        board.check(("m", "inertia"))
        board.check(("other", "assign"))
        assert board.open_keys() == [
            {"model": "m", "op": "assign", "state": "open", "retry_after": 5.0}
        ]

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        board = BreakerBoard(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        key = ("m", "assign")
        board.record_failure(key)
        clock.advance(5.0)
        board.check(key)  # the probe is admitted
        board.record_success(key)
        board.check(key)  # closed again
        assert board.open_keys() == []

    def test_reset_forgets_a_models_breakers(self):
        board = BreakerBoard(
            failure_threshold=1, reset_timeout_s=5.0, clock=FakeClock()
        )
        board.record_failure(("m", "assign"))
        board.record_failure(("other", "assign"))
        board.reset("m")
        board.check(("m", "assign"))  # clean slate
        with pytest.raises(CircuitOpenError):
            board.check(("other", "assign"))


class TestBreakerIntegration:
    def test_poisoned_model_opens_while_healthy_neighbor_serves(
        self, data_and_summary
    ):
        X, summary = data_and_summary
        registry = ModelRegistry()
        registry.register("good", summary)
        registry.register("bad", summary)
        batcher = MicroBatcher(
            registry, start=False, breaker_failures=3, breaker_reset_s=30.0
        )
        clock = FakeClock(batcher.breakers._clock())
        batcher.breakers._clock = clock
        injector = FaultInjector(
            batcher, FaultSchedule.always("raise", model="bad")
        ).install()

        for _ in range(3):
            ticket = batcher.submit("assign", "bad", X[:4])
            batcher.drain()
            with pytest.raises(InjectedKernelError):
                ticket.result()
        # The circuit is now open: submits fast-fail without queuing ...
        with pytest.raises(CircuitOpenError) as excinfo:
            batcher.submit("assign", "bad", X[:4])
        assert excinfo.value.retry_after > 0
        assert batcher.metrics.counter("breaker_open_total") == 1
        assert batcher.metrics.counter("breaker_fastfail_total") == 1
        # ... while the healthy model keeps serving.
        ticket = batcher.submit("assign", "good", X[:4])
        batcher.drain()
        assert ticket.result()["labels"].shape == (4,)

        # After the reset timeout one probe is admitted; the fault is
        # gone, so its success closes the circuit for everyone.
        clock.advance(30.0)
        injector.uninstall()
        probe = batcher.submit("assign", "bad", X[:4])
        batcher.drain()
        assert probe.result()["labels"].shape == (4,)
        batcher.submit("assign", "bad", X[:4])  # admitted: closed again
        batcher.drain()
        assert batcher.breakers.open_keys() == []

    def test_reregistering_a_model_resets_its_breakers(
        self, data_and_summary, registry
    ):
        X, summary = data_and_summary
        batcher = MicroBatcher(registry, start=False, breaker_failures=1)
        with FaultInjector(batcher, FaultSchedule.from_spec({0: "raise"})):
            ticket = batcher.submit("assign", "m", X[:4])
            batcher.drain()
            with pytest.raises(InjectedKernelError):
                ticket.result()
        with pytest.raises(CircuitOpenError):
            batcher.submit("assign", "m", X[:4])
        registry.register("m", summary)  # a fresh artifact: clean slate
        ticket = batcher.submit("assign", "m", X[:4])
        batcher.drain()
        assert ticket.result()["labels"].shape == (4,)


# ----------------------------------------------------------------- watchdog
class TestWatchdog:
    def test_dead_worker_is_restarted_and_inflight_tickets_fail_typed(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=0.0, breaker_failures=None)
        try:
            FaultInjector(
                batcher, FaultSchedule.from_spec({0: "kill"})
            ).install()
            ticket = batcher.submit("assign", "m", X[:4])
            assert wait_until(lambda: not batcher.worker_alive), (
                "the injected WorkerKill should have killed the worker"
            )
            health = HealthTracker(recovery_s=5.0, clock=(clock := FakeClock()))
            watchdog = Watchdog(batcher, health=health, metrics=batcher.metrics)
            assert watchdog.check() == "restarted"
            with pytest.raises(WorkerCrashedError, match="restarted"):
                ticket.result(timeout=1.0)
            assert batcher.metrics.counter("worker_restarts_total") == 1
            assert batcher.worker_alive
            # Degraded for the recovery window, then ok again.
            assert health.state == "degraded"
            clock.advance(5.0)
            assert health.state == "ok"
            # The revived worker serves (fault schedule is spent).
            again = batcher.submit("assign", "m", X[:4])
            assert again.result(timeout=5.0)["labels"].shape == (4,)
            assert watchdog.check() is None  # healthy: nothing to do
        finally:
            batcher.stop()

    def test_hung_worker_fails_waiters_without_a_second_worker(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=0.0, breaker_failures=None)
        try:
            FaultInjector(
                batcher, FaultSchedule.from_spec({0: ("sleep", 0.4)})
            ).install()
            ticket = batcher.submit("assign", "m", X[:4])
            assert wait_until(
                lambda: (batcher.inflight_age() or 0.0) > 0.08
            )
            watchdog = Watchdog(
                batcher, hang_timeout_s=0.05, metrics=batcher.metrics
            )
            assert watchdog.check() == "hung"
            with pytest.raises(WorkerCrashedError, match="hang_timeout"):
                ticket.result(timeout=1.0)
            assert batcher.metrics.counter("worker_hangs_total") == 1
            # No second worker was started (Python cannot kill a thread;
            # one kernel call at a time is the subsystem's invariant) ...
            assert batcher.metrics.counter("worker_restarts_total") == 0
            assert batcher.worker_alive
            # ... and when the stuck call returns, first-wins resolution
            # discards its verdict and the worker resumes serving.
            again = batcher.submit("assign", "m", X[:4])
            assert again.result(timeout=5.0)["labels"].shape == (4,)
        finally:
            batcher.stop()

    def test_watchdog_leaves_a_stopped_batcher_alone(self, registry):
        batcher = MicroBatcher(registry, start=False)
        assert Watchdog(batcher, metrics=batcher.metrics).check() is None


# ------------------------------------------------------------- backpressure
class TestBackpressure:
    def test_queue_depth_cap_sheds_with_retry_hint(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, start=False, max_queue_requests=2)
        first = batcher.submit("assign", "m", X[:4])
        batcher.submit("assign", "m", X[4:8])
        with pytest.raises(OverloadedError) as excinfo:
            batcher.submit("assign", "m", X[8:12])
        assert excinfo.value.retry_after > 0
        assert batcher.metrics.counter("shed_overload_total") == 1
        # Other keys have their own queues.
        batcher.submit("inertia", "m", X[:4])
        batcher.drain()
        assert first.result()["labels"].shape == (4,)
        # Draining made room again.
        batcher.submit("assign", "m", X[:4])

    def test_pending_rows_cap_admits_one_oversize_request(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, start=False, max_pending_rows=10)
        # A single request larger than the cap is admitted into an empty
        # batcher (the never-reject rule) ...
        big = batcher.submit("assign", "m", X[:32])
        assert batcher.pending_rows == 32
        # ... but the backlog is now over the cap, so the next sheds.
        with pytest.raises(OverloadedError):
            batcher.submit("assign", "m", X[:2])
        assert batcher.metrics.counter("shed_overload_total") == 1
        batcher.drain()
        assert batcher.pending_rows == 0
        assert big.result()["labels"].shape == (32,)


# ---------------------------------------------------- eviction and shutdown
class TestEvictionMidFlight:
    def test_submitted_then_evicted_fails_typed_without_breaker_blame(
        self, data_and_summary, registry
    ):
        X, summary = data_and_summary
        batcher = MicroBatcher(registry, start=False, breaker_failures=1)
        with FaultInjector(batcher, FaultSchedule.from_spec({0: "evict"})):
            ticket = batcher.submit("assign", "m", X[:4])
            batcher.drain()
        with pytest.raises(ModelNotFoundError):
            ticket.result()
        # The model is gone, not broken: no breaker opened, and a
        # re-registered model serves immediately.
        assert batcher.metrics.counter("breaker_open_total") == 0
        with pytest.raises(ModelNotFoundError):
            batcher.submit("assign", "m", X[:4])
        registry.register("m", summary)
        ticket = batcher.submit("assign", "m", X[:4])
        batcher.drain()
        assert ticket.result()["labels"].shape == (4,)


class TestGracefulStop:
    def test_drain_deadline_fails_stragglers_instead_of_hanging(
        self, data_and_summary, registry
    ):
        X, _ = data_and_summary
        batcher = MicroBatcher(registry, window_s=0.0, breaker_failures=None)
        FaultInjector(
            batcher, FaultSchedule.always("sleep", seconds=0.5)
        ).install()
        inflight = batcher.submit("assign", "m", X[:4])
        assert wait_until(lambda: batcher.inflight_age() is not None)
        queued = batcher.submit("assign", "m", X[4:8])
        started = time.monotonic()
        batcher.stop(flush=True, timeout=0.05)
        assert time.monotonic() - started < 2.0, "stop() must terminate"
        with pytest.raises(BatcherStoppedError, match="draining deadline"):
            inflight.result(timeout=1.0)
        with pytest.raises(BatcherStoppedError, match="draining deadline"):
            queued.result(timeout=1.0)
        with pytest.raises(BatcherStoppedError):
            batcher.submit("assign", "m", X[:4])


# --------------------------------------------------------------- chaos soak
class TestChaosSoak:
    def test_random_schedules_are_deterministic(self):
        first = FaultSchedule.random(7, 50)
        second = FaultSchedule.random(7, 50)
        assert {i: repr(f) for i, f in first.faults.items()} == {
            i: repr(f) for i, f in second.faults.items()
        }
        assert first.faults, "seed 7 should schedule at least one fault"

    def test_every_ticket_resolves_under_chaos(self, data_and_summary):
        X, summary = data_and_summary
        registry = ModelRegistry()
        registry.register("a", summary)
        registry.register("b", summary)
        batcher = MicroBatcher(
            registry,
            window_s=0.001,
            breaker_failures=3,
            breaker_reset_s=0.1,
        )
        watchdog = Watchdog(
            batcher,
            interval_s=0.02,
            hang_timeout_s=1.0,
            health=HealthTracker(recovery_s=0.5),
            metrics=batcher.metrics,
        ).start()
        injector = FaultInjector(
            batcher,
            FaultSchedule.from_spec({0: "raise"}),  # chaos fires at least once
            FaultSchedule.random(
                seed=7, n_calls=400,
                p_raise=0.2, p_sleep=0.1, p_kill=0.08, sleep_s=0.02,
            ),
        ).install()

        expected = (
            InjectedKernelError,
            WorkerCrashedError,
            DeadlineExceededError,
            CircuitOpenError,
            OverloadedError,
            ModelNotFoundError,
            BatcherStoppedError,
        )
        outcomes = []
        lock = threading.Lock()

        def client(worker_index):
            for j in range(12):
                i = worker_index * 12 + j
                model = ("a", "b")[i % 2]
                op = "inertia" if i % 3 == 0 else "assign"
                deadline = (
                    time.monotonic() + 0.25 if i % 4 == 0 else None
                )
                started = time.monotonic()
                try:
                    ticket = batcher.submit(
                        op, model, X[i % 20:i % 20 + 5], deadline=deadline
                    )
                    ticket.result(timeout=10.0)
                    outcome = ("ok", None)
                except expected as exc:
                    stalled = (
                        deadline is None
                        and isinstance(exc, DeadlineExceededError)
                        and time.monotonic() - started > 9.0
                    )
                    outcome = (
                        ("stalled" if stalled else "typed"),
                        type(exc).__name__,
                    )
                with lock:
                    outcomes.append(outcome)

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(8)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(t.is_alive() for t in threads), (
                "a client thread hung: some ticket never resolved"
            )

            # Every one of the 96 submissions is accounted for, none hit
            # the 10 s backstop, and chaos actually happened.
            assert len(outcomes) == 96
            assert not [o for o in outcomes if o[0] == "stalled"], outcomes
            assert injector.fired, "no fault fired — the soak tested nothing"
            served = sum(1 for o in outcomes if o[0] == "ok")
            assert served >= 1, outcomes

            # If a kill fired, the watchdog must have revived the worker.
            if any(kind == "kill" for *_, kind in injector.fired):
                assert wait_until(
                    lambda: batcher.metrics.counter("worker_restarts_total")
                    >= 1,
                    timeout=2.0,
                )
            assert watchdog.health.state in ("ok", "degraded")

            # The system comes back: disarm chaos, reset the breakers via
            # re-registration, and both models serve again.
            injector.uninstall()
            registry.register("a", summary)
            registry.register("b", summary)
            for model in ("a", "b"):
                ticket = batcher.submit("assign", model, X[:5])
                assert ticket.result(timeout=10.0)["labels"].shape == (5,)
        finally:
            watchdog.stop()
            batcher.stop(flush=True, timeout=5.0)


# ------------------------------------------------------------ HTTP surface
@pytest.fixture
def server(data_and_summary):
    _, summary = data_and_summary
    registry = ModelRegistry()
    registry.register("blobs", summary)
    server = create_server(
        registry,
        window_s=0.05,  # wide enough that a 1 ms deadline expires first
        log_requests=False,
        breaker_failures=3,
        breaker_reset_s=0.2,
        health_recovery_s=60.0,
    ).start()
    yield server
    server.stop()


def _get(server, path):
    req = urllib.request.Request(server.url + path)
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, dict(resp.headers), json.load(resp)


def _post_error(server, path, payload, headers=None):
    req = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=10)
    err = excinfo.value
    return err.code, dict(err.headers), json.load(err)


class TestHttpFailureSurface:
    def test_expired_deadline_header_maps_to_504(
        self, server, data_and_summary
    ):
        X, _ = data_and_summary
        status, _, body = _post_error(
            server, "/v1/models/blobs/assign", {"rows": X[:4].tolist()},
            headers={"X-Deadline-Ms": "1"},
        )
        assert status == 504
        assert body["error"]["type"] == "DeadlineExceededError"
        # The batcher sheds the dead work at coalesce time.
        assert wait_until(
            lambda: server.metrics.counter("deadline_expired_total") >= 1
        )

    def test_malformed_deadline_header_is_a_400(
        self, server, data_and_summary
    ):
        X, _ = data_and_summary
        for bad in ("soon", "-5", "nan"):
            status, _, body = _post_error(
                server, "/v1/models/blobs/assign", {"rows": X[:4].tolist()},
                headers={"X-Deadline-Ms": bad},
            )
            assert status == 400, bad
            assert body["error"]["type"] == "ValidationError"

    def test_open_breaker_fast_fails_503_with_retry_after(
        self, server, data_and_summary
    ):
        X, _ = data_and_summary
        for _ in range(3):
            server.batcher.breakers.record_failure(("blobs", "assign"))
        status, headers, body = _post_error(
            server, "/v1/models/blobs/assign", {"rows": X[:4].tolist()}
        )
        assert status == 503
        assert body["error"]["type"] == "CircuitOpenError"
        assert body["error"]["retry_after"] > 0
        assert float(headers["Retry-After"]) > 0
        # /healthz names the open circuit so operators see *why*.
        _, _, health = _get(server, "/healthz")
        assert health["open_breakers"] == [
            {"model": "blobs", "op": "assign", "state": "open",
             "retry_after": pytest.approx(0.2, abs=0.2)}
        ]
        # After the reset timeout the half-open probe (a real request)
        # succeeds and closes the circuit end to end.
        time.sleep(0.25)
        req = urllib.request.Request(
            server.url + "/v1/models/blobs/assign",
            data=json.dumps({"rows": X[:4].tolist()}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.status == 200
        _, _, health = _get(server, "/healthz")
        assert health["open_breakers"] == []

    def test_healthz_reports_degraded_and_incidents(self, server):
        server.health.mark_degraded("worker restarted (1 in-flight failed)")
        status, _, body = _get(server, "/healthz")
        assert status == 200  # degraded still serves; only draining is 503
        assert body["status"] == "degraded"
        assert body["last_incident"] == "worker restarted (1 in-flight failed)"
        assert body["worker_restarts"] == 0

    def test_metrics_expose_the_resilience_counters(
        self, server, data_and_summary
    ):
        X, _ = data_and_summary
        for _ in range(3):
            server.batcher.breakers.record_failure(("blobs", "inertia"))
        _post_error(
            server, "/v1/models/blobs/inertia", {"rows": X[:4].tolist()}
        )
        _post_error(
            server, "/v1/models/blobs/assign", {"rows": X[:4].tolist()},
            headers={"X-Deadline-Ms": "1"},
        )
        assert wait_until(
            lambda: server.metrics.counter("deadline_expired_total") >= 1
        )
        _, _, metrics = _get(server, "/metrics")
        counters = metrics["counters"]
        assert counters["breaker_open_total"] == 1
        assert counters["breaker_fastfail_total"] == 1
        assert counters["deadline_expired_total"] >= 1
        assert counters["errors_503_total"] == 1
        assert counters["errors_504_total"] == 1


# ----------------------------------------------------------------- health
class TestHealthTracker:
    def test_degraded_is_sticky_for_the_recovery_window(self):
        clock = FakeClock()
        health = HealthTracker(recovery_s=5.0, clock=clock)
        assert health.state == "ok"
        health.mark_degraded("worker restarted")
        assert health.state == "degraded"
        clock.advance(4.9)
        assert health.state == "degraded"
        clock.advance(0.2)
        assert health.state == "ok"
        snapshot = health.snapshot()
        assert snapshot == {
            "state": "ok",
            "incidents": 1,
            "last_incident": "worker restarted",
        }

    def test_draining_is_terminal(self):
        clock = FakeClock()
        health = HealthTracker(recovery_s=1.0, clock=clock)
        health.start_draining()
        assert health.state == "draining"
        health.mark_degraded("too late")
        clock.advance(100.0)
        assert health.state == "draining"


# -------------------------------------------------------------- CLI wiring
class TestCliWiring:
    def test_serve_flags_reach_the_server(self, data_and_summary, tmp_path):
        from repro.cli import build_parser, build_server_from_args

        _, summary = data_and_summary
        path = summary.save(tmp_path / "m.npz")
        args = build_parser().parse_args([
            "serve", "--model", f"m={path}", "--port", "0",
            "--request-deadline-ms", "250", "--drain-timeout", "1.5",
            "--breaker-failures", "7", "--breaker-reset-s", "2.5",
            "--max-queue-requests", "9", "--max-pending-rows", "333",
        ])
        server = build_server_from_args(args)
        try:
            assert server.request_deadline_ms == 250.0
            assert server.drain_timeout_s == 1.5
            assert server.batcher.breakers.failure_threshold == 7
            assert server.batcher.breakers.reset_timeout_s == 2.5
            assert server.batcher.max_queue_requests == 9
            assert server.batcher.max_pending_rows == 333
        finally:
            server.stop()

    def test_breaker_failures_zero_disables_breakers(
        self, data_and_summary, tmp_path
    ):
        from repro.cli import build_parser, build_server_from_args

        _, summary = data_and_summary
        path = summary.save(tmp_path / "m.npz")
        args = build_parser().parse_args([
            "serve", "--model", f"m={path}", "--port", "0",
            "--breaker-failures", "0",
        ])
        server = build_server_from_args(args)
        try:
            assert server.batcher.breakers is None
        finally:
            server.stop()
