"""Regression tests for int64 overflow in implicit grid sizes.

``int(np.prod(cardinalities))`` computes in int64 and silently wraps once
``∏ h_q`` exceeds ``2**63 - 1`` — e.g. ``np.prod([2**32, 2**32])`` is 0 —
corrupting ``n_clusters``, flat-index round trips and compression ratios
for large Khatri-Rao configurations.  Every grid size now routes through
:func:`repro._validation.int_prod`, which computes in arbitrary-precision
Python ints.
"""

import numpy as np
import pytest

from repro import KhatriRaoKMeans
from repro._validation import int_prod
from repro.core import MiniBatchKhatriRaoKMeans
from repro.linalg import num_combinations
from repro.linalg.khatri_rao import flat_to_tuple, tuple_to_flat

# Eight sets of 256: ∏ h_q = 2**64, one past the int64 wrap point.
HUGE_CARDS = (256,) * 8
HUGE_K = 2 ** 64


class TestIntProd:
    def test_matches_np_prod_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            values = rng.integers(1, 50, size=rng.integers(1, 6))
            assert int_prod(values) == int(np.prod(values))

    def test_empty_product_is_one(self):
        assert int_prod(()) == 1

    def test_numpy_scalars_accepted(self):
        assert int_prod(np.array([3, 4], dtype=np.int32)) == 12

    def test_exact_past_int64(self):
        # The motivating failure: np.prod wraps to 0 here.
        assert int(np.prod([2 ** 32, 2 ** 32])) == 0
        assert int_prod([2 ** 32, 2 ** 32]) == 2 ** 64

    def test_python_int_type(self):
        result = int_prod(HUGE_CARDS)
        assert type(result) is int
        assert result == HUGE_K


class TestHugeGrids:
    def test_num_combinations_past_int64(self):
        assert num_combinations((2 ** 32, 2 ** 32)) == 2 ** 64
        assert num_combinations(HUGE_CARDS) == HUGE_K

    def test_flat_tuple_roundtrip_at_huge_k(self):
        for flat in (0, HUGE_K - 1, HUGE_K // 2, 123456789012345678901 % HUGE_K):
            indices = flat_to_tuple(flat, HUGE_CARDS)
            assert tuple_to_flat(indices, HUGE_CARDS) == flat

    def test_flat_range_check_uses_exact_total(self):
        # With the wrapped total (0) every index was "out of range".
        from repro.exceptions import ValidationError

        flat_to_tuple(HUGE_K - 1, HUGE_CARDS)
        with pytest.raises(ValidationError):
            flat_to_tuple(HUGE_K, HUGE_CARDS)

    def test_estimator_n_clusters(self):
        assert KhatriRaoKMeans(HUGE_CARDS).n_clusters == HUGE_K
        assert MiniBatchKhatriRaoKMeans(HUGE_CARDS).n_clusters == HUGE_K

    def test_summary_n_clusters(self):
        from repro.summary import DataSummary

        thetas = [np.zeros((h, 2)) for h in HUGE_CARDS]
        summary = DataSummary(protocentroids=thetas, aggregator_name="sum")
        assert summary.n_clusters == HUGE_K

    def test_aggregator_factored_shift_exact_k(self):
        # factored_shift divides cross terms by per-set grid factors derived
        # from k; a wrapped k would poison the closed-form shift.  Use a
        # shape small enough to compute but checked against the dense value.
        from repro.linalg import get_aggregator, khatri_rao_combine

        rng = np.random.default_rng(1)
        old = [rng.normal(size=(3, 4)), rng.normal(size=(2, 4))]
        new = [t + rng.normal(size=t.shape) for t in old]
        agg = get_aggregator("sum")
        dense = float(np.sum(
            (khatri_rao_combine(new, agg) - khatri_rao_combine(old, agg)) ** 2
        ))
        assert agg.factored_shift(old, new) == pytest.approx(dense)
