"""Tests for the color-quantization case study (Figure 9)."""

import numpy as np
import pytest

from repro.applications import (
    quantize_khatri_rao_kmeans,
    quantize_kmeans,
    quantize_random,
)
from repro.datasets import make_quantization_image
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def image():
    return make_quantization_image(40, 60, random_state=0)


class TestGenerators:
    def test_image_properties(self, image):
        assert image.shape == (40, 60, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_contains_red_accents(self, image):
        # Some pixels should be strongly red (the rare-color argument).
        pixels = image.reshape(-1, 3)
        red = (pixels[:, 0] > 0.6) & (pixels[:, 1] < 0.3) & (pixels[:, 2] < 0.3)
        assert red.sum() > 10


class TestQuantizers:
    def test_kmeans_output(self, image):
        result = quantize_kmeans(image, 12, n_init=3, random_state=0)
        assert result.image.shape == image.shape
        assert result.codebook.shape == (12, 3)
        assert result.stored_vectors == 12
        assert result.method == "k-means"

    def test_kr_output(self, image):
        result = quantize_khatri_rao_kmeans(image, (6, 6), n_init=3, random_state=0)
        assert result.codebook.shape == (36, 3)
        assert result.stored_vectors == 12  # 6 + 6 stored vectors

    def test_random_output(self, image):
        result = quantize_random(image, 12, random_state=0)
        assert result.codebook.shape == (12, 3)
        # Codebook entries are actual pixels.
        pixels = image.reshape(-1, 3)
        for color in result.codebook:
            assert np.any(np.all(np.isclose(pixels, color), axis=1))

    def test_figure9_ordering(self, image):
        """The paper's result: random > k-Means > Khatri-Rao inertia at equal
        stored vectors (4686 / 2009 / 1144 in the paper)."""
        random_result = quantize_random(image, 12, random_state=0)
        km_result = quantize_kmeans(image, 12, n_init=10, random_state=0)
        kr_result = quantize_khatri_rao_kmeans(
            image, (6, 6), n_init=10, random_state=0
        )
        assert km_result.inertia < random_result.inertia
        assert kr_result.inertia < km_result.inertia
        assert kr_result.stored_vectors == km_result.stored_vectors == 12

    def test_quantized_image_uses_codebook_colors(self, image):
        result = quantize_kmeans(image, 6, n_init=2, random_state=0)
        flat = result.image.reshape(-1, 3)
        for pixel in flat[:: 97]:
            assert np.any(np.all(np.isclose(result.codebook, pixel), axis=1))

    def test_rejects_non_rgb(self):
        with pytest.raises(ValidationError):
            quantize_kmeans(np.ones((5, 5)), 3)
        with pytest.raises(ValidationError):
            quantize_random(np.ones((5, 5, 4)), 3)
