"""Tests for clustering-quality and compression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.metrics import (
    adjusted_rand_index,
    contingency_matrix,
    inertia,
    normalized_mutual_information,
    parameter_ratio,
    purity,
    summary_parameter_count,
    unsupervised_clustering_accuracy,
)

labels_strategy = st.lists(st.integers(0, 4), min_size=2, max_size=40)


class TestContingency:
    def test_counts(self):
        table = contingency_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_handles_non_consecutive_labels(self):
        table = contingency_matrix([10, 10, 99], [5, 7, 7])
        assert table.sum() == 3

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            contingency_matrix([0, 1], [0])

    def test_empty(self):
        with pytest.raises(ValidationError):
            contingency_matrix([], [])


class TestARI:
    def test_perfect(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_known_value(self):
        # Classic example with ARI ≈ 0.24242...
        true = [0, 0, 0, 1, 1, 1]
        pred = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(true, pred) == pytest.approx(0.24242, abs=1e-4)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 5, 2000)
        pred = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(true, pred)) < 0.05

    def test_single_cluster_each(self):
        assert adjusted_rand_index([0, 0, 0], [1, 1, 1]) == 1.0

    @given(labels_strategy)
    @settings(max_examples=50, deadline=None)
    def test_self_agreement(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(labels_strategy, st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 3, len(labels))
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )

    @given(labels_strategy)
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariance(self, labels):
        relabeled = [(l + 1) % 5 for l in labels]
        assert adjusted_rand_index(labels, relabeled) == pytest.approx(1.0)


class TestNMI:
    def test_perfect(self):
        assert normalized_mutual_information([0, 1, 0, 1], [1, 0, 1, 0]) == 1.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        true = rng.integers(0, 4, 3000)
        pred = rng.integers(0, 4, 3000)
        assert normalized_mutual_information(true, pred) < 0.05

    def test_bounds(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a = rng.integers(0, 4, 50)
            b = rng.integers(0, 4, 50)
            value = normalized_mutual_information(a, b)
            assert 0.0 <= value <= 1.0

    def test_trivial_partitions(self):
        assert normalized_mutual_information([0, 0, 0], [0, 0, 0]) == 1.0

    @given(labels_strategy)
    @settings(max_examples=50, deadline=None)
    def test_self_agreement_when_nontrivial(self, labels):
        value = normalized_mutual_information(labels, labels)
        assert value == pytest.approx(1.0)


class TestACC:
    def test_perfect_after_relabeling(self):
        assert unsupervised_clustering_accuracy([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_known_value(self):
        # Best mapping fixes 3 of 4 points.
        assert unsupervised_clustering_accuracy([0, 0, 1, 1], [0, 1, 1, 1]) == 0.75

    def test_more_clusters_than_classes(self):
        value = unsupervised_clustering_accuracy([0, 0, 1, 1], [0, 1, 2, 3])
        assert value == 0.5

    def test_fewer_clusters_than_classes(self):
        value = unsupervised_clustering_accuracy([0, 1, 2, 3], [0, 0, 1, 1])
        assert value == 0.5

    @given(labels_strategy)
    @settings(max_examples=50, deadline=None)
    def test_at_least_plain_accuracy(self, labels):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 3, len(labels))
        plain = float(np.mean(np.asarray(labels) == pred))
        assert unsupervised_clustering_accuracy(labels, pred) >= plain - 1e-12


class TestPurity:
    def test_known_value(self):
        assert purity([0, 0, 1, 1], [0, 0, 0, 1]) == 0.75

    def test_singletons_are_pure(self):
        assert purity([0, 1, 2], [0, 1, 2]) == 1.0

    def test_purity_at_least_acc(self):
        # Purity allows many-to-one mapping, so purity >= ACC.
        rng = np.random.default_rng(3)
        true = rng.integers(0, 3, 100)
        pred = rng.integers(0, 6, 100)
        assert purity(true, pred) >= unsupervised_clustering_accuracy(true, pred) - 1e-12


class TestInertia:
    def test_zero_for_points_on_centroids(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert inertia(X, [0, 1], X.copy()) == 0.0

    def test_known_value(self):
        X = np.array([[0.0], [2.0]])
        centroids = np.array([[1.0]])
        assert inertia(X, [0, 0], centroids) == 2.0

    def test_matches_kmeans_objective(self, blobs_small):
        from repro import KMeans

        X, _ = blobs_small
        model = KMeans(4, n_init=2, random_state=0).fit(X)
        assert inertia(X, model.labels_, model.cluster_centers_) == pytest.approx(
            model.inertia_
        )

    def test_invalid_labels(self):
        with pytest.raises(ValidationError):
            inertia(np.ones((2, 2)), [0, 5], np.ones((2, 2)))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            inertia(np.ones((3, 2)), [0, 1], np.ones((2, 2)))


class TestCompressionMetrics:
    def test_centroid_count(self):
        assert summary_parameter_count(64, n_centroids=36) == 2304

    def test_protocentroid_count(self):
        assert summary_parameter_count(64, cardinalities=(6, 6)) == 768

    def test_extra_parameters(self):
        assert summary_parameter_count(10, n_centroids=2, extra=5) == 25

    def test_mutual_exclusion(self):
        with pytest.raises(ValidationError):
            summary_parameter_count(10, n_centroids=2, cardinalities=(2, 2))
        with pytest.raises(ValidationError):
            summary_parameter_count(10)

    def test_parameter_ratio(self):
        assert parameter_ratio(768, 2304) == pytest.approx(1 / 3)

    def test_kr_saves_when_product_exceeds_sum(self):
        # h1 + h2 < h1 * h2 whenever both exceed... the paper's condition.
        kr = summary_parameter_count(100, cardinalities=(6, 6))
        full = summary_parameter_count(100, n_centroids=36)
        assert kr < full
