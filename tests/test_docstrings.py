"""Run the doctest examples embedded in the public-API docstrings.

Every ``Examples`` block in a docstring is executable documentation; this
module keeps them honest.
"""

import doctest

import pytest

import repro.applications.color_quantization
import repro.autodiff.tensor
import repro.core.design
import repro.core.minibatch
import repro.datasets.federated
import repro.linalg.hadamard
import repro.linalg.khatri_rao
import repro.metrics.clustering
import repro.metrics.compression
import repro.summary
import repro.utils.memory
import repro.utils.timing

MODULES = [
    repro.linalg.khatri_rao,
    repro.linalg.hadamard,
    repro.metrics.clustering,
    repro.metrics.compression,
    repro.core.design,
    repro.core.minibatch,
    repro.autodiff.tensor,
    repro.datasets.federated,
    repro.summary,
    repro.utils.timing,
    repro.utils.memory,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
