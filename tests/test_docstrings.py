"""Run the doctest examples embedded in the public-API docstrings.

Every ``Examples`` block in a docstring is executable documentation; this
module keeps them honest.  The README quickstart and the docs/ links get
the same treatment (mirroring the CI docs-lint step) so stale docs fail
the tier-1 suite locally, not just on CI.
"""

import doctest
import re
from pathlib import Path

import pytest

import repro.applications.color_quantization
import repro.autodiff.tensor
import repro.core.design
import repro.core.minibatch
import repro.datasets.federated
import repro.linalg.hadamard
import repro.linalg.khatri_rao
import repro.metrics.clustering
import repro.metrics.compression
import repro.summary
import repro.utils.memory
import repro.utils.timing

MODULES = [
    repro.linalg.khatri_rao,
    repro.linalg.hadamard,
    repro.metrics.clustering,
    repro.metrics.compression,
    repro.core.design,
    repro.core.minibatch,
    repro.autodiff.tensor,
    repro.datasets.federated,
    repro.summary,
    repro.utils.timing,
    repro.utils.memory,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"


_REPO_ROOT = Path(__file__).resolve().parents[1]


def test_readme_quickstart_doctests():
    results = doctest.testfile(
        str(_REPO_ROOT / "README.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} README doctest failures"
    assert results.attempted > 0, "no doctests collected from README.md"


def test_docs_relative_links_resolve():
    docs = [_REPO_ROOT / "README.md", *sorted((_REPO_ROOT / "docs").glob("*.md"))]
    assert len(docs) >= 3, "expected README.md plus the docs/ site"
    broken = []
    for doc in docs:
        text = doc.read_text(encoding="utf-8")
        for target in re.findall(r"\]\(([^)#]+)(?:#[^)]*)?\)", text):
            if "://" in target or target.startswith("mailto:"):
                continue
            if not (doc.parent / target).exists():
                broken.append(f"{doc.name}: {target}")
    assert not broken, f"broken relative links: {broken}"
