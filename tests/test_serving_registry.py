"""Tests for the serving model registry."""

import numpy as np
import pytest

from repro import DataSummary, KhatriRaoKMeans, summarize
from repro.datasets import make_blobs
from repro.exceptions import (
    ModelNotFoundError,
    SummaryFormatError,
    ValidationError,
)
from repro.serving import ModelRegistry, ServingMetrics


@pytest.fixture(scope="module")
def summary():
    X, _ = make_blobs(200, n_clusters=9, random_state=0)
    model = KhatriRaoKMeans((3, 3), n_init=2, random_state=0).fit(X)
    return summarize(model, metadata={"dataset": "blobs"})


class TestDtypeNormalization:
    def test_default_serving_dtype_is_float32(self, summary):
        registry = ModelRegistry()
        assert summary.dtype == np.float64  # the artifact stays float64 ...
        stored = registry.register("m", summary)
        assert stored.dtype == np.float32   # ... the served copy is float32
        assert registry.get("m").dtype == np.float32

    def test_native_dtype_preserved(self, summary):
        registry = ModelRegistry(serving_dtype="native")
        assert registry.register("m", summary).dtype == np.float64

    def test_explicit_float64(self, summary):
        registry = ModelRegistry(serving_dtype="float64")
        assert registry.register("m", summary.astype("float32")).dtype == np.float64

    def test_bad_serving_dtype_rejected(self):
        with pytest.raises(ValidationError):
            ModelRegistry(serving_dtype="float16")

    def test_registered_copy_is_independent(self, summary):
        registry = ModelRegistry(serving_dtype="native")
        stored = registry.register("m", summary)
        stored.protocentroids[0][0, 0] += 100.0
        assert summary.protocentroids[0][0, 0] != stored.protocentroids[0][0, 0]


class TestAccess:
    def test_get_unknown_raises_typed(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError, match="no model named 'ghost'"):
            registry.get("ghost")

    def test_contains_len_names(self, summary):
        registry = ModelRegistry()
        registry.register("a", summary)
        registry.register("b", summary)
        assert len(registry) == 2
        assert "a" in registry and "c" not in registry
        assert sorted(registry.names()) == ["a", "b"]

    def test_evict(self, summary):
        registry = ModelRegistry()
        registry.register("a", summary)
        assert registry.evict("a") is True
        assert registry.evict("a") is False
        assert "a" not in registry
        assert registry.metrics.counter("registry_evictions_total") == 1

    def test_bad_names_rejected(self, summary):
        registry = ModelRegistry()
        for bad in ("", "a/b", 7, None):
            with pytest.raises(ValidationError):
                registry.register(bad, summary)

    def test_non_summary_rejected(self):
        with pytest.raises(ValidationError):
            ModelRegistry().register("m", np.ones((2, 3)))


class TestLRU:
    def test_eviction_order_respects_serving_recency(self, summary):
        registry = ModelRegistry(max_models=2)
        registry.register("a", summary)
        registry.register("b", summary)
        registry.get("a")            # refresh: "b" is now least-recently-served
        registry.register("c", summary)
        assert sorted(registry.names()) == ["a", "c"]
        assert registry.metrics.counter("registry_evictions_total") == 1

    def test_reregister_replaces_without_eviction(self, summary):
        registry = ModelRegistry(max_models=2)
        registry.register("a", summary)
        registry.register("a", summary.astype("float32"))
        assert len(registry) == 1
        assert registry.metrics.counter("registry_evictions_total") == 0

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            ModelRegistry(max_models=0)


class TestLoadAndDescribe:
    def test_load_from_disk(self, summary, tmp_path):
        path = summary.save(tmp_path / "model.npz")
        registry = ModelRegistry()
        stored = registry.load("disk", path)
        assert stored.dtype == np.float32
        assert registry.get("disk").cardinalities == summary.cardinalities

    def test_load_malformed_never_registers(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a zip at all")
        registry = ModelRegistry()
        with pytest.raises(SummaryFormatError):
            registry.load("bad", bad)
        assert "bad" not in registry

    def test_describe_shape(self, summary):
        registry = ModelRegistry()
        registry.register("m", summary)
        info = registry.describe("m")
        assert info["name"] == "m"
        assert info["cardinalities"] == [3, 3]
        assert info["n_clusters"] == 9
        assert info["dtype"] == "float32"
        assert info["metadata"]["dataset"] == "blobs"

    def test_describe_all_sorted(self, summary):
        registry = ModelRegistry()
        for name in ("zeta", "alpha"):
            registry.register(name, summary)
        assert [m["name"] for m in registry.describe_all()] == ["alpha", "zeta"]


def test_metrics_sink_is_shared():
    metrics = ServingMetrics()
    registry = ModelRegistry(metrics=metrics, max_models=1)
    theta = [np.ones((2, 3))]
    registry.register("a", DataSummary(theta))
    registry.register("b", DataSummary(theta))
    assert metrics.counter("registry_evictions_total") == 1
