"""Cross-subsystem property-based tests (hypothesis).

These properties tie independent implementations together: the numpy
Khatri-Rao operator vs the autodiff materialization, compression accounting
vs actual array sizes, serialization roundtrips, and objective invariants
that must hold for any data.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DataSummary, KhatriRaoKMeans
from repro.autodiff import Tensor
from repro.deep.losses import materialize_centroid_tensor
from repro.linalg import khatri_rao_combine, num_combinations
from repro.metrics import summary_parameter_count

cards_strategy = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)
aggregator_strategy = st.sampled_from(["sum", "product"])


class TestOperatorEquivalence:
    @given(cards_strategy, aggregator_strategy, st.integers(1, 4), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_numpy_and_autodiff_materialization_agree(self, cards, aggregator,
                                                      m, seed):
        rng = np.random.default_rng(seed)
        thetas = [rng.normal(size=(h, m)) for h in cards]
        numpy_result = khatri_rao_combine(thetas, aggregator)
        tensor_result = materialize_centroid_tensor(
            [Tensor(t) for t in thetas], aggregator
        ).numpy()
        np.testing.assert_allclose(numpy_result, tensor_result, atol=1e-12)

    @given(cards_strategy, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_parameter_accounting_matches_array_sizes(self, cards, m):
        rng = np.random.default_rng(0)
        thetas = [rng.normal(size=(h, m)) for h in cards]
        summary = DataSummary(thetas)
        assert summary.parameter_count == summary_parameter_count(
            m, cardinalities=cards
        )
        assert summary.parameter_count == sum(t.size for t in thetas)

    @given(cards_strategy, aggregator_strategy, st.integers(0, 20))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_summary_roundtrip(self, tmp_path, cards, aggregator, seed):
        rng = np.random.default_rng(seed)
        thetas = [rng.normal(size=(h, 3)) for h in cards]
        summary = DataSummary(thetas, aggregator_name=aggregator,
                              metadata={"seed": seed})
        loaded = DataSummary.load(summary.save(tmp_path / f"s{seed}.npz"))
        np.testing.assert_allclose(loaded.centroids(), summary.centroids())
        assert loaded.metadata["seed"] == seed


class TestObjectiveInvariants:
    @given(st.integers(0, 8), aggregator_strategy)
    @settings(max_examples=8, deadline=None)
    def test_fitted_inertia_is_achievable_by_any_assignment(self, seed, aggregator):
        """The fitted labeling must be the *nearest-centroid* labeling:
        no other assignment of points to the same centroids does better."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.5, 2.5, size=(50, 2))
        model = KhatriRaoKMeans((2, 2), aggregator=aggregator, n_init=2,
                                max_iter=25, random_state=seed).fit(X)
        centroids = model.centroids()
        random_labels = rng.integers(0, 4, size=50)
        random_inertia = float(np.sum((X - centroids[random_labels]) ** 2))
        assert model.inertia_ <= random_inertia + 1e-9

    @given(st.integers(0, 8))
    @settings(max_examples=8, deadline=None)
    def test_num_combinations_bounds_labels(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 2))
        cards = (2, 3)
        model = KhatriRaoKMeans(cards, n_init=1, max_iter=15,
                                random_state=seed).fit(X)
        assert model.labels_.max() < num_combinations(cards)
        assert model.set_labels_[:, 0].max() < cards[0]
        assert model.set_labels_[:, 1].max() < cards[1]
