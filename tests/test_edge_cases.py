"""Edge-case and failure-injection tests across the core estimators."""

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans, NaiveKhatriRao
from repro.exceptions import ValidationError
from repro.linalg import khatri_rao_combine


class TestDegenerateData:
    def test_kr_on_constant_data(self):
        X = np.ones((50, 3))
        model = KhatriRaoKMeans((2, 2), n_init=2, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0, abs=1e-10)

    def test_kr_on_single_feature(self):
        rng = np.random.default_rng(0)
        X = np.sort(rng.normal(size=(60, 1)), axis=0)
        model = KhatriRaoKMeans((2, 2), n_init=5, random_state=0).fit(X)
        assert model.centroids().shape == (4, 1)
        assert np.isfinite(model.inertia_)

    def test_kr_with_negative_data_product_aggregator(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 3))  # mixed signs
        model = KhatriRaoKMeans((2, 2), aggregator="product", n_init=5,
                                random_state=0).fit(X)
        assert np.isfinite(model.inertia_)
        assert np.all(np.isfinite(model.centroids()))

    def test_kr_more_protocentroids_than_useful(self):
        # 4x4 = 16 representable centroids on 3-cluster data: most centroids
        # end up empty and are re-seeded; the fit must still terminate.
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(c, 0.05, (15, 2)) for c in (0.0, 5.0, 10.0)])
        model = KhatriRaoKMeans((4, 4), n_init=2, max_iter=50,
                                random_state=0).fit(X)
        assert np.isfinite(model.inertia_)

    def test_kmeans_on_duplicated_rows_k_too_large(self):
        X = np.repeat(np.arange(3.0)[:, None], 10, axis=0)
        model = KMeans(3, n_init=2, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0, abs=1e-12)

    def test_cardinality_one_sets(self):
        # (1, k) degenerates to k centroids shifted by one shared vector.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(60, 2))
        model = KhatriRaoKMeans((1, 4), n_init=5, random_state=0).fit(X)
        assert model.centroids().shape == (4, 2)
        km = KMeans(4, init="random", n_init=5, random_state=0).fit(X)
        # Same expressive power as plain 4-means.
        assert model.inertia_ == pytest.approx(km.inertia_, rel=0.05)

    def test_min_samples_guard(self):
        with pytest.raises(ValidationError):
            KhatriRaoKMeans((5, 2)).fit(np.ones((3, 2)))


class TestNumericalRobustness:
    def test_kr_with_huge_magnitudes(self):
        rng = np.random.default_rng(4)
        X = 1e8 * rng.normal(size=(60, 2))
        model = KhatriRaoKMeans((2, 2), n_init=3, random_state=0).fit(X)
        assert np.isfinite(model.inertia_)

    def test_kr_with_tiny_magnitudes(self):
        rng = np.random.default_rng(5)
        X = 1e-8 * rng.normal(size=(60, 2))
        model = KhatriRaoKMeans((2, 2), n_init=3, random_state=0).fit(X)
        assert np.isfinite(model.inertia_)

    def test_product_update_with_zero_protocentroids(self):
        # A zero protocentroid makes the product denominator vanish; the
        # guarded update must keep the previous value rather than emit NaN.
        model = KhatriRaoKMeans((2, 2), aggregator="product", random_state=0)
        rng = np.random.default_rng(6)
        X = rng.uniform(0.5, 1.5, size=(40, 2))
        thetas = [np.array([[0.0, 0.0], [1.0, 1.0]]),
                  rng.uniform(0.5, 1.5, size=(2, 2))]
        labels, _ = model._assign(X, thetas, True)
        set_labels = model.set_assignments(labels)
        updated = model._update_protocentroids(X, thetas, set_labels, rng)
        for theta in updated:
            assert np.all(np.isfinite(theta))

    def test_naive_with_tol_zero(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(0.5, 2.0, size=(60, 2))
        model = NaiveKhatriRao((2, 2), decomposition_max_iter=50,
                               decomposition_tol=0.0, n_init=2,
                               random_state=0).fit(X)
        assert np.isfinite(model.inertia_)


class TestConsistencyInvariants:
    @pytest.mark.parametrize("aggregator", ["sum", "product"])
    def test_refit_idempotence(self, aggregator, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), aggregator=aggregator, n_init=3,
                                random_state=11)
        first = model.fit(X).inertia_
        second = model.fit(X).inertia_
        assert first == pytest.approx(second)

    def test_centroids_invariant_under_set_reordering(self):
        # Swapping the two protocentroid sets permutes centroids but yields
        # the same *set* of centroids for commutative aggregators.
        rng = np.random.default_rng(8)
        t1, t2 = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        a = khatri_rao_combine([t1, t2], "sum")
        b = khatri_rao_combine([t2, t1], "sum")
        a_sorted = a[np.lexsort(a.T)]
        b_sorted = b[np.lexsort(b.T)]
        np.testing.assert_allclose(a_sorted, b_sorted)

    def test_inertia_never_increases_with_more_protocentroids(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        small = KhatriRaoKMeans((2, 2), n_init=10, random_state=0).fit(X)
        large = KhatriRaoKMeans((3, 3), n_init=10, random_state=0).fit(X)
        assert large.inertia_ <= small.inertia_ * 1.05

    def test_labels_stable_under_predict_roundtrip(self, blobs_grid_9):
        X, _, _ = blobs_grid_9
        model = KhatriRaoKMeans((3, 3), n_init=5, random_state=0).fit(X)
        once = model.predict(X)
        twice = model.predict(X)
        np.testing.assert_array_equal(once, twice)
