"""Training chaos suite: interrupts, injected worker deaths, soak runs.

Runs as its own CI step (hard timeout) because it deliberately schedules
sleeps, kills and torn writes.  Three certifications:

* a ``KeyboardInterrupt`` mid-fit salvages the best completed work
  instead of losing the run (``converged_`` honestly reports the cut);
* the parallel restart sweep selects the same model as the serial one
  *under injected kills and timeouts*, not just on sunny days;
* a randomized train/save/load soak never leaves a silently-corrupt
  artifact on disk — every failure is typed, and whatever file exists
  always loads cleanly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans, MiniBatchKhatriRaoKMeans
from repro.datasets import make_blobs
from repro.exceptions import RestartFailedError
from repro.faults import (
    FaultHook,
    FaultSchedule,
    InjectedKernelError,
    RestartFaultPlan,
    WorkerKill,
)
from repro.runtime import ExecutorConfig
from repro.summary import DataSummary, summarize


@pytest.fixture
def X():
    data, _ = make_blobs(200, n_features=4, n_clusters=6, cluster_std=0.6,
                         random_state=3)
    return data


class InterruptAt:
    def __init__(self, restart: int, iteration: int):
        self.trigger = (restart, iteration)

    def __call__(self, restart_index: int, iteration: int) -> None:
        if (restart_index, iteration) >= self.trigger:
            raise KeyboardInterrupt


# ------------------------------------------------------ interrupt salvage
def test_kmeans_interrupt_keeps_best_completed_restart(X):
    interrupted = KMeans(6, n_init=3, max_iter=40, random_state=11,
                         callback=InterruptAt(1, 1)).fit(X)
    assert not interrupted.converged_
    assert interrupted.cluster_centers_ is not None
    assert np.isfinite(interrupted.inertia_)
    # Only restart 0 completed, so the salvaged model is exactly the
    # n_init=1 fit under the same seed (sequential restarts share the rng).
    single = KMeans(6, n_init=1, max_iter=40, random_state=11).fit(X)
    assert interrupted.inertia_ == single.inertia_
    assert np.array_equal(interrupted.labels_, single.labels_)
    interrupted.predict(X)  # the salvaged model is fully usable


def test_kr_kmeans_interrupt_keeps_best_completed_restart(X):
    interrupted = KhatriRaoKMeans((2, 3), n_init=3, max_iter=40,
                                  random_state=5,
                                  callback=InterruptAt(1, 1)).fit(X)
    assert not interrupted.converged_
    single = KhatriRaoKMeans((2, 3), n_init=1, max_iter=40,
                             random_state=5).fit(X)
    assert interrupted.inertia_ == single.inertia_
    for a, b in zip(interrupted.protocentroids_, single.protocentroids_):
        assert np.array_equal(a, b)


def test_kr_kmeans_interrupt_mid_first_restart_keeps_partial(X):
    # Nothing complete yet except iterations of restart 0: keep those.
    interrupted = KhatriRaoKMeans((2, 3), n_init=3, max_iter=40,
                                  random_state=5,
                                  callback=InterruptAt(0, 3)).fit(X)
    assert not interrupted.converged_
    assert interrupted.protocentroids_ is not None
    assert np.isfinite(interrupted.inertia_)


def test_minibatch_interrupt_keeps_last_completed_step(X):
    interrupted = MiniBatchKhatriRaoKMeans(
        (2, 3), batch_size=40, max_steps=50, random_state=9,
        callback=InterruptAt(0, 10),
    ).fit(X)
    assert not interrupted.converged_
    assert interrupted.n_steps_ == 10
    interrupted.predict(X)


def test_parallel_interrupt_keeps_completed_restarts(X):
    calls = {"n": 0}

    def interrupt_third_restart(restart_index, iteration):
        if restart_index == 2:
            raise KeyboardInterrupt

    model = KMeans(6, n_init=4, max_iter=40, random_state=11,
                   callback=interrupt_third_restart,
                   n_jobs=ExecutorConfig(1))
    model.fit(X)
    assert not model.converged_
    assert np.isfinite(model.inertia_)


# ------------------------------------- parallel selection under injection
def _chaos_config(n_jobs, plan):
    return ExecutorConfig(n_jobs, timeout=20.0, max_retries=1,
                          max_failures=1, fault_hook=plan)


@pytest.mark.parametrize("spec", [
    {(0, 0): "kill"},
    {(2, 0): "raise"},
    {(1, 0): "kill", (3, 0): "raise"},
    {(1, 0): "raise", (1, 1): "raise"},  # one permanent death, tolerated
])
def test_parallel_selection_matches_serial_under_faults(X, spec):
    def fit(n_jobs):
        return KhatriRaoKMeans(
            (2, 3), n_init=4, max_iter=40, random_state=7,
            n_jobs=_chaos_config(n_jobs, RestartFaultPlan(dict(spec))),
        ).fit(X)

    serial, wide = fit(1), fit(4)
    assert wide.inertia_ == serial.inertia_
    assert np.array_equal(wide.labels_, serial.labels_)
    for a, b in zip(wide.protocentroids_, serial.protocentroids_):
        assert np.array_equal(a, b)


def test_parallel_selection_matches_serial_under_timeout(X):
    def fit(n_jobs):
        plan = RestartFaultPlan({(1, 0): ("sleep", 2.0)})
        return KMeans(
            6, n_init=3, max_iter=40, random_state=11,
            n_jobs=ExecutorConfig(n_jobs, timeout=0.5, max_retries=1,
                                  fault_hook=plan),
        ).fit(X)

    serial, wide = fit(1), fit(4)
    assert wide.inertia_ == serial.inertia_
    assert np.array_equal(wide.labels_, serial.labels_)


def test_every_restart_dead_is_a_typed_failure(X):
    plan = RestartFaultPlan({(i, a): "raise" for i in range(2)
                             for a in range(2)})
    with pytest.raises(RestartFailedError) as excinfo:
        KMeans(6, n_init=2, max_iter=40, random_state=11,
               n_jobs=ExecutorConfig(2, max_retries=1,
                                     fault_hook=plan)).fit(X)
    assert excinfo.value.seeds == (0, 1)


# -------------------------------------------------------------- chaos soak
@pytest.mark.parametrize("seed", range(4))
def test_chaos_soak_never_leaves_a_corrupt_artifact(tmp_path, seed, X):
    """Randomized train/save/load storms; the artifact always loads."""
    rng = np.random.default_rng(seed)
    path = tmp_path / "model.npz"
    model = KhatriRaoKMeans((2, 2), n_init=2, max_iter=30,
                            random_state=0).fit(X)
    summarize(model).save(path)

    fault_kinds = ["raise", "kill", ("sleep", 0.3)]
    typed_failures = 0
    for _ in range(8):
        action = int(rng.integers(3))
        try:
            if action == 0:
                plan = RestartFaultPlan({
                    (int(rng.integers(3)), 0):
                        fault_kinds[int(rng.integers(3))],
                })
                model = KhatriRaoKMeans(
                    (2, 2), n_init=3, max_iter=30,
                    random_state=int(rng.integers(1000)),
                    n_jobs=ExecutorConfig(2, timeout=0.15, max_retries=1,
                                          max_failures=3, fault_hook=plan),
                ).fit(X)
            elif action == 1:
                hook = FaultHook(FaultSchedule.random(
                    int(rng.integers(10_000)), 2,
                    p_raise=0.3, p_sleep=0.0, p_kill=0.3,
                ))
                summarize(model).save(path, fault_hook=hook)
            else:
                loaded = DataSummary.load(path)
                assert loaded.n_clusters == 4
        except (InjectedKernelError, WorkerKill, RestartFailedError):
            typed_failures += 1  # every failure mode is typed — nothing else
        # The invariant under any storm: the artifact on disk is whole.
        recovered = DataSummary.load(path)
        assert recovered.cardinalities == (2, 2)
        assert all(np.all(np.isfinite(theta))
                   for theta in recovered.protocentroids)
