"""End-to-end integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro import KhatriRaoKMeans, KMeans
from repro.core import balanced_factor_pair, suggest_aggregator
from repro.datasets import load_dataset, make_khatri_rao_blobs
from repro.linalg import khatri_rao_combine
from repro.metrics import (
    adjusted_rand_index,
    inertia,
    summary_parameter_count,
    unsupervised_clustering_accuracy,
)


class TestPaperWorkflow:
    """The full Section 9 protocol on one dataset end to end."""

    def test_table2_protocol_single_dataset(self):
        ds = load_dataset("r15", scale=0.5, random_state=0)
        k = ds.n_labels
        h1, h2 = balanced_factor_pair(k)
        assert (h1, h2) == (5, 3)

        kr = KhatriRaoKMeans((h1, h2), aggregator="sum", n_init=10,
                             random_state=0).fit(ds.data)
        km_small = KMeans(h1 + h2, n_init=10, random_state=0).fit(ds.data)
        km_full = KMeans(k, n_init=10, random_state=0).fit(ds.data)

        # Parameter accounting matches the metrics module.
        assert kr.parameter_count() == summary_parameter_count(
            ds.n_features, cardinalities=(h1, h2)
        )
        assert km_full.parameter_count() == summary_parameter_count(
            ds.n_features, n_centroids=k
        )
        # KR beats the same-parameter baseline in inertia here.
        assert kr.inertia_ < km_small.inertia_
        # All metrics are computable and in range.
        for labels in (kr.labels_, km_small.labels_, km_full.labels_):
            assert 0.0 <= unsupervised_clustering_accuracy(ds.labels, labels) <= 1.0

    def test_structure_detection_to_fitting_pipeline(self):
        """Generate KR data -> detect aggregator -> fit -> recover."""
        X, y, thetas = make_khatri_rao_blobs(
            (3, 2), n_samples=400, n_features=3, aggregator="product",
            cluster_std=0.05, random_state=3,
        )
        grid = khatri_rao_combine(thetas, "product")
        detected = suggest_aggregator(grid, (3, 2))
        assert detected == "product"
        model = KhatriRaoKMeans((3, 2), aggregator=detected, n_init=20,
                                random_state=0).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.9

    def test_predict_on_held_out_data(self):
        ds = load_dataset("blobs", scale=0.1, random_state=0)
        split = ds.n_samples // 2
        train, test = ds.data[:split], ds.data[split:]
        model = KhatriRaoKMeans((10, 10), n_init=3, random_state=0).fit(train)
        labels = model.predict(test)
        test_inertia = inertia(test, labels, model.centroids())
        # Held-out inertia is the minimum over centroids by construction.
        distances = ((test[:, None, :] - model.centroids()[None]) ** 2).sum(-1)
        assert test_inertia == pytest.approx(distances.min(axis=1).sum())


class TestCrossSubsystemConsistency:
    def test_deep_and_shallow_share_label_encoding(self):
        """Flat labels from KR-k-Means and KR deep clustering agree with the
        tuple_to_flat contract, so set assignments are interchangeable."""
        from repro.deep.losses import materialize_centroid_tensor
        from repro.autodiff import Tensor

        rng = np.random.default_rng(0)
        thetas_np = [rng.normal(size=(3, 4)), rng.normal(size=(2, 4))]
        numpy_centroids = khatri_rao_combine(thetas_np, "sum")
        tensor_centroids = materialize_centroid_tensor(
            [Tensor(t) for t in thetas_np], "sum"
        ).numpy()
        np.testing.assert_allclose(numpy_centroids, tensor_centroids)

    def test_federated_matches_centralized_in_iid_limit(self):
        """With one client, Khatri-Rao FkM reduces to centralized KR Lloyd
        steps and reaches a comparable objective."""
        from repro.federated import KhatriRaoFederatedKMeans

        rng = np.random.default_rng(1)
        X = rng.uniform(0.5, 3.0, size=(300, 4))
        federated = KhatriRaoFederatedKMeans(
            (3, 3), aggregator="product", n_rounds=30, random_state=0
        ).fit([(X, None)])
        central = KhatriRaoKMeans((3, 3), aggregator="product", n_init=10,
                                  random_state=0).fit(X)
        assert federated.history_.inertia[-1] <= 2.0 * central.inertia_

    def test_memory_utility_vs_kmeans_scaling(self):
        """Peak memory of materialized k-means grows with k; memory-mode KR
        stays flat — the Figure 8 mechanism, in miniature."""
        from repro.utils import peak_memory_mib

        rng = np.random.default_rng(2)
        X = rng.normal(size=(800, 30))

        def fit_km(k):
            KMeans(k, n_init=1, max_iter=5, random_state=0).fit(X)

        def fit_kr(h):
            KhatriRaoKMeans((h, h), n_init=1, max_iter=5, mode="memory",
                            chunk_size=32, random_state=0).fit(X)

        _, km_mem = peak_memory_mib(fit_km, 144)
        _, kr_mem = peak_memory_mib(fit_kr, 12)
        # Same 144 represented centroids; KR's stored state is 24 vectors.
        assert kr_mem <= km_mem * 1.2
